//! E2 — Theorem 5.5: Algorithm 3's error grows with the hop count of the
//! shortest path, not with the size of the graph.
//!
//! Workload: planted k-hop shortest paths inside decoy graphs of fixed
//! extra size. For each k we measure the released path's true-weight excess
//! and compare with the bound `(2k/eps) ln(E/gamma)`.

use super::context::Ctx;
use privpath_bench::{fmt, Table};
use privpath_core::bounds;
use privpath_core::experiment::ErrorCollector;
use privpath_core::shortest_path::ShortestPathParams;
use privpath_dp::Epsilon;
use privpath_engine::mechanisms;
use privpath_graph::generators::planted_path_graph;

pub fn run(ctx: &Ctx) {
    let gamma = 0.1;
    let extra = 128;
    let mut table = Table::new(
        "E2 hop-proportional error of Algorithm 3",
        &[
            "hops_k",
            "eps",
            "V",
            "E",
            "mean_excess",
            "p95_excess",
            "bound_2k_lnE",
        ],
    );
    for &eps_v in &[0.5f64, 1.0, 2.0] {
        let eps = Epsilon::new(eps_v).unwrap();
        for &k in &[2usize, 4, 8, 16, 32, 64] {
            let mut collector = ErrorCollector::new();
            let mut v_count = 0;
            let mut e_count = 0;
            for t in 0..ctx.trials {
                let mut gen_rng = ctx.rng(1000 + t);
                let planted = planted_path_graph(k, extra, &mut gen_rng);
                v_count = planted.topo.num_nodes();
                e_count = planted.topo.num_edges();
                let params = ShortestPathParams::new(eps, gamma).unwrap();
                let mut mech = ctx.rng(2000 + t * 31 + k as u64);
                // Release through the engine, query through the oracle.
                let mut engine = ctx.engine(&planted.topo, &planted.weights);
                let id = engine
                    .release(&mechanisms::ShortestPaths, &params, &mut mech)
                    .expect("valid workload");
                let path = engine
                    .query(id)
                    .expect("distance-capable")
                    .path(planted.s, planted.t)
                    .expect("route-capable")
                    .expect("connected");
                collector.push(planted.weights.path_weight(&path) - planted.planted_weight);
            }
            let stats = collector.stats();
            table.row(vec![
                k.to_string(),
                fmt(eps_v),
                v_count.to_string(),
                e_count.to_string(),
                fmt(stats.mean),
                fmt(stats.p95),
                fmt(bounds::thm55_path_error(k, eps_v, e_count, gamma)),
            ]);
        }
    }
    ctx.emit(&table);
    println!(
        "Expected shape: excess grows ~linearly in k at fixed eps and halves as\n\
         eps doubles; p95 stays below the bound column.\n"
    );
}
