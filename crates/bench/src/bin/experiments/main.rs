//! The experiment harness: regenerates an empirical analogue of every
//! theorem, figure, and baseline comparison in Sealfon (PODS 2016).
//!
//! ```text
//! cargo run --release -p privpath-bench --bin experiments -- all
//! cargo run --release -p privpath-bench --bin experiments -- e1 e5 --trials 10
//! cargo run --release -p privpath-bench --bin experiments -- --list
//! ```
//!
//! Each experiment prints one or more tables and (with `--out DIR`,
//! default `results/`) writes them as CSV. EXPERIMENTS.md records the
//! paper-vs-measured discussion per experiment.

mod context;
mod e01_lower_bound;
mod e02_hop_error;
mod e03_worst_case;
mod e04_tree_single_source;
mod e05_tree_vs_baselines;
mod e06_path_graph;
mod e07_bounded_approx;
mod e08_bounded_pure;
mod e09_grid;
mod e10_mst;
mod e11_matching;
mod e12_baselines;
mod e13_structure;
mod e14_scaling;
mod e15_randomized_response;
mod e16_hld_ablation;
mod e17_serving;
mod e18_shortcut;

use context::Ctx;
use std::path::PathBuf;
use std::process::ExitCode;

type ExpFn = fn(&Ctx);

struct Experiment {
    id: &'static str,
    anchor: &'static str,
    run: ExpFn,
}

fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            anchor: "Thm 5.1 + Fig 2: shortest-path reconstruction lower bound",
            run: e01_lower_bound::run,
        },
        Experiment {
            id: "e2",
            anchor: "Thm 5.5: Algorithm 3 error is hop-proportional",
            run: e02_hop_error::run,
        },
        Experiment {
            id: "e3",
            anchor: "Cor 5.6: Algorithm 3 worst case over all pairs",
            run: e03_worst_case::run,
        },
        Experiment {
            id: "e4",
            anchor: "Thm 4.1 + Fig 1: single-source tree distances",
            run: e04_tree_single_source::run,
        },
        Experiment {
            id: "e5",
            anchor: "Thm 4.2 + Sec 4 intro: all-pairs trees vs baselines",
            run: e05_tree_vs_baselines::run,
        },
        Experiment {
            id: "e6",
            anchor: "Appendix A: path graph hub hierarchy and dyadic ablation",
            run: e06_path_graph::run,
        },
        Experiment {
            id: "e7",
            anchor: "Thm 4.3/4.5: bounded weights, approximate DP",
            run: e07_bounded_approx::run,
        },
        Experiment {
            id: "e8",
            anchor: "Thm 4.6: bounded weights, pure DP",
            run: e08_bounded_pure::run,
        },
        Experiment {
            id: "e9",
            anchor: "Thm 4.7: grid covering vs generic covering",
            run: e09_grid::run,
        },
        Experiment {
            id: "e10",
            anchor: "Thm B.1/B.3 + Fig 3: private MST",
            run: e10_mst::run,
        },
        Experiment {
            id: "e11",
            anchor: "Thm B.4/B.6 + Fig 3: private matching",
            run: e11_matching::run,
        },
        Experiment {
            id: "e12",
            anchor: "Sec 4 intro: the four generic all-pairs baselines",
            run: e12_baselines::run,
        },
        Experiment {
            id: "e13",
            anchor: "Fig 1 + Lemma 4.4: structural invariants census",
            run: e13_structure::run,
        },
        Experiment {
            id: "e14",
            anchor: "Sec 1.2: error scales with the neighbor unit",
            run: e14_scaling::run,
        },
        Experiment {
            id: "e15",
            anchor: "Lemma 5.3: randomized-response optimality",
            run: e15_randomized_response::run,
        },
        Experiment {
            id: "e16",
            anchor: "Extension: Algorithm 1 vs heavy-path dyadic release",
            run: e16_hld_ablation::run,
        },
        Experiment {
            id: "e17",
            anchor: "Extension: serve-path queries/sec vs reader threads",
            run: e17_serving::run,
        },
        Experiment {
            id: "e18",
            anchor: "Extension: shortcut APSP vs Algorithm 2 vs baseline",
            run: e18_shortcut::run,
        },
    ]
}

fn print_usage(exps: &[Experiment]) {
    eprintln!("usage: experiments <exp-id ...|all> [--trials N] [--seed S] [--out DIR] [--no-csv]");
    eprintln!("experiments:");
    for e in exps {
        eprintln!("  {:>4}  {}", e.id, e.anchor);
    }
}

fn main() -> ExitCode {
    let exps = registry();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "--help" || a == "-h" || a == "--list")
    {
        print_usage(&exps);
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut selected: Vec<&str> = Vec::new();
    let mut trials = 5u64;
    let mut seed = 20160626u64; // PODS'16 conference date
    let mut out: Option<PathBuf> = Some(PathBuf::from("results"));
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                i += 1;
                trials = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => v,
                    _ => {
                        eprintln!("--trials needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--seed needs an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--out needs a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--no-csv" => out = None,
            "all" => selected = exps.iter().map(|e| e.id).collect(),
            other => {
                if exps.iter().any(|e| e.id == other) {
                    selected.push(exps.iter().find(|e| e.id == other).expect("checked").id);
                } else {
                    eprintln!("unknown experiment '{other}'");
                    print_usage(&exps);
                    return ExitCode::FAILURE;
                }
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        eprintln!("no experiment selected");
        print_usage(&exps);
        return ExitCode::FAILURE;
    }

    let ctx = Ctx { trials, seed, out };
    for exp in &exps {
        if selected.contains(&exp.id) {
            println!("==== {} — {} ====", exp.id.to_uppercase(), exp.anchor);
            let start = std::time::Instant::now();
            (exp.run)(&ctx);
            println!(
                "[{} done in {:.1}s]\n",
                exp.id,
                start.elapsed().as_secs_f64()
            );
        }
    }
    ExitCode::SUCCESS
}
