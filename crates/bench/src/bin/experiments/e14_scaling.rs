//! E14 — the Section 1.2 "Scaling" remark: all error bounds scale linearly
//! with the neighboring unit `s`.
//!
//! With `s = 1/V` (an individual influences weights by at most 1/V), the
//! Algorithm 3 error per released path drops from `O((V/eps) log V)` to
//! `O((log V)/eps)`; we sweep `s` and verify the measured error is linear
//! in it for both Algorithm 3 and the tree mechanism.

use super::context::Ctx;
use privpath_bench::{fmt, sample_pairs, Table};
use privpath_core::experiment::ErrorCollector;
use privpath_core::model::NeighborScale;
use privpath_core::shortest_path::{private_shortest_paths, ShortestPathParams};
use privpath_core::tree_distance::{tree_all_pairs_distances, TreeDistanceParams};
use privpath_dp::Epsilon;
use privpath_graph::algo::dijkstra;
use privpath_graph::generators::{connected_gnm, random_tree_prufer, uniform_weights};
use privpath_graph::tree::{weighted_depths, RootedTree};
use privpath_graph::NodeId;

pub fn run(ctx: &Ctx) {
    let eps = Epsilon::new(1.0).unwrap();
    let v = 256;
    let mut table = Table::new(
        "E14 neighbor-unit scaling (Sec 1.2)",
        &[
            "scale_s",
            "alg3_p95_excess",
            "alg3_ratio_to_s1",
            "tree_p95_err",
            "tree_ratio_to_s1",
        ],
    );

    let mut gen_rng = ctx.rng(14);
    let topo = connected_gnm(v, 3 * v, &mut gen_rng);
    let weights = uniform_weights(topo.num_edges(), 10.0, 60.0, &mut gen_rng);
    let tree_topo = random_tree_prufer(v, &mut gen_rng);
    let tree_weights = uniform_weights(tree_topo.num_edges(), 10.0, 60.0, &mut gen_rng);

    let mut base: Option<(f64, f64)> = None;
    for &s in &[1.0f64 / 256.0, 0.1, 1.0, 4.0, 16.0] {
        let scale = NeighborScale::new(s).expect("positive");

        // Algorithm 3 excess over sampled pairs.
        let mut alg3 = ErrorCollector::new();
        for t in 0..ctx.trials {
            let params = ShortestPathParams::new(eps, 0.05)
                .expect("valid")
                .with_scale(scale);
            let mut mech = ctx.rng(1000 + t + (s * 1000.0) as u64);
            let rel = private_shortest_paths(&topo, &weights, &params, &mut mech).expect("valid");
            let mut pair_rng = ctx.rng(2000 + t);
            let mut pairs = sample_pairs(v, 30, &mut pair_rng);
            pairs.sort();
            let mut cur: Option<(NodeId, _, _)> = None;
            for (a, b) in pairs {
                let refresh = cur.as_ref().is_none_or(|(src, _, _)| *src != a);
                if refresh {
                    let truth = dijkstra(&topo, &weights, a).expect("nonneg");
                    let released = rel.paths_from(a).expect("valid");
                    cur = Some((a, truth, released));
                }
                let (_, truth, released) = cur.as_ref().expect("set");
                let p = released.path_to(b).expect("connected");
                alg3.push(weights.path_weight(&p) - truth.distance(b).expect("connected"));
            }
        }

        // Tree mechanism error over sampled pairs.
        let mut tree = ErrorCollector::new();
        for t in 0..ctx.trials {
            let params = TreeDistanceParams::new(eps).with_scale(scale);
            let mut mech = ctx.rng(3000 + t + (s * 1000.0) as u64);
            let rel = tree_all_pairs_distances(&tree_topo, &tree_weights, &params, &mut mech)
                .expect("tree");
            let mut pair_rng = ctx.rng(4000 + t);
            let mut pairs = sample_pairs(v, 30, &mut pair_rng);
            pairs.sort();
            let mut cur: Option<(NodeId, Vec<f64>)> = None;
            for (a, b) in pairs {
                let refresh = cur.as_ref().is_none_or(|(src, _)| *src != a);
                if refresh {
                    let rt = RootedTree::new(&tree_topo, a).expect("tree");
                    cur = Some((a, weighted_depths(&rt, &tree_weights).expect("fits")));
                }
                let (_, truths) = cur.as_ref().expect("set");
                tree.push((rel.distance(a, b) - truths[b.index()]).abs());
            }
        }

        let (a95, t95) = (alg3.stats().p95, tree.stats().p95);
        if s == 1.0 {
            base = Some((a95, t95));
        }
        let (ar, tr) = base.map_or((f64::NAN, f64::NAN), |(ba, bt)| (a95 / ba, t95 / bt));
        table.row(vec![
            fmt(s),
            fmt(a95),
            if ar.is_nan() { "-".into() } else { fmt(ar / s) },
            fmt(t95),
            if tr.is_nan() { "-".into() } else { fmt(tr / s) },
        ]);
    }
    ctx.emit(&table);
    println!(
        "Expected shape: p95 errors scale ~linearly in s, so the ratio/s\n\
         columns hover near 1 (computed against the s = 1 row; rows before\n\
         it print '-'). At s = 1/V the errors are tiny — the O(log V / eps)\n\
         regime of the paper's scaling remark.\n"
    );
}
