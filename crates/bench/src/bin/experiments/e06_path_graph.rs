//! E6 — Appendix A: all-pairs distances on the path graph.
//!
//! Compares the paper's hub hierarchy (branching 2 and 4), the DNPR10-style
//! dyadic mechanism, and the general tree mechanism (the path is a tree) at
//! equal eps. All should exhibit the same `O(log^{1.5} V)` error shape;
//! the branching factor trades noise-per-value against values-per-query.

use super::context::Ctx;
use privpath_bench::{fmt, sample_pairs, Table};
use privpath_core::bounds;
use privpath_core::experiment::ErrorCollector;
use privpath_core::path_graph::{dyadic_path_release, hub_path_release, PathGraphParams};
use privpath_core::tree_distance::{tree_all_pairs_distances, TreeDistanceParams};
use privpath_dp::Epsilon;
use privpath_graph::generators::{path_graph, uniform_weights};
use privpath_graph::NodeId;

pub fn run(ctx: &Ctx) {
    let eps = Epsilon::new(1.0).unwrap();
    let gamma = 0.05;
    let mut table = Table::new(
        "E6 path graph mechanisms (p95 err over pairs)",
        &[
            "V",
            "hub_b2",
            "hub_b4",
            "dyadic",
            "tree_mech",
            "thm_a1_shape",
        ],
    );
    for &v in &[128usize, 512, 2048, 8192, 16384] {
        let topo = path_graph(v);
        let mut wrng = ctx.rng(v as u64);
        let weights = uniform_weights(v - 1, 0.0, 20.0, &mut wrng);
        // Prefix sums for exact distances.
        let mut prefix = vec![0.0f64];
        for (_, w) in weights.iter() {
            prefix.push(prefix.last().expect("non-empty") + w);
        }

        let mut hub2_err = ErrorCollector::new();
        let mut hub4_err = ErrorCollector::new();
        let mut dyadic_err = ErrorCollector::new();
        let mut tree_err = ErrorCollector::new();

        for t in 0..ctx.trials {
            let mut mech = ctx.rng(v as u64 * 13 + t);
            let p2 = PathGraphParams::new(eps);
            let p4 = PathGraphParams::new(eps).with_branching(4).expect("valid");
            let hub2 = hub_path_release(&topo, &weights, &p2, &mut mech).expect("path");
            let hub4 = hub_path_release(&topo, &weights, &p4, &mut mech).expect("path");
            let dyadic = dyadic_path_release(&topo, &weights, &p2, &mut mech).expect("path");
            let tree =
                tree_all_pairs_distances(&topo, &weights, &TreeDistanceParams::new(eps), &mut mech)
                    .expect("path is a tree");

            let mut pair_rng = ctx.rng(v as u64 * 29 + t);
            for (x, y) in sample_pairs(v, 100, &mut pair_rng) {
                let truth = (prefix[y.index()] - prefix[x.index()]).abs();
                hub2_err.push((hub2.distance(x, y) - truth).abs());
                hub4_err.push((hub4.distance(x, y) - truth).abs());
                dyadic_err.push((dyadic.distance(x, y) - truth).abs());
                tree_err.push((tree.distance(x, y) - truth).abs());
            }
            let _ = NodeId::new(0);
        }
        table.row(vec![
            v.to_string(),
            fmt(hub2_err.stats().p95),
            fmt(hub4_err.stats().p95),
            fmt(dyadic_err.stats().p95),
            fmt(tree_err.stats().p95),
            fmt(bounds::thm41_single_source_tree(v, 1.0, gamma)),
        ]);
    }
    ctx.emit(&table);
    println!(
        "Expected shape: every column grows polylog (compare V=128 vs 16384:\n\
         factor ~2-3, not 128). Branching 4 uses fewer levels (less noise per\n\
         value, more values per query) — close to branching 2 overall. The\n\
         dyadic and hub-2 mechanisms release identical information and differ\n\
         only in query assembly.\n"
    );
}
