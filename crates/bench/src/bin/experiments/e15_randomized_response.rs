//! E15 — Lemma 5.3: the reconstruction floor `(1-delta)/(1+e^eps)` is
//! exactly achieved by randomized response — the primitive behind every
//! lower bound in the paper.

use super::context::Ctx;
use privpath_bench::{fmt, Table};
use privpath_dp::randomized_response::{
    estimate_frequency, randomized_response, reconstruction_error_floor,
};
use privpath_dp::{Delta, Epsilon};
use rand::Rng;

pub fn run(ctx: &Ctx) {
    let n = 40_000 * ctx.trials as usize;
    let mut table = Table::new(
        "E15 randomized response vs the Lemma 5.3 floor",
        &[
            "eps",
            "measured_flip_rate",
            "floor",
            "ratio",
            "freq_estimate_of_0.30",
        ],
    );
    for &eps_v in &[0.1f64, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let eps = Epsilon::new(eps_v).unwrap();
        let mut rng = ctx.rng((eps_v * 1000.0) as u64);
        let bits: Vec<bool> = (0..n).map(|i| (i as f64 / n as f64) < 0.30).collect();
        let reported = randomized_response(&bits, eps, &mut rng);
        let flips = bits.iter().zip(&reported).filter(|(a, b)| a != b).count();
        let rate = flips as f64 / n as f64;
        let floor = reconstruction_error_floor(eps, Delta::zero()).expect("valid");
        let p_hat = reported.iter().filter(|&&b| b).count() as f64 / n as f64;
        table.row(vec![
            fmt(eps_v),
            fmt(rate),
            fmt(floor),
            fmt(rate / floor),
            fmt(estimate_frequency(p_hat, eps)),
        ]);
        let _: bool = rng.gen(); // keep rng used uniformly across loop bodies
    }
    ctx.emit(&table);
    println!(
        "Expected shape: measured flip rate == floor (ratio ~ 1.00) at every\n\
         eps — Lemma 5.3 is tight; the debiased frequency estimate recovers\n\
         the true 0.30 despite the flips.\n"
    );
}
