//! E8 — Theorem 4.6: bounded-weight all-pairs distances under **pure** DP
//! with `k = floor(V^{2/3} / (M eps)^{1/3})`.
//!
//! Same workloads as E7; the pure variant pays basic composition over the
//! released center pairs, landing at the `(V M)^{2/3}` rate — worse than
//! E7's `sqrt(V M)` but with delta = 0.

use super::context::Ctx;
use privpath_bench::{fmt, sample_pairs, Table};
use privpath_core::bounded::{bounded_weight_all_pairs, BoundedWeightParams};
use privpath_core::bounds;
use privpath_core::experiment::ErrorCollector;
use privpath_dp::Epsilon;
use privpath_graph::algo::dijkstra;
use privpath_graph::generators::{connected_gnm, uniform_weights};

pub fn run(ctx: &Ctx) {
    let eps = Epsilon::new(1.0).unwrap();
    let gamma = 0.05;
    let mut table = Table::new(
        "E8 bounded-weight all-pairs, pure DP (Thm 4.6, auto-k)",
        &["V", "M", "k", "|Z|", "p95_err", "max_err", "bound"],
    );
    for &v in &[128usize, 256, 512, 1024] {
        for &m_w in &[0.25f64, 1.0] {
            let mut gen_rng = ctx.rng(v as u64 * 11 + (m_w * 100.0) as u64);
            let topo = connected_gnm(v, 3 * v, &mut gen_rng);
            let weights = uniform_weights(topo.num_edges(), 0.0, m_w, &mut gen_rng);

            let params = BoundedWeightParams::pure(eps, m_w).expect("valid");
            let mut errs = ErrorCollector::new();
            let (mut k, mut z, mut bound) = (0usize, 0usize, 0.0f64);
            for t in 0..ctx.trials {
                let mut mech = ctx.rng(v as u64 * 37 + t);
                let rel = bounded_weight_all_pairs(&topo, &weights, &params, &mut mech)
                    .expect("connected bounded workload");
                k = rel.k();
                z = rel.centers().len();
                bound = bounds::bounded_error(
                    rel.k(),
                    m_w,
                    rel.noise_scale(),
                    rel.num_released(),
                    gamma,
                );
                let mut pair_rng = ctx.rng(v as u64 * 53 + t);
                let mut pairs = sample_pairs(v, 50, &mut pair_rng);
                pairs.sort();
                let mut cur: Option<(privpath_graph::NodeId, Vec<f64>)> = None;
                for (s, t2) in pairs {
                    let refresh = cur.as_ref().is_none_or(|(src, _)| *src != s);
                    if refresh {
                        let spt = dijkstra(&topo, &weights, s).expect("nonneg");
                        cur = Some((s, spt.distances().to_vec()));
                    }
                    let (_, truths) = cur.as_ref().expect("set");
                    errs.push((rel.distance(s, t2) - truths[t2.index()]).abs());
                }
            }
            let stats = errs.stats();
            table.row(vec![
                v.to_string(),
                fmt(m_w),
                k.to_string(),
                z.to_string(),
                fmt(stats.p95),
                fmt(stats.max),
                fmt(bound),
            ]);
        }
    }
    ctx.emit(&table);
    println!(
        "Expected shape: pure DP forces larger k (fewer centers) than E7 and\n\
         still lands above E7's error at the same (V, M) — the price of\n\
         delta = 0. Scaling is ~(V M)^(2/3): quadrupling V multiplies error\n\
         by ~2.5.\n"
    );
}
