//! E3 — Corollary 5.6: worst-case (over all pairs) error of Algorithm 3.
//!
//! One release answers every pair; we measure the maximum excess over
//! sampled pairs on G(n, 3n) graphs and compare with `(2V/eps) ln(E/gamma)`.
//! The max grows far slower than the worst-case bound (which assumes
//! V-hop shortest paths) because random graphs have logarithmic diameter —
//! the bound is loose but the *linear-in-V* scaling is visible on path-like
//! topologies, also reported here.

use super::context::Ctx;
use privpath_bench::{fmt, sample_pairs, Table};
use privpath_core::bounds;
use privpath_core::experiment::ErrorCollector;
use privpath_core::shortest_path::{private_shortest_paths, ShortestPathParams};
use privpath_dp::Epsilon;
use privpath_graph::algo::dijkstra;
use privpath_graph::generators::{connected_gnm, path_graph, uniform_weights};
use privpath_graph::{EdgeWeights, NodeId, Topology};

fn max_excess_over_pairs(
    ctx: &Ctx,
    topo: &Topology,
    weights: &EdgeWeights,
    eps_v: f64,
    gamma: f64,
    salt: u64,
) -> f64 {
    let params = ShortestPathParams::new(Epsilon::new(eps_v).unwrap(), gamma).unwrap();
    let mut worst = ErrorCollector::new();
    for t in 0..ctx.trials {
        let mut mech = ctx.rng(salt + t);
        let rel = private_shortest_paths(topo, weights, &params, &mut mech).expect("valid");
        let mut pair_rng = ctx.rng(salt + 7777 + t);
        let mut max_excess = 0.0f64;
        // Group queries by source so each Dijkstra is reused.
        let mut pairs = sample_pairs(topo.num_nodes(), 60, &mut pair_rng);
        pairs.sort();
        let mut cur_source: Option<(NodeId, _, _)> = None;
        for (s, t) in pairs {
            let need_new = cur_source.as_ref().is_none_or(|(src, _, _)| *src != s);
            if need_new {
                let truth = dijkstra(topo, weights, s).expect("nonneg");
                let released = rel.paths_from(s).expect("valid source");
                cur_source = Some((s, truth, released));
            }
            let (_, truth, released) = cur_source.as_ref().expect("just set");
            let path = released.path_to(t).expect("connected");
            let excess = weights.path_weight(&path) - truth.distance(t).expect("connected");
            max_excess = max_excess.max(excess);
        }
        worst.push(max_excess);
    }
    worst.stats().mean
}

pub fn run(ctx: &Ctx) {
    let gamma = 0.1;
    let eps_v = 1.0;
    let mut table = Table::new(
        "E3 worst-case pair excess of Algorithm 3",
        &["topology", "V", "E", "mean_max_excess", "cor56_bound"],
    );
    for &v in &[64usize, 128, 256, 512] {
        let mut gen_rng = ctx.rng(v as u64);
        let topo = connected_gnm(v, 3 * v, &mut gen_rng);
        let weights = uniform_weights(topo.num_edges(), 0.0, 10.0, &mut gen_rng);
        let max_e = max_excess_over_pairs(ctx, &topo, &weights, eps_v, gamma, 31 * v as u64);
        table.row(vec![
            "gnm(3V)".into(),
            v.to_string(),
            topo.num_edges().to_string(),
            fmt(max_e),
            fmt(bounds::cor56_worst_case(v, eps_v, topo.num_edges(), gamma)),
        ]);
    }
    // The path graph has unique shortest paths (excess identically 0), so
    // the V-linear worst case needs a topology with V-many route choices:
    // the Figure 2 parallel-edge ladder with random weights.
    for &v in &[64usize, 256, 1024] {
        let mut gen_rng = ctx.rng(99 + v as u64);
        let gadget = privpath_graph::generators::ParallelPathGadget::new(v - 1);
        let topo = gadget.topology().clone();
        let weights = uniform_weights(topo.num_edges(), 0.0, 10.0, &mut gen_rng);
        let max_e = max_excess_over_pairs(ctx, &topo, &weights, eps_v, gamma, 17 * v as u64);
        table.row(vec![
            "ladder".into(),
            v.to_string(),
            topo.num_edges().to_string(),
            fmt(max_e),
            fmt(bounds::cor56_worst_case(v, eps_v, topo.num_edges(), gamma)),
        ]);
    }
    // Degenerate sanity row: the plain path has unique routes, so excess 0.
    {
        let mut gen_rng = ctx.rng(7);
        let topo = path_graph(256);
        let weights = uniform_weights(topo.num_edges(), 0.0, 10.0, &mut gen_rng);
        let max_e = max_excess_over_pairs(ctx, &topo, &weights, eps_v, gamma, 7007);
        table.row(vec![
            "path".into(),
            "256".into(),
            topo.num_edges().to_string(),
            fmt(max_e),
            fmt(bounds::cor56_worst_case(
                256,
                eps_v,
                topo.num_edges(),
                gamma,
            )),
        ]);
    }
    ctx.emit(&table);
    println!(
        "Expected shape: on expander-ish gnm graphs the max excess grows slowly\n\
         (short hop diameters); on the parallel-edge ladder — V-many binary\n\
         route choices — it grows ~linearly in V, tracking the corollary's\n\
         V-dependence. The plain path is a sanity row: unique routes mean\n\
         zero excess. All values stay below the bound.\n"
    );
}
