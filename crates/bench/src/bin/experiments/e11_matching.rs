//! E11 — Appendix B.2 / Figure 3 (right): private low-weight perfect
//! matchings.
//!
//! Utility on complete bipartite K_{n,n} (Theorem B.6 bound), plus the
//! hourglass-gadget reconstruction attack (Theorem B.4).

use super::context::Ctx;
use privpath_bench::{fmt, Table};
use privpath_core::attack::{random_bits, thm51_alpha_bits, MatchingAttack};
use privpath_core::bounds;
use privpath_core::experiment::ErrorCollector;
use privpath_core::matching::{private_matching, MatchingParams};
use privpath_dp::{Delta, Epsilon};
use privpath_graph::algo::min_weight_perfect_matching;
use privpath_graph::generators::uniform_weights;
use privpath_graph::{NodeId, Topology};
use rand::Rng;

fn complete_bipartite(n: usize) -> Topology {
    let mut b = Topology::builder(2 * n);
    for i in 0..n {
        for j in 0..n {
            b.add_edge(NodeId::new(i), NodeId::new(n + j));
        }
    }
    b.build()
}

pub fn run(ctx: &Ctx) {
    let gamma = 0.05;
    let mut utility = Table::new(
        "E11a private matching utility on K_{n,n} (Thm B.6)",
        &["V", "E", "eps", "mean_excess", "max_excess", "bound"],
    );
    for &half in &[8usize, 16, 32, 64] {
        let v = 2 * half;
        let topo = complete_bipartite(half);
        let mut gen_rng = ctx.rng(half as u64);
        let weights = uniform_weights(topo.num_edges(), 0.0, 20.0, &mut gen_rng);
        let optimum = min_weight_perfect_matching(&topo, &weights)
            .expect("complete bipartite")
            .total_weight;
        for &eps_v in &[0.5f64, 1.0] {
            let mut errs = ErrorCollector::new();
            for t in 0..ctx.trials {
                let mut mech = ctx.rng(half as u64 * 83 + t + (eps_v * 10.0) as u64);
                let rel = private_matching(
                    &topo,
                    &weights,
                    &MatchingParams::new(Epsilon::new(eps_v).unwrap()),
                    &mut mech,
                )
                .expect("matching exists");
                errs.push(rel.weight_under(&weights) - optimum);
            }
            let stats = errs.stats();
            utility.row(vec![
                v.to_string(),
                topo.num_edges().to_string(),
                fmt(eps_v),
                fmt(stats.mean),
                fmt(stats.max),
                fmt(bounds::thm_b6_matching_error(
                    v,
                    eps_v,
                    topo.num_edges(),
                    gamma,
                )),
            ]);
        }
    }
    ctx.emit(&utility);

    let mut attack_table = Table::new(
        "E11b hourglass-gadget matching reconstruction (Thm B.4)",
        &[
            "bits",
            "eps",
            "exact_recovered",
            "dp_recovered_frac",
            "dp_mean_error",
            "alpha",
        ],
    );
    for &n in &[32usize, 96] {
        let attack = MatchingAttack::new(n);
        let mut rng = ctx.rng(n as u64 + 73);
        let bits = random_bits(n, &mut rng);
        let w = attack.encode(&bits);
        let exact = min_weight_perfect_matching(attack.topology(), &w).expect("gadget");
        let exact_recovered =
            n - privpath_core::attack::hamming(&bits, &attack.decode(&exact.edges));

        for &eps_v in &[0.1f64, 1.0] {
            let eps = Epsilon::new(eps_v).unwrap();
            let mut hamming_total = 0usize;
            let mut err_total = 0.0;
            for t in 0..ctx.trials {
                let salt: u64 = rng.gen();
                let outcome = attack
                    .run(&mut rng, |topo, w| {
                        let mut mech = ctx.rng(salt ^ t);
                        private_matching(topo, w, &MatchingParams::new(eps), &mut mech)
                            .map(|r| r.edges().to_vec())
                    })
                    .expect("gadget workload");
                hamming_total += outcome.hamming;
                err_total += outcome.objective_error;
            }
            let trials = ctx.trials as f64;
            attack_table.row(vec![
                n.to_string(),
                fmt(eps_v),
                format!("{exact_recovered}/{n}"),
                fmt(1.0 - hamming_total as f64 / (trials * n as f64)),
                fmt(err_total / trials),
                fmt(thm51_alpha_bits(n, eps, Delta::zero())),
            ]);
        }
    }
    ctx.emit(&attack_table);
    println!(
        "Expected shape: matching excess ~linear in V under the bound; the\n\
         exact matching reveals the secret, the DP one does not (the paper's\n\
         Thm B.4 alpha = 0.12 V corresponds to alpha/bits ~ 0.49 here because\n\
         each gadget contributes one bit per four vertices).\n"
    );
}
