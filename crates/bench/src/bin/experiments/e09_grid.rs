//! E9 — Theorem 4.7: the sqrt(V) x sqrt(V) grid with the modular covering.
//!
//! The grid admits a `2 V^{1/3}`-covering of ~`V^{1/3}` centers; the
//! generic Lemma 4.4 construction at the same radius produces many more.
//! Fewer centers = less composition noise. Ablation: modular vs Meir-Moon
//! vs greedy coverings at the same radius.

use super::context::Ctx;
use privpath_bench::{fmt, sample_pairs, Table};
use privpath_core::bounded::{bounded_weight_all_pairs, BoundedWeightParams, CoveringStrategy};
use privpath_core::bounds;
use privpath_core::experiment::ErrorCollector;
use privpath_dp::{Delta, Epsilon};
use privpath_graph::algo::dijkstra;
use privpath_graph::generators::{uniform_weights, GridGraph};
use privpath_graph::{EdgeWeights, Topology};

fn measure(
    ctx: &Ctx,
    topo: &Topology,
    weights: &EdgeWeights,
    params: &BoundedWeightParams,
    salt: u64,
) -> (usize, f64, f64) {
    let mut errs = ErrorCollector::new();
    let mut z = 0usize;
    let mut bound = 0.0;
    for t in 0..ctx.trials {
        let mut mech = ctx.rng(salt + t);
        let rel =
            bounded_weight_all_pairs(topo, weights, params, &mut mech).expect("grid workload");
        z = rel.centers().len();
        bound = bounds::bounded_error(rel.k(), 1.0, rel.noise_scale(), rel.num_released(), 0.05);
        let mut pair_rng = ctx.rng(salt + 999 + t);
        let mut pairs = sample_pairs(topo.num_nodes(), 40, &mut pair_rng);
        pairs.sort();
        let mut cur: Option<(privpath_graph::NodeId, Vec<f64>)> = None;
        for (s, t2) in pairs {
            let refresh = cur.as_ref().is_none_or(|(src, _)| *src != s);
            if refresh {
                let spt = dijkstra(topo, weights, s).expect("nonneg");
                cur = Some((s, spt.distances().to_vec()));
            }
            let (_, truths) = cur.as_ref().expect("set");
            errs.push((rel.distance(s, t2) - truths[t2.index()]).abs());
        }
    }
    (z, errs.stats().p95, bound)
}

pub fn run(ctx: &Ctx) {
    let eps = Epsilon::new(1.0).unwrap();
    let delta = Delta::new(1e-6).unwrap();
    let m_w = 1.0;
    let mut table = Table::new(
        "E9 grid coverings (Thm 4.7): modular vs generic vs greedy",
        &[
            "V",
            "side",
            "radius_k",
            "Z_modular",
            "p95_modular",
            "Z_meirmoon",
            "p95_meirmoon",
            "Z_greedy",
            "p95_greedy",
            "bound_modular",
        ],
    );
    for &side in &[8usize, 16, 24, 32] {
        let grid = GridGraph::new(side, side);
        let topo = grid.topology();
        let v = topo.num_nodes();
        let mut wrng = ctx.rng(side as u64);
        let weights = uniform_weights(topo.num_edges(), 0.0, m_w, &mut wrng);

        let spacing = ((v as f64).powf(1.0 / 3.0).round() as usize).clamp(1, side);
        let k = 2 * spacing;
        let centers = grid.modular_covering(spacing).expect("valid spacing");

        let modular = BoundedWeightParams::approx(eps, delta, m_w)
            .expect("valid")
            .with_strategy(CoveringStrategy::Custom { centers, k });
        let meirmoon = BoundedWeightParams::approx(eps, delta, m_w)
            .expect("valid")
            .with_strategy(CoveringStrategy::MeirMoon { k });
        let greedy = BoundedWeightParams::approx(eps, delta, m_w)
            .expect("valid")
            .with_strategy(CoveringStrategy::Greedy { k });

        let (zm, pm, bm) = measure(ctx, topo, &weights, &modular, side as u64 * 101);
        let (zg, pg, _) = measure(ctx, topo, &weights, &meirmoon, side as u64 * 211);
        let (zr, pr, _) = measure(ctx, topo, &weights, &greedy, side as u64 * 307);

        table.row(vec![
            v.to_string(),
            format!("{side}x{side}"),
            k.to_string(),
            zm.to_string(),
            fmt(pm),
            zg.to_string(),
            fmt(pg),
            zr.to_string(),
            fmt(pr),
            fmt(bm),
        ]);
    }
    ctx.emit(&table);
    println!(
        "Expected shape: the modular covering has ~V^(1/3) centers vs the\n\
         generic bound's ~V/(k+1), and correspondingly lower noise/error —\n\
         the structured-covering advantage of Theorem 4.7. Greedy lands\n\
         between the two.\n"
    );
}
