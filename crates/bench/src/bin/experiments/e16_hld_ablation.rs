//! E16 (extension) — heavy-path decomposition vs Algorithm 1.
//!
//! Both release eps-DP all-pairs tree distances with polylog error. The
//! interesting axis is the noise scale: Algorithm 1 pays its recursion
//! depth (`~log V`) per query value, while the heavy-path + dyadic layout
//! pays only the dyadic depth of its *longest chain* — `O(log log V)` on
//! balanced/random trees, `log V` only when the tree is one long chain.
//! The experiment measures where each layout wins, per tree shape.

use super::context::Ctx;
use privpath_bench::{fmt, sample_pairs, Table};
use privpath_core::experiment::ErrorCollector;
use privpath_core::tree_distance::{tree_all_pairs_distances, TreeDistanceParams};
use privpath_core::tree_hld::hld_tree_all_pairs;
use privpath_dp::Epsilon;
use privpath_graph::generators::{
    balanced_binary_tree, caterpillar_tree, path_graph, random_tree_prufer, uniform_weights,
};
use privpath_graph::tree::{weighted_depths, RootedTree};
use privpath_graph::{NodeId, Topology};

pub fn run(ctx: &Ctx) {
    let eps = Epsilon::new(1.0).unwrap();
    let mut table = Table::new(
        "E16 Algorithm 1 vs heavy-path dyadic release (p95 err over pairs)",
        &[
            "shape",
            "V",
            "alg1_p95",
            "hld_p95",
            "hld_over_alg1",
            "hld_chains",
            "hld_levels",
        ],
    );
    for &v in &[256usize, 1024, 4096] {
        let shapes: Vec<(&str, Topology)> = vec![
            ("path", path_graph(v)),
            ("balanced", balanced_binary_tree(v)),
            ("caterpillar", caterpillar_tree(v / 4 + 1, 3)),
            ("random", random_tree_prufer(v, &mut ctx.rng(v as u64))),
        ];
        for (name, topo) in shapes {
            let n = topo.num_nodes();
            let mut wrng = ctx.rng(n as u64 + 16);
            let weights = uniform_weights(topo.num_edges(), 0.0, 40.0, &mut wrng);

            let mut alg1 = ErrorCollector::new();
            let mut hld = ErrorCollector::new();
            let mut chains = 0usize;
            let mut levels = 0usize;
            for t in 0..ctx.trials {
                let mut mech = ctx.rng(n as u64 * 19 + t);
                let rel1 = tree_all_pairs_distances(
                    &topo,
                    &weights,
                    &TreeDistanceParams::new(eps),
                    &mut mech,
                )
                .expect("tree");
                let rel2 =
                    hld_tree_all_pairs(&topo, &weights, &TreeDistanceParams::new(eps), &mut mech)
                        .expect("tree");
                chains = rel2.num_chains();
                levels = rel2.sensitivity_levels();

                let mut pair_rng = ctx.rng(n as u64 * 23 + t);
                let mut pairs = sample_pairs(n, 60, &mut pair_rng);
                pairs.sort();
                let mut cur: Option<(NodeId, Vec<f64>)> = None;
                for (x, y) in pairs {
                    let refresh = cur.as_ref().is_none_or(|(src, _)| *src != x);
                    if refresh {
                        let rt = RootedTree::new(&topo, x).expect("tree");
                        cur = Some((x, weighted_depths(&rt, &weights).expect("fits")));
                    }
                    let (_, truths) = cur.as_ref().expect("set");
                    let truth = truths[y.index()];
                    alg1.push((rel1.distance(x, y) - truth).abs());
                    hld.push((rel2.distance(x, y) - truth).abs());
                }
            }
            let (a, h) = (alg1.stats().p95, hld.stats().p95);
            table.row(vec![
                name.into(),
                n.to_string(),
                fmt(a),
                fmt(h),
                fmt(h / a),
                chains.to_string(),
                levels.to_string(),
            ]);
        }
    }
    ctx.emit(&table);
    println!(
        "Expected shape: both mechanisms stay polylog. On shapes with short\n\
         heavy chains (balanced, random) the heavy-path release's adaptive\n\
         sensitivity (hld_levels ~ log log V, vs Algorithm 1's log V) makes\n\
         it strictly better (ratio well below 1); on the path — one chain,\n\
         hld_levels = log V — the two coincide up to constants (ratio ~1).\n"
    );
}
