//! E4 — Theorem 4.1 / Figure 1: single-source tree distances via the
//! recursive split decomposition.
//!
//! Across tree shapes and sizes, the maximum per-vertex error must stay
//! polylogarithmic in V — the bound is
//! `4 (L/eps) sqrt(2L ln(2/gamma))`, `L = ceil(log2 V)`.

use super::context::Ctx;
use privpath_bench::{fmt, Table};
use privpath_core::bounds;
use privpath_core::experiment::ErrorCollector;
use privpath_core::tree_distance::{tree_single_source_distances, TreeDistanceParams};
use privpath_dp::Epsilon;
use privpath_graph::generators::{
    balanced_binary_tree, caterpillar_tree, path_graph, random_tree_prufer, star_graph,
    uniform_weights,
};
use privpath_graph::tree::{weighted_depths, RootedTree};
use privpath_graph::{NodeId, Topology};

fn shapes(v: usize, ctx: &Ctx) -> Vec<(&'static str, Topology)> {
    let mut rng = ctx.rng(v as u64);
    vec![
        ("path", path_graph(v)),
        ("star", star_graph(v)),
        ("balanced", balanced_binary_tree(v)),
        ("caterpillar", caterpillar_tree(v / 4 + 1, 3)),
        ("random", random_tree_prufer(v, &mut rng)),
    ]
}

pub fn run(ctx: &Ctx) {
    let eps_v = 1.0;
    let gamma = 0.05;
    let mut table = Table::new(
        "E4 single-source tree distance error (Algorithm 1)",
        &[
            "shape",
            "V",
            "depth_L",
            "queries",
            "mean_err",
            "max_err",
            "thm41_bound",
        ],
    );
    for &v in &[64usize, 256, 1024, 4096] {
        for (name, topo) in shapes(v, ctx) {
            let n = topo.num_nodes();
            let mut wrng = ctx.rng(n as u64 + 5);
            let weights = uniform_weights(topo.num_edges(), 0.0, 100.0, &mut wrng);
            let root = NodeId::new(0);
            let rt = RootedTree::new(&topo, root).expect("tree");
            let truth = weighted_depths(&rt, &weights).expect("weights fit");

            let mut errs = ErrorCollector::new();
            let mut depth = 0;
            let mut queries = 0;
            for t in 0..ctx.trials {
                let mut mech = ctx.rng(31 * n as u64 + t);
                let rel = tree_single_source_distances(
                    &topo,
                    &weights,
                    root,
                    &TreeDistanceParams::new(Epsilon::new(eps_v).unwrap()),
                    &mut mech,
                )
                .expect("tree workload");
                depth = rel.decomposition_depth();
                queries = rel.num_queries();
                for vx in topo.nodes() {
                    errs.push((rel.distance(vx) - truth[vx.index()]).abs());
                }
            }
            let stats = errs.stats();
            table.row(vec![
                name.into(),
                n.to_string(),
                depth.to_string(),
                queries.to_string(),
                fmt(stats.mean),
                fmt(stats.max),
                fmt(bounds::thm41_single_source_tree(n, eps_v, gamma / n as f64)),
            ]);
        }
    }
    ctx.emit(&table);
    println!(
        "Expected shape: max_err grows polylog in V (compare 64 -> 4096: less\n\
         than ~3x, not 64x); depth <= log2 V + 1; queries <= 2V; the star\n\
         decomposes in one level and has the smallest error.\n"
    );
}
