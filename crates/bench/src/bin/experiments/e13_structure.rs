//! E13 — Figure 1 and Lemma 4.4 as a census: the structural invariants the
//! privacy proofs rest on, verified over many random inputs.
//!
//! * Algorithm 1's decomposition: every sub-piece has at most
//!   `ceil(|S|/2)` vertices, recursion depth <= ceil(log2 V) + 1, at most
//!   `2V` queries, per-level query edges disjoint (sensitivity 1/level).
//! * Lemma 4.4's covering: a k-covering of size <= floor(V/(k+1)) with
//!   verified radius <= k.

use super::context::Ctx;
use privpath_bench::Table;
use privpath_graph::covering::{covering_radius, meir_moon_covering};
use privpath_graph::generators::{connected_gnm, random_tree_prufer};
use privpath_graph::tree::{decompose, RootedTree};
use privpath_graph::NodeId;
use rand::Rng;
use std::collections::HashSet;

pub fn run(ctx: &Ctx) {
    let samples = 40 * ctx.trials as usize;

    // --- Decomposition census over random trees ---
    let mut decomp = Table::new(
        "E13a Algorithm 1 decomposition census (random trees)",
        &[
            "V_range",
            "samples",
            "max_depth",
            "depth_bound",
            "max_queries_over_2V",
            "level_overlaps",
            "piece_violations",
        ],
    );
    let mut rng = ctx.rng(13);
    let mut max_depth = 0usize;
    let mut depth_bound = 0usize;
    let mut max_q_ratio = 0.0f64;
    let mut overlaps = 0usize;
    let mut piece_violations = 0usize;
    for _ in 0..samples {
        let v = rng.gen_range(2..600);
        let topo = random_tree_prufer(v, &mut rng);
        let root = NodeId::new(rng.gen_range(0..v));
        let rt = RootedTree::new(&topo, root).expect("tree");
        let d = decompose(&rt);
        max_depth = max_depth.max(d.depth);
        depth_bound = depth_bound.max((v as f64).log2().ceil() as usize + 1);
        max_q_ratio = max_q_ratio.max(d.num_queries as f64 / (2.0 * v as f64));
        for edges in d.level_edge_usage(&rt) {
            let unique: HashSet<_> = edges.iter().collect();
            if unique.len() != edges.len() {
                overlaps += 1;
            }
        }
        d.for_each_call(|call, _| {
            for sub in &call.subcalls {
                if sub.size > call.size.div_ceil(2) {
                    piece_violations += 1;
                }
            }
        });
    }
    decomp.row(vec![
        "2..600".into(),
        samples.to_string(),
        max_depth.to_string(),
        depth_bound.to_string(),
        format!("{max_q_ratio:.3}"),
        overlaps.to_string(),
        piece_violations.to_string(),
    ]);
    ctx.emit(&decomp);

    // --- Covering census over random connected graphs ---
    let mut cover = Table::new(
        "E13b Lemma 4.4 covering census (connected gnm)",
        &[
            "V_range",
            "k_range",
            "samples",
            "size_violations",
            "radius_violations",
            "max_size_ratio",
        ],
    );
    let mut size_violations = 0usize;
    let mut radius_violations = 0usize;
    let mut max_ratio = 0.0f64;
    for _ in 0..samples {
        let v = rng.gen_range(3..300);
        let max_m = v * (v - 1) / 2;
        let m = (v - 1) + rng.gen_range(0..v.min(max_m - v + 2));
        let topo = connected_gnm(v, m.min(max_m), &mut rng);
        let k = rng.gen_range(1..6);
        let z = meir_moon_covering(&topo, k).expect("connected");
        let allowed = if v > k { v / (k + 1) } else { 1 };
        if z.len() > allowed {
            size_violations += 1;
        }
        max_ratio = max_ratio.max(z.len() as f64 / allowed.max(1) as f64);
        match covering_radius(&topo, &z).expect("valid centers") {
            Some(r) if (r as usize) <= k => {}
            _ => radius_violations += 1,
        }
    }
    cover.row(vec![
        "3..300".into(),
        "1..6".into(),
        samples.to_string(),
        size_violations.to_string(),
        radius_violations.to_string(),
        format!("{max_ratio:.3}"),
    ]);
    ctx.emit(&cover);
    println!(
        "Expected shape: zero violations in every column; max_depth at or\n\
         below the log2 bound; queries never exceed 2V (ratio <= 1).\n"
    );
}
