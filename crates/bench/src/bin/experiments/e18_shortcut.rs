//! E18 — the hierarchical shortcut mechanism vs. Algorithm 2 and the
//! composition baseline on bounded-weight graphs (related-work
//! extension, CNX-style shortcutting).
//!
//! Measures, per graph size, the p95 distance error and the declared
//! contract bound of three all-pairs approaches at one fixed budget:
//!
//! * all-pairs basic composition — the `~V^2 / eps` floor;
//! * Algorithm 2 (bounded-weight, balanced single covering);
//! * shortcut APSP — the covering ladder whose fine levels answer close
//!   pairs with a detour proportional to their own hop distance.
//!
//! The shortcut line should sit at or below Algorithm 2's and orders of
//! magnitude below the baseline's — the "beating a baseline, not
//! matching a theorem" claim the accuracy-audit suite asserts.

use super::context::Ctx;
use privpath_bench::{fmt, sample_pairs, Table};
use privpath_core::bounded::BoundedWeightParams;
use privpath_core::experiment::ErrorCollector;
use privpath_core::shortcut::ShortcutApspParams;
use privpath_dp::{Delta, Epsilon};
use privpath_engine::{mechanisms, Mechanism, ReleaseId};
use privpath_graph::algo::dijkstra;
use privpath_graph::generators::{connected_gnm, uniform_weights};

pub fn run(ctx: &Ctx) {
    let eps = Epsilon::new(1.0).unwrap();
    let delta = Delta::new(1e-6).unwrap();
    let max_weight = 1.0;
    let mut table = Table::new(
        "E18 shortcut APSP vs Algorithm 2 vs composition baseline (p95 err over pairs)",
        &[
            "V",
            "shortcut_p95",
            "bounded_p95",
            "baseline_p95",
            "shortcut_bound",
            "bounded_bound",
            "baseline_bound",
        ],
    );
    for &v in &[128usize, 256, 512, 1024] {
        let mut gen_rng = ctx.rng(v as u64);
        let topo = connected_gnm(v, 3 * v, &mut gen_rng);
        let weights = uniform_weights(topo.num_edges(), 0.0, max_weight, &mut gen_rng);

        let shortcut_params = ShortcutApspParams::approx(eps, delta, max_weight).unwrap();
        let bounded_params = BoundedWeightParams::approx(eps, delta, max_weight).unwrap();
        let baseline_params = mechanisms::AllPairsBaselineParams::basic(eps);

        let shortcut_bound = mechanisms::ShortcutApsp
            .error_bound(&topo, &shortcut_params, 0.05)
            .expect("contract")
            .alpha();
        let bounded_bound = mechanisms::BoundedWeight
            .error_bound(&topo, &bounded_params, 0.05)
            .expect("contract")
            .alpha();
        let baseline_bound = mechanisms::AllPairsBaseline
            .error_bound(&topo, &baseline_params, 0.05)
            .expect("contract")
            .alpha();

        let mut shortcut_err = ErrorCollector::new();
        let mut bounded_err = ErrorCollector::new();
        let mut baseline_err = ErrorCollector::new();
        for t in 0..ctx.trials {
            let mut mech = ctx.rng(v as u64 * 97 + t);
            let mut engine = ctx.engine(&topo, &weights);
            let shortcut_id = engine
                .release(&mechanisms::ShortcutApsp, &shortcut_params, &mut mech)
                .expect("valid");
            let bounded_id = engine
                .release(&mechanisms::BoundedWeight, &bounded_params, &mut mech)
                .expect("valid");
            let baseline_id = engine
                .release(&mechanisms::AllPairsBaseline, &baseline_params, &mut mech)
                .expect("valid");

            let mut pair_rng = ctx.rng(v as u64 * 73 + t);
            let mut pairs = sample_pairs(v, 40, &mut pair_rng);
            pairs.sort();
            let answers = |id: ReleaseId| {
                engine
                    .query(id)
                    .expect("distance-capable")
                    .distance_batch(&pairs)
                    .expect("connected")
            };
            let shortcut_d = answers(shortcut_id);
            let bounded_d = answers(bounded_id);
            let baseline_d = answers(baseline_id);

            let mut cur: Option<(usize, Vec<f64>)> = None;
            for (i, &(s, t2)) in pairs.iter().enumerate() {
                let dists = match &cur {
                    Some((src, d)) if *src == s.index() => d,
                    _ => {
                        let d = dijkstra(&topo, &weights, s)
                            .expect("valid")
                            .distances()
                            .to_vec();
                        cur = Some((s.index(), d));
                        &cur.as_ref().unwrap().1
                    }
                };
                let truth = dists[t2.index()];
                shortcut_err.push((shortcut_d[i] - truth).abs());
                bounded_err.push((bounded_d[i] - truth).abs());
                baseline_err.push((baseline_d[i] - truth).abs());
            }
        }
        table.row(vec![
            v.to_string(),
            fmt(shortcut_err.stats().p95),
            fmt(bounded_err.stats().p95),
            fmt(baseline_err.stats().p95),
            fmt(shortcut_bound),
            fmt(bounded_bound),
            fmt(baseline_bound),
        ]);
    }
    ctx.emit(&table);
}
