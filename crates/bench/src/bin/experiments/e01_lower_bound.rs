//! E1 — Theorem 5.1 / Figure 2: the reconstruction lower bound for
//! private shortest paths.
//!
//! The attack encodes a uniform secret into the parallel-edge path gadget.
//! Against the *exact* release it recovers every bit (objective error 0,
//! Hamming 0): blatant non-privacy. Against Algorithm 3 the recovery rate
//! collapses toward 1/2 and the measured mean path error sits above the
//! Theorem 5.1 floor `alpha = n (1 - (1+e^eps) delta) / (1 + e^{2eps})`.

use super::context::Ctx;
use privpath_bench::{fmt, Table};
use privpath_core::attack::{exact_shortest_path, random_bits, thm51_alpha_bits, PathAttack};
use privpath_core::shortest_path::{private_shortest_paths, ShortestPathParams};
use privpath_dp::{Delta, Epsilon};
use rand::Rng;

pub fn run(ctx: &Ctx) {
    let mut table = Table::new(
        "E1 path reconstruction: exact vs Algorithm 3",
        &[
            "bits",
            "eps",
            "exact_recovered",
            "dp_recovered_frac",
            "dp_mean_error",
            "alpha_lower_bound",
            "error_over_alpha",
        ],
    );
    let gamma = 0.1;
    for &n in &[32usize, 64, 128, 256] {
        let attack = PathAttack::new(n);
        let mut rng = ctx.rng(n as u64);

        // Exact mechanism: perfect recovery, always.
        let bits = random_bits(n, &mut rng);
        let w = attack.encode(&bits);
        let exact_path =
            exact_shortest_path(attack.topology(), &w, attack.s(), attack.t()).unwrap();
        let exact_recovered =
            n - privpath_core::attack::hamming(&bits, &attack.decode(&exact_path));

        for &eps_v in &[0.1f64, 0.5, 1.0] {
            let eps = Epsilon::new(eps_v).unwrap();
            let params = ShortestPathParams::new(eps, gamma).unwrap();
            let mut hamming_total = 0usize;
            let mut err_total = 0.0;
            for t in 0..ctx.trials {
                let mech_seed: u64 = rng.gen();
                let outcome = attack
                    .run(&mut rng, |topo, w| {
                        let mut mech = ctx.rng(mech_seed ^ t);
                        let rel = private_shortest_paths(topo, w, &params, &mut mech)?;
                        rel.path(attack.s(), attack.t())
                    })
                    .expect("gadget is connected");
                hamming_total += outcome.hamming;
                err_total += outcome.objective_error;
            }
            let trials = ctx.trials as f64;
            let dp_recovered = 1.0 - hamming_total as f64 / (trials * n as f64);
            let mean_err = err_total / trials;
            let alpha = thm51_alpha_bits(n, eps, Delta::zero());
            table.row(vec![
                n.to_string(),
                fmt(eps_v),
                format!("{exact_recovered}/{n}"),
                fmt(dp_recovered),
                fmt(mean_err),
                fmt(alpha),
                if alpha > 0.0 {
                    fmt(mean_err / alpha)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    ctx.emit(&table);
    println!(
        "Expected shape: exact recovery is total; DP recovery ~0.5 at small eps;\n\
         dp_mean_error >= alpha (ratio >= 1), with alpha ~ 0.49 * bits as eps -> 0.\n"
    );
}
