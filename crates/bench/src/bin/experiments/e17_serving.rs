//! E17 — serve-path throughput: queries/sec against a `QueryService`
//! snapshot as reader threads grow.
//!
//! The release-once/query-many architecture means the read path is pure
//! post-processing over an immutable snapshot, so serving should scale
//! near-linearly with reader threads until cores run out. This
//! experiment measures that claim on the production serve path (the
//! same `answer_one` the TCP server runs per request), on a
//! shortest-path release over a G(n, m) road network.

use super::context::Ctx;
use privpath_bench::{fmt, Table};
use privpath_core::shortest_path::ShortestPathParams;
use privpath_dp::Epsilon;
use privpath_engine::QueryService;
use privpath_graph::generators::{connected_gnm, uniform_weights};
use privpath_graph::NodeId;
use privpath_serve::{answer_one, QueryRequest};
use rand::Rng;
use std::time::Instant;

pub fn run(ctx: &Ctx) {
    let v = 512;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Speedup tops out at the core count; on a single-core box a flat
    // curve is the expected result (and near-flat rather than degrading
    // is itself evidence the read path has no lock contention).
    println!("available parallelism: {cores} core(s)");
    let mut table = Table::new(
        "E17 serve-path throughput vs reader threads",
        &["threads", "queries", "wall_ms", "qps", "speedup_vs_1"],
    );

    let mut rng = ctx.rng(17);
    let topo = connected_gnm(v, 4 * v, &mut rng);
    let weights = uniform_weights(topo.num_edges(), 0.0, 10.0, &mut rng);
    let mut engine = ctx.engine(&topo, &weights);
    let params = ShortestPathParams::new(Epsilon::new(1.0).unwrap(), 0.05).unwrap();
    engine
        .release(
            &privpath_engine::mechanisms::ShortestPaths,
            &params,
            &mut rng,
        )
        .expect("release");
    let service = engine.snapshot();
    let id = service.releases().next().expect("one release").id();

    // A fixed workload with heavy source reuse, identical for every
    // thread count so the comparison is apples to apples.
    let sources = 32;
    let per_source = 8 * ctx.trials.max(1) as usize;
    let mut requests = Vec::with_capacity(sources * per_source);
    for _ in 0..sources {
        let s = NodeId::new(rng.gen_range(0..v));
        for _ in 0..per_source {
            requests.push(QueryRequest::Distance {
                release: id.into(),
                from: s,
                to: NodeId::new(rng.gen_range(0..v)),
                gamma: None,
            });
        }
    }

    let mut baseline_qps: Option<f64> = None;
    for &threads in &[1usize, 2, 4, 8] {
        let start = Instant::now();
        std::thread::scope(|scope| {
            let chunk = requests.len().div_ceil(threads);
            for shard in requests.chunks(chunk) {
                let service: QueryService = service.clone();
                scope.spawn(move || {
                    for req in shard {
                        std::hint::black_box(answer_one(&service, req));
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let qps = requests.len() as f64 / secs;
        let speedup = qps / *baseline_qps.get_or_insert(qps);
        table.row(vec![
            threads.to_string(),
            requests.len().to_string(),
            fmt(secs * 1e3),
            fmt(qps),
            fmt(speedup),
        ]);
    }
    ctx.emit(&table);
}
