//! E7 — Theorems 4.3/4.5: bounded-weight all-pairs distances under
//! approximate DP, with the auto-balanced `k = floor(sqrt(V/(M eps)))`.
//!
//! Sweeps V and M on connected G(n, 3n) graphs, measuring per-pair error
//! against the `2kM + noise` bound and against the synthetic-graph
//! baseline. The headline: error grows ~sqrt(V * M), sublinear in V.

use super::context::Ctx;
use privpath_bench::{fmt, sample_pairs, Table};
use privpath_core::baselines;
use privpath_core::bounded::{bounded_weight_all_pairs, BoundedWeightParams};
use privpath_core::bounds;
use privpath_core::experiment::ErrorCollector;
use privpath_core::model::NeighborScale;
use privpath_dp::{Delta, Epsilon};
use privpath_graph::algo::dijkstra;
use privpath_graph::generators::{connected_gnm, uniform_weights};

pub fn run(ctx: &Ctx) {
    let eps = Epsilon::new(1.0).unwrap();
    let delta = Delta::new(1e-6).unwrap();
    let gamma = 0.05;
    let mut table = Table::new(
        "E7 bounded-weight all-pairs, approximate DP (Thm 4.5, auto-k)",
        &[
            "V",
            "M",
            "k",
            "|Z|",
            "p95_err",
            "max_err",
            "bound",
            "synthetic_p95",
        ],
    );
    for &v in &[128usize, 256, 512, 1024] {
        for &m_w in &[0.25f64, 1.0, 4.0] {
            let mut gen_rng = ctx.rng(v as u64 * 7 + (m_w * 100.0) as u64);
            let topo = connected_gnm(v, 3 * v, &mut gen_rng);
            let weights = uniform_weights(topo.num_edges(), 0.0, m_w, &mut gen_rng);

            let params = BoundedWeightParams::approx(eps, delta, m_w).expect("valid");
            let mut errs = ErrorCollector::new();
            let mut synth_errs = ErrorCollector::new();
            let mut k = 0;
            let mut z = 0;
            let mut bound = 0.0;
            for t in 0..ctx.trials {
                let mut mech = ctx.rng(v as u64 * 31 + t);
                let rel = bounded_weight_all_pairs(&topo, &weights, &params, &mut mech)
                    .expect("connected bounded workload");
                k = rel.k();
                z = rel.centers().len();
                bound = bounds::bounded_error(
                    rel.k(),
                    m_w,
                    rel.noise_scale(),
                    rel.num_released(),
                    gamma,
                );
                let synth = baselines::rng::synthetic_graph_release(
                    &topo,
                    &weights,
                    eps,
                    NeighborScale::unit(),
                    &mut mech,
                )
                .expect("valid");

                let mut pair_rng = ctx.rng(v as u64 * 43 + t);
                let mut pairs = sample_pairs(v, 50, &mut pair_rng);
                pairs.sort();
                let mut cur: Option<(privpath_graph::NodeId, Vec<f64>, Vec<f64>)> = None;
                for (s, t2) in pairs {
                    let refresh = cur.as_ref().is_none_or(|(src, _, _)| *src != s);
                    if refresh {
                        let spt = dijkstra(&topo, &weights, s).expect("nonneg");
                        let synth_d = synth.distances_from(s).expect("valid");
                        cur = Some((s, spt.distances().to_vec(), synth_d));
                    }
                    let (_, truths, synth_d) = cur.as_ref().expect("set");
                    let truth = truths[t2.index()];
                    errs.push((rel.distance(s, t2) - truth).abs());
                    synth_errs.push((synth_d[t2.index()] - truth).abs());
                }
            }
            let stats = errs.stats();
            table.row(vec![
                v.to_string(),
                fmt(m_w),
                k.to_string(),
                z.to_string(),
                fmt(stats.p95),
                fmt(stats.max),
                fmt(bound),
                fmt(synth_errs.stats().p95),
            ]);
        }
    }
    ctx.emit(&table);
    println!(
        "Expected shape: at fixed M, quadrupling V roughly doubles the error\n\
         (sqrt(V) scaling); larger M means smaller k (cheaper detours are\n\
         impossible) and more centers. The synthetic baseline is competitive\n\
         on these low-diameter graphs but carries an O(V) guarantee; the\n\
         covering mechanism's bound column grows only ~sqrt(V M).\n"
    );
}
