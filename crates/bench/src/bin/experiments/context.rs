//! Shared experiment context.

use privpath_bench::Table;
use privpath_engine::ReleaseEngine;
use privpath_graph::{EdgeWeights, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Run configuration shared by every experiment.
pub struct Ctx {
    /// Number of mechanism trials per configuration.
    pub trials: u64,
    /// Base seed; experiments derive sub-seeds deterministically.
    pub seed: u64,
    /// CSV output directory (`None` disables CSV).
    pub out: Option<PathBuf>,
}

impl Ctx {
    /// A deterministic RNG for a given salt.
    pub fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(salt),
        )
    }

    /// An unbounded release engine over a copy of the workload, so
    /// experiments run mechanisms through the production release path
    /// while keeping a per-trial spend ledger.
    pub fn engine(&self, topo: &Topology, weights: &EdgeWeights) -> ReleaseEngine {
        ReleaseEngine::new(topo.clone(), weights.clone()).expect("experiment workloads validate")
    }

    /// Prints a table and writes its CSV if an output directory is set.
    pub fn emit(&self, table: &Table) {
        table.print();
        if let Some(dir) = &self.out {
            if let Err(e) = table.write_csv(dir) {
                eprintln!("warning: failed to write CSV: {e}");
            }
        }
    }
}
