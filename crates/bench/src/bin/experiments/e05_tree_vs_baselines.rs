//! E5 — Theorem 4.2 vs the Section 4 baselines: all-pairs distances on
//! trees.
//!
//! On the path graph (the hardest tree: diameter V) the tree mechanism's
//! polylog error separates from the synthetic graph's `~sqrt(V)`-typical /
//! `~V`-worst-case error and from basic composition's `~V^2` noise. We
//! report the max error over sampled pairs — the quantity the theorems
//! bound — plus each approach's theoretical guarantee.

use super::context::Ctx;
use privpath_bench::{fmt, sample_pairs, Table};
use privpath_core::baselines;
use privpath_core::bounds;
use privpath_core::experiment::ErrorCollector;
use privpath_core::model::NeighborScale;
use privpath_core::tree_distance::{tree_all_pairs_distances, TreeDistanceParams};
use privpath_dp::{Delta, Epsilon};
use privpath_graph::generators::{path_graph, random_tree_prufer, uniform_weights};
use privpath_graph::tree::{weighted_depths, RootedTree};
use privpath_graph::{NodeId, Topology};

pub fn run(ctx: &Ctx) {
    let eps = Epsilon::new(1.0).unwrap();
    let delta = Delta::new(1e-6).unwrap();
    let gamma = 0.05;
    let mut table = Table::new(
        "E5 all-pairs tree distances: mechanism vs baselines (max err over pairs)",
        &[
            "topology",
            "V",
            "tree_mech",
            "synthetic",
            "advanced_comp",
            "basic_comp",
            "tree_bound",
            "synth_bound",
        ],
    );

    for (name, sizes) in [
        ("path", vec![128usize, 512, 2048, 8192, 32768]),
        ("random_tree", vec![128, 512, 2048]),
    ] {
        for &v in &sizes {
            let topo: Topology = if name == "path" {
                path_graph(v)
            } else {
                random_tree_prufer(v, &mut ctx.rng(v as u64))
            };
            let mut wrng = ctx.rng(3 + v as u64);
            let weights = uniform_weights(topo.num_edges(), 0.0, 50.0, &mut wrng);

            // Truth per sampled source.
            let mut pair_rng = ctx.rng(4 + v as u64);
            let pairs = sample_pairs(v, 80, &mut pair_rng);
            let truth_of = |s: NodeId| -> Vec<f64> {
                let rt = RootedTree::new(&topo, s).expect("tree");
                weighted_depths(&rt, &weights).expect("fits")
            };

            let mut tree_err = ErrorCollector::new();
            let mut synth_err = ErrorCollector::new();
            let mut adv_err = ErrorCollector::new();
            let mut basic_err = ErrorCollector::new();
            // Basic composition at V=8192 would mean 33M queries and the
            // advanced-composition release does V full Dijkstras; their
            // noise scales alone tell the story at large V, so cap the
            // measured variants.
            let measure_basic = v <= 512;
            let measure_advanced = v <= 2048;

            for t in 0..ctx.trials {
                let mut mech = ctx.rng(100 + t * 17 + v as u64);
                let tree_rel = tree_all_pairs_distances(
                    &topo,
                    &weights,
                    &TreeDistanceParams::new(eps),
                    &mut mech,
                )
                .expect("tree");
                let synth = baselines::rng::synthetic_graph_release(
                    &topo,
                    &weights,
                    eps,
                    NeighborScale::unit(),
                    &mut mech,
                )
                .expect("valid");
                // Advanced composition answers only the sampled pairs in
                // this measurement, but is charged for all V(V-1)/2 —
                // matching the released object's actual guarantee.
                let adv = if measure_advanced {
                    Some(
                        baselines::rng::all_pairs_advanced_composition(
                            &topo,
                            &weights,
                            eps,
                            delta,
                            NeighborScale::unit(),
                            &mut mech,
                        )
                        .expect("valid"),
                    )
                } else {
                    None
                };
                let basic = if measure_basic {
                    Some(
                        baselines::rng::all_pairs_basic_composition(
                            &topo,
                            &weights,
                            eps,
                            NeighborScale::unit(),
                            &mut mech,
                        )
                        .expect("valid"),
                    )
                } else {
                    None
                };

                let mut max_tree = 0.0f64;
                let mut max_synth = 0.0f64;
                let mut max_adv = 0.0f64;
                let mut max_basic = 0.0f64;
                let mut cur: Option<(NodeId, Vec<f64>, Vec<f64>)> = None;
                let mut sorted = pairs.clone();
                sorted.sort();
                for &(s, t2) in &sorted {
                    let refresh = cur.as_ref().is_none_or(|(src, _, _)| *src != s);
                    if refresh {
                        let truths = truth_of(s);
                        let synth_d = synth.distances_from(s).expect("valid");
                        cur = Some((s, truths, synth_d));
                    }
                    let (_, truths, synth_d) = cur.as_ref().expect("set");
                    let truth = truths[t2.index()];
                    max_tree = max_tree.max((tree_rel.distance(s, t2) - truth).abs());
                    max_synth = max_synth.max((synth_d[t2.index()] - truth).abs());
                    if let Some(adv) = &adv {
                        max_adv = max_adv.max((adv.distance(s, t2) - truth).abs());
                    }
                    if let Some(basic) = &basic {
                        max_basic = max_basic.max((basic.distance(s, t2) - truth).abs());
                    }
                }
                tree_err.push(max_tree);
                synth_err.push(max_synth);
                if measure_advanced {
                    adv_err.push(max_adv);
                }
                if measure_basic {
                    basic_err.push(max_basic);
                }
            }

            table.row(vec![
                name.into(),
                v.to_string(),
                fmt(tree_err.stats().mean),
                fmt(synth_err.stats().mean),
                if measure_advanced {
                    fmt(adv_err.stats().mean)
                } else {
                    "(skipped)".into()
                },
                if measure_basic {
                    fmt(basic_err.stats().mean)
                } else {
                    "(skipped)".into()
                },
                fmt(bounds::thm42_all_pairs_tree(v, 1.0, gamma)),
                fmt((v as f64) * ((topo.num_edges() as f64) / gamma).ln()),
            ]);
        }
    }
    ctx.emit(&table);
    println!(
        "Expected shape: tree_mech grows polylog; synthetic grows ~sqrt(V) on\n\
         the path (random-walk cancellation) with an O(V) guarantee; advanced\n\
         composition grows ~V; basic composition ~V^2 and is hopeless. The\n\
         measured crossover where tree_mech < synthetic lands on the path\n\
         topology as V grows — the separation of Theorem 4.2.\n"
    );
}
