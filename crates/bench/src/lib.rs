//! Shared infrastructure for the experiment harness and benches: aligned
//! table printing, CSV output, and workload helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use privpath_graph::NodeId;
use rand::Rng;

/// A simple right-aligned text table that can also be written as CSV.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV into `dir/<slug>.csv` where the slug is
    /// derived from the title.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Samples `count` ordered pairs of distinct vertices.
pub fn sample_pairs(n: usize, count: usize, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2, "need at least two vertices to form pairs");
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            pairs.push((NodeId::new(a), NodeId::new(b)));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        let r = t.render();
        assert!(r.contains("## Demo"));
        assert!(r.contains("long_header"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("X", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_written() {
        let mut t = Table::new("E99 demo table", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("privpath_table_test");
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("e99_demo_table.csv")).unwrap();
        assert!(content.starts_with("x,y"));
        assert!(content.contains("1,2"));
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.42), "42.4");
        assert_eq!(fmt(1.23456), "1.235");
    }

    #[test]
    fn pairs_are_distinct_vertices() {
        let mut rng = StdRng::seed_from_u64(1);
        for (a, b) in sample_pairs(10, 50, &mut rng) {
            assert_ne!(a, b);
        }
    }
}
