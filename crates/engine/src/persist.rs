//! Unified persistence for engine releases: store any distance-capable
//! release once, serve queries from it forever (post-processing carries
//! the original privacy guarantee unchanged).
//!
//! Generalizes `privpath_core::persist` (which only covered shortest-path
//! releases) to a tagged container format:
//!
//! ```text
//! privpath-release v3
//! kind <mechanism-name>
//! label <spend label>
//! eps <f64>
//! delta <f64>
//! accuracy none | accuracy <contract tag + fields>
//! <kind-specific body, reusing the substrate's topology/weights blocks>
//! ```
//!
//! v3 adds the `accuracy` line: the release's
//! [`AccuracyContract`](privpath_core::bounds::AccuracyContract) in its
//! [`to_line`](privpath_core::bounds::AccuracyContract::to_line) form, so
//! a stored release carries the theorem-named error bound it was created
//! under and the serve path can report it at any confidence. The legacy
//! `privpath-release v2` (no accuracy line) and `privpath-sp-release v1`
//! (shortest-path only) formats are still readable — the loader sniffs
//! the header and upgrades on the fly, leaving the contract empty. The
//! `shortcut-apsp` kind (hierarchical shortcut ladder) persists its
//! level structure — radius, centers, sorted shortcut triples — under
//! the same v3 header; files written before it existed keep loading
//! unchanged. Structure-releasing kinds (MST, matching) have no
//! serve-side query surface and are not persisted.

use crate::engine::{ReleaseEngine, ReleaseId};
use crate::error::EngineError;
use crate::release::{AnyRelease, ReleaseKind};
use privpath_core::baselines::{AllPairsDistanceRelease, SyntheticGraphRelease};
use privpath_core::bounded::BoundedWeightRelease;
use privpath_core::bounds::AccuracyContract;
use privpath_core::model::NeighborScale;
use privpath_core::persist::read_shortest_path_release;
use privpath_core::shortcut::ShortcutApspRelease;
use privpath_core::shortest_path::{ShortestPathParams, ShortestPathRelease};
use privpath_core::tree_distance::{TreeAllPairsRelease, TreeSingleSourceRelease};
use privpath_dp::Epsilon;
use privpath_graph::io::{read_topology, read_weights, write_topology, write_weights};
use privpath_graph::NodeId;
use std::io::{BufRead, BufReader, Write};

const HEADER_V3: &str = "privpath-release v3";
const HEADER_V2: &str = "privpath-release v2";
const HEADER_V1: &str = "privpath-sp-release v1";

/// A release as read from storage: the object plus its accounting
/// metadata, ready for [`ReleaseEngine::adopt`] or direct querying.
#[derive(Clone, Debug)]
pub struct StoredRelease {
    /// The spend label the release was registered under.
    pub label: String,
    /// The epsilon the release cost.
    pub eps: f64,
    /// The delta the release cost.
    pub delta: f64,
    /// The accuracy contract the release was created under (`None` for
    /// legacy v1/v2 files, which predate contracts).
    pub accuracy: Option<AccuracyContract>,
    /// The release object.
    pub release: AnyRelease,
}

fn persist_err(msg: impl Into<String>) -> EngineError {
    EngineError::Persist(msg.into())
}

fn io_err(e: impl std::fmt::Display) -> EngineError {
    persist_err(e.to_string())
}

/// Writes a release in the v3 container format.
///
/// # Errors
/// [`EngineError::UnsupportedQuery`] for kinds without persistence (MST,
/// matching, hld-tree); [`EngineError::Persist`] for I/O failures.
pub fn write_release(
    out: &mut impl Write,
    label: &str,
    eps: f64,
    delta: f64,
    accuracy: Option<&AccuracyContract>,
    release: &AnyRelease,
) -> Result<(), EngineError> {
    let kind = release.kind();
    match release {
        AnyRelease::ShortestPath(_)
        | AnyRelease::Tree(_)
        | AnyRelease::BoundedWeight(_)
        | AnyRelease::SyntheticGraph(_)
        | AnyRelease::AllPairsBaseline(_)
        | AnyRelease::ShortcutApsp(_) => {}
        AnyRelease::Mst(_) | AnyRelease::Matching(_) | AnyRelease::HldTree(_) => {
            return Err(EngineError::UnsupportedQuery {
                kind: kind.as_str(),
                query: "persist",
            });
        }
    }
    writeln!(out, "{HEADER_V3}").map_err(io_err)?;
    writeln!(out, "kind {}", kind.as_str()).map_err(io_err)?;
    writeln!(out, "label {label}").map_err(io_err)?;
    writeln!(out, "eps {eps:?}").map_err(io_err)?;
    writeln!(out, "delta {delta:?}").map_err(io_err)?;
    match accuracy {
        Some(contract) => writeln!(out, "accuracy {}", contract.to_line()).map_err(io_err)?,
        None => writeln!(out, "accuracy none").map_err(io_err)?,
    }
    match release {
        AnyRelease::ShortestPath(r) => {
            let p = r.params();
            writeln!(out, "gamma {:?}", p.gamma()).map_err(io_err)?;
            writeln!(out, "scale {:?}", p.scale().value()).map_err(io_err)?;
            writeln!(out, "shift_enabled {}", p.shift_enabled()).map_err(io_err)?;
            writeln!(out, "shift_amount {:?}", r.shift_amount()).map_err(io_err)?;
            write_topology(out, r.topology()).map_err(io_err)?;
            write_weights(out, r.released_weights()).map_err(io_err)?;
        }
        AnyRelease::Tree(r) => {
            let s = r.single_source();
            writeln!(out, "root {}", s.root().index()).map_err(io_err)?;
            writeln!(out, "noise_scale {:?}", s.noise_scale()).map_err(io_err)?;
            writeln!(out, "depth {}", s.decomposition_depth()).map_err(io_err)?;
            writeln!(out, "num_queries {}", s.num_queries()).map_err(io_err)?;
            writeln!(out, "estimates {}", s.estimates().len()).map_err(io_err)?;
            for e in s.estimates() {
                writeln!(out, "{e:?}").map_err(io_err)?;
            }
            // The topology is needed to rebuild the (public) LCA index.
            write_topology(out, r.topology()).map_err(io_err)?;
        }
        AnyRelease::BoundedWeight(r) => {
            writeln!(out, "k {}", r.k()).map_err(io_err)?;
            writeln!(out, "noise_scale {:?}", r.noise_scale()).map_err(io_err)?;
            let centers: Vec<String> = r.centers().iter().map(|c| c.index().to_string()).collect();
            writeln!(out, "centers {}", centers.len()).map_err(io_err)?;
            writeln!(out, "{}", centers.join(" ")).map_err(io_err)?;
            writeln!(out, "matrix {}", r.released_matrix().len()).map_err(io_err)?;
            for v in r.released_matrix() {
                writeln!(out, "{v:?}").map_err(io_err)?;
            }
            write_topology(out, r.topology()).map_err(io_err)?;
        }
        AnyRelease::SyntheticGraph(r) => {
            writeln!(out, "noise_scale {:?}", r.noise_scale()).map_err(io_err)?;
            write_topology(out, r.topology()).map_err(io_err)?;
            write_weights(out, r.released_weights()).map_err(io_err)?;
        }
        AnyRelease::AllPairsBaseline(r) => {
            writeln!(out, "n {}", r.num_nodes()).map_err(io_err)?;
            writeln!(out, "noise_scale {:?}", r.noise_scale()).map_err(io_err)?;
            writeln!(out, "matrix {}", r.matrix().len()).map_err(io_err)?;
            for v in r.matrix() {
                writeln!(out, "{v:?}").map_err(io_err)?;
            }
        }
        AnyRelease::ShortcutApsp(r) => {
            writeln!(out, "noise_scale {:?}", r.noise_scale()).map_err(io_err)?;
            writeln!(out, "max_weight {:?}", r.max_weight()).map_err(io_err)?;
            writeln!(out, "levels {}", r.levels().len()).map_err(io_err)?;
            for level in r.levels() {
                writeln!(out, "k {}", level.k()).map_err(io_err)?;
                let centers: Vec<String> = level
                    .centers()
                    .iter()
                    .map(|c| c.index().to_string())
                    .collect();
                writeln!(out, "centers {}", centers.len()).map_err(io_err)?;
                writeln!(out, "{}", centers.join(" ")).map_err(io_err)?;
                writeln!(out, "shortcuts {}", level.values().len()).map_err(io_err)?;
                for &(i, j, value) in level.values() {
                    writeln!(out, "{i} {j} {value:?}").map_err(io_err)?;
                }
            }
            write_topology(out, r.topology()).map_err(io_err)?;
        }
        AnyRelease::Mst(_) | AnyRelease::Matching(_) | AnyRelease::HldTree(_) => unreachable!(),
    }
    Ok(())
}

/// Reads a release written by [`write_release`] (or the legacy v2 /
/// v1 formats, upgraded transparently with an empty contract).
///
/// # Errors
/// [`EngineError::Persist`] for malformed input.
pub fn read_release(mut input: impl BufRead) -> Result<StoredRelease, EngineError> {
    // Buffer everything so the legacy reader can re-consume its header.
    let mut text = String::new();
    input.read_to_string(&mut text).map_err(io_err)?;
    let first = text.lines().next().unwrap_or("");
    if first == HEADER_V1 {
        let release =
            read_shortest_path_release(BufReader::new(text.as_bytes())).map_err(io_err)?;
        let eps = release.params().eps().value();
        return Ok(StoredRelease {
            label: "shortest-path#legacy".into(),
            eps,
            delta: 0.0,
            accuracy: None,
            release: AnyRelease::ShortestPath(release),
        });
    }
    let has_accuracy_line = match first {
        HEADER_V3 => true,
        HEADER_V2 => false,
        _ => return Err(persist_err(format!("bad header {first:?}"))),
    };

    let mut reader = BufReader::new(text.as_bytes());
    let mut line = String::new();
    let mut next_line =
        |reader: &mut BufReader<&[u8]>, expect: &str| -> Result<String, EngineError> {
            line.clear();
            let n = reader.read_line(&mut line).map_err(io_err)?;
            if n == 0 {
                return Err(persist_err(format!(
                    "unexpected end of input, expected {expect}"
                )));
            }
            Ok(line.trim_end().to_string())
        };

    let _header = next_line(&mut reader, "header")?;
    let kind_line = next_line(&mut reader, "kind")?;
    let kind_str = kind_line
        .strip_prefix("kind ")
        .ok_or_else(|| persist_err("expected `kind <name>`"))?;
    let kind = ReleaseKind::parse(kind_str)
        .ok_or_else(|| persist_err(format!("unknown release kind {kind_str:?}")))?;
    let label = next_line(&mut reader, "label")?
        .strip_prefix("label ")
        .ok_or_else(|| persist_err("expected `label <text>`"))?
        .to_string();
    let eps = parse_field_f64(&next_line(&mut reader, "eps")?, "eps ")?;
    let delta = parse_field_f64(&next_line(&mut reader, "delta")?, "delta ")?;
    let accuracy = if has_accuracy_line {
        let line = next_line(&mut reader, "accuracy")?;
        let spec = line
            .strip_prefix("accuracy ")
            .ok_or_else(|| persist_err("expected `accuracy <contract>` or `accuracy none`"))?;
        if spec.trim() == "none" {
            None
        } else {
            Some(
                AccuracyContract::parse_line(spec)
                    .ok_or_else(|| persist_err(format!("invalid accuracy contract {spec:?}")))?,
            )
        }
    } else {
        None
    };

    let release = match kind {
        ReleaseKind::ShortestPath => {
            let gamma = parse_field_f64(&next_line(&mut reader, "gamma")?, "gamma ")?;
            let scale = parse_field_f64(&next_line(&mut reader, "scale")?, "scale ")?;
            let shift_line = next_line(&mut reader, "shift_enabled")?;
            let shift_enabled: bool = shift_line
                .strip_prefix("shift_enabled ")
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| persist_err("expected `shift_enabled <bool>`"))?;
            let shift_amount =
                parse_field_f64(&next_line(&mut reader, "shift_amount")?, "shift_amount ")?;
            let topo = read_topology(&mut reader).map_err(io_err)?;
            let weights = read_weights(&mut reader).map_err(io_err)?;
            let eps_p = Epsilon::new(eps).map_err(io_err)?;
            let mut params = ShortestPathParams::new(eps_p, gamma).map_err(io_err)?;
            params = params.with_scale(NeighborScale::new(scale).map_err(io_err)?);
            if !shift_enabled {
                params = params.without_shift();
            }
            AnyRelease::ShortestPath(
                ShortestPathRelease::from_parts(topo, weights, params, shift_amount)
                    .map_err(io_err)?,
            )
        }
        ReleaseKind::Tree => {
            let root = parse_field_usize(&next_line(&mut reader, "root")?, "root ")?;
            let noise_scale =
                parse_field_f64(&next_line(&mut reader, "noise_scale")?, "noise_scale ")?;
            let depth = parse_field_usize(&next_line(&mut reader, "depth")?, "depth ")?;
            let num_queries =
                parse_field_usize(&next_line(&mut reader, "num_queries")?, "num_queries ")?;
            let count = parse_field_usize(&next_line(&mut reader, "estimates")?, "estimates ")?;
            let mut estimates = Vec::with_capacity(count);
            for _ in 0..count {
                let v: f64 = next_line(&mut reader, "estimate value")?
                    .trim()
                    .parse()
                    .map_err(|_| persist_err("invalid estimate value"))?;
                estimates.push(v);
            }
            let topo = read_topology(&mut reader).map_err(io_err)?;
            let single = TreeSingleSourceRelease::from_parts(
                NodeId::new(root),
                estimates,
                noise_scale,
                depth,
                num_queries,
            )
            .map_err(io_err)?;
            AnyRelease::Tree(TreeAllPairsRelease::from_parts(&topo, single).map_err(io_err)?)
        }
        ReleaseKind::BoundedWeight => {
            let k = parse_field_usize(&next_line(&mut reader, "k")?, "k ")?;
            let noise_scale =
                parse_field_f64(&next_line(&mut reader, "noise_scale")?, "noise_scale ")?;
            let z = parse_field_usize(&next_line(&mut reader, "centers")?, "centers ")?;
            let centers_line = next_line(&mut reader, "center ids")?;
            let centers: Vec<NodeId> = centers_line
                .split_whitespace()
                .map(|t| t.parse::<usize>().map(NodeId::new))
                .collect::<Result<_, _>>()
                .map_err(|_| persist_err("invalid center id"))?;
            if centers.len() != z {
                return Err(persist_err(format!(
                    "expected {z} centers, found {}",
                    centers.len()
                )));
            }
            let count = parse_field_usize(&next_line(&mut reader, "matrix")?, "matrix ")?;
            let mut matrix = Vec::with_capacity(count);
            for _ in 0..count {
                let v: f64 = next_line(&mut reader, "matrix value")?
                    .trim()
                    .parse()
                    .map_err(|_| persist_err("invalid matrix value"))?;
                matrix.push(v);
            }
            let topo = read_topology(&mut reader).map_err(io_err)?;
            AnyRelease::BoundedWeight(
                BoundedWeightRelease::from_parts(&topo, centers, k, matrix, noise_scale)
                    .map_err(io_err)?,
            )
        }
        ReleaseKind::SyntheticGraph => {
            let noise_scale =
                parse_field_f64(&next_line(&mut reader, "noise_scale")?, "noise_scale ")?;
            let topo = read_topology(&mut reader).map_err(io_err)?;
            let weights = read_weights(&mut reader).map_err(io_err)?;
            AnyRelease::SyntheticGraph(
                SyntheticGraphRelease::from_parts(topo, weights, noise_scale).map_err(io_err)?,
            )
        }
        ReleaseKind::AllPairsBaseline => {
            let n = parse_field_usize(&next_line(&mut reader, "n")?, "n ")?;
            let noise_scale =
                parse_field_f64(&next_line(&mut reader, "noise_scale")?, "noise_scale ")?;
            let count = parse_field_usize(&next_line(&mut reader, "matrix")?, "matrix ")?;
            let mut matrix = Vec::with_capacity(count);
            for _ in 0..count {
                let v: f64 = next_line(&mut reader, "matrix value")?
                    .trim()
                    .parse()
                    .map_err(|_| persist_err("invalid matrix value"))?;
                matrix.push(v);
            }
            AnyRelease::AllPairsBaseline(
                AllPairsDistanceRelease::from_parts(n, matrix, noise_scale).map_err(io_err)?,
            )
        }
        ReleaseKind::ShortcutApsp => {
            let noise_scale =
                parse_field_f64(&next_line(&mut reader, "noise_scale")?, "noise_scale ")?;
            let max_weight =
                parse_field_f64(&next_line(&mut reader, "max_weight")?, "max_weight ")?;
            let num_levels = parse_field_usize(&next_line(&mut reader, "levels")?, "levels ")?;
            let mut levels = Vec::with_capacity(num_levels);
            for _ in 0..num_levels {
                let k = parse_field_usize(&next_line(&mut reader, "k")?, "k ")?;
                let z = parse_field_usize(&next_line(&mut reader, "centers")?, "centers ")?;
                let centers_line = next_line(&mut reader, "center ids")?;
                let centers: Vec<NodeId> = centers_line
                    .split_whitespace()
                    .map(|t| t.parse::<usize>().map(NodeId::new))
                    .collect::<Result<_, _>>()
                    .map_err(|_| persist_err("invalid center id"))?;
                if centers.len() != z {
                    return Err(persist_err(format!(
                        "expected {z} centers, found {}",
                        centers.len()
                    )));
                }
                let count = parse_field_usize(&next_line(&mut reader, "shortcuts")?, "shortcuts ")?;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let line = next_line(&mut reader, "shortcut triple")?;
                    let mut t = line.split_whitespace();
                    let triple = (|| {
                        let i: u32 = t.next()?.parse().ok()?;
                        let j: u32 = t.next()?.parse().ok()?;
                        let value: f64 = t.next()?.parse().ok()?;
                        t.next().is_none().then_some((i, j, value))
                    })()
                    .ok_or_else(|| persist_err(format!("invalid shortcut triple {line:?}")))?;
                    values.push(triple);
                }
                levels.push((k, centers, values));
            }
            let topo = read_topology(&mut reader).map_err(io_err)?;
            AnyRelease::ShortcutApsp(
                ShortcutApspRelease::from_parts(&topo, levels, noise_scale, max_weight)
                    .map_err(io_err)?,
            )
        }
        ReleaseKind::Mst | ReleaseKind::Matching | ReleaseKind::HldTree => {
            return Err(persist_err(format!(
                "release kind `{kind}` has no persistence format"
            )));
        }
    };

    Ok(StoredRelease {
        label,
        eps,
        delta,
        accuracy,
        release,
    })
}

fn parse_field_f64(line: &str, prefix: &str) -> Result<f64, EngineError> {
    line.strip_prefix(prefix)
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| persist_err(format!("expected `{prefix}<float>`, got {line:?}")))
}

fn parse_field_usize(line: &str, prefix: &str) -> Result<usize, EngineError> {
    line.strip_prefix(prefix)
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| persist_err(format!("expected `{prefix}<int>`, got {line:?}")))
}

impl ReleaseEngine {
    /// Persists a registered release in the v3 container format,
    /// including its accuracy contract.
    ///
    /// # Errors
    /// [`EngineError::UnknownRelease`] for an unregistered id; otherwise
    /// as [`write_release`].
    pub fn save(&self, id: ReleaseId, out: &mut impl Write) -> Result<(), EngineError> {
        let record = self
            .get(id)
            .ok_or(EngineError::UnknownRelease(id.value()))?;
        write_release(
            out,
            record.label(),
            record.eps(),
            record.delta(),
            record.accuracy(),
            record.release(),
        )
    }

    /// Loads a stored release into the registry, debiting its recorded
    /// cost (see [`ReleaseEngine::adopt`]).
    ///
    /// # Errors
    /// As [`read_release`] and [`ReleaseEngine::adopt`].
    pub fn restore(&mut self, input: impl BufRead) -> Result<ReleaseId, EngineError> {
        let stored = read_release(input)?;
        self.adopt(
            stored.label,
            stored.eps,
            stored.delta,
            stored.accuracy,
            stored.release,
        )
    }
}
