//! The [`Mechanism`] trait: one uniform surface over every DP release
//! algorithm in the codebase.
//!
//! A mechanism consumes the public topology, the private weights, its
//! parameters, and a noise source, and produces a release object. Every
//! mechanism also *declares its privacy cost up front* via
//! [`Mechanism::privacy_cost`], which is what lets the
//! [`ReleaseEngine`](crate::ReleaseEngine) debit an
//! [`Accountant`](privpath_dp::Accountant) before any noise is drawn.
//!
//! Symmetrically, every mechanism with a utility theorem *declares its
//! accuracy contract up front*: [`Mechanism::accuracy_contract`] names
//! the paper theorem and its structural inputs,
//! [`Mechanism::error_bound`] evaluates it at a confidence, and
//! [`Mechanism::calibrate`] inverts it — the smallest epsilon whose
//! bound meets a requested [`ErrorTarget`]. Privacy cost and accuracy
//! are the two halves of the engine's declarative release surface.
//!
//! All seven paper mechanisms (Algorithms 1–3, the bounded-weight release,
//! MST, matching, and the Section 4 baselines) plus the heavy-path
//! extension and the [`ShortcutApsp`] hierarchical shortcut mechanism
//! (related work: CNX-style shortcutting for bounded weights) implement
//! the trait; the conformance test suite runs each one with
//! [`privpath_dp::ZeroNoise`] (exactness) and
//! [`privpath_dp::RecordingNoise`] (noise audit vs. the declared cost),
//! and the accuracy-audit suite measures every mechanism's observed
//! error against its declared contract.

use crate::error::EngineError;
use privpath_core::baselines::{
    all_pairs_advanced_composition, all_pairs_basic_composition, synthetic_graph_release,
    AllPairsDistanceRelease, SyntheticGraphRelease,
};
use privpath_core::bounded::{
    bounded_weight_all_pairs_with, BoundedWeightParams, BoundedWeightRelease, CoveringStrategy,
};
use privpath_core::bounds::{log2_ceil, AccuracyContract, ErrorBound, ErrorTarget};
use privpath_core::matching::{
    private_matching_objective_with, MatchingObjective, MatchingParams, MatchingRelease,
};
use privpath_core::model::NeighborScale;
use privpath_core::mst::{private_mst_with, MstParams, MstRelease};
use privpath_core::shortcut::{
    build_plan, plan_noise_scale, shortcut_apsp_with, ShortcutApspParams, ShortcutApspRelease,
    ShortcutPlan,
};
use privpath_core::shortest_path::{
    private_shortest_paths_with, ShortestPathParams, ShortestPathRelease,
};
use privpath_core::tree_distance::{
    tree_all_pairs_distances_with, TreeAllPairsRelease, TreeDistanceParams,
};
use privpath_core::tree_hld::{hld_tree_all_pairs_with, HldTreeRelease};
use privpath_dp::calibration::{invert_shifted_union_bound, solve_min_eps};
use privpath_dp::composition::{advanced_composition_epsilon, per_query_epsilon};
use privpath_dp::{Delta, Epsilon, NoiseSource, RngNoise};
use privpath_graph::covering::greedy_covering;
use privpath_graph::{EdgeWeights, Topology};
use rand::Rng;

/// The `(eps, delta)` a single release debits from a budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyCost {
    eps: Epsilon,
    delta: Delta,
}

impl PrivacyCost {
    /// A pure-DP cost.
    pub fn pure(eps: Epsilon) -> Self {
        PrivacyCost {
            eps,
            delta: Delta::zero(),
        }
    }

    /// An approximate-DP cost.
    pub fn approx(eps: Epsilon, delta: Delta) -> Self {
        PrivacyCost { eps, delta }
    }

    /// The epsilon component.
    pub fn eps(&self) -> Epsilon {
        self.eps
    }

    /// The delta component.
    pub fn delta(&self) -> Delta {
        self.delta
    }
}

/// A differentially private release algorithm over the private-edge-weight
/// model: public `Topology`, private `EdgeWeights`.
pub trait Mechanism {
    /// The mechanism's parameter object.
    type Params;
    /// The release object the mechanism produces.
    type Release;

    /// A stable machine-readable name (used as spend labels, CLI values,
    /// and persistence kind tags).
    fn name(&self) -> &'static str;

    /// The `(eps, delta)` this release will cost under `params`. Must be
    /// exact: the engine debits precisely this amount.
    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost;

    /// The same parameters at a different privacy budget. Calibration
    /// uses this to re-evaluate the bound while solving for the smallest
    /// epsilon; every other knob (confidence, scale, covering strategy,
    /// ...) is carried over unchanged.
    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params;

    /// The accuracy contract this release will honor under `params` over
    /// `topo` — the paper theorem plus its structural inputs — or `None`
    /// for mechanisms without a utility theorem. The contract depends on
    /// the **public** topology only, so declaring it costs no privacy.
    fn accuracy_contract(&self, topo: &Topology, params: &Self::Params)
        -> Option<AccuracyContract>;

    /// The evaluated per-query error bound at failure probability
    /// `gamma`: with probability at least `1 - gamma`, every query
    /// answered from the release errs by at most
    /// [`ErrorBound::alpha`].
    fn error_bound(
        &self,
        topo: &Topology,
        params: &Self::Params,
        gamma: f64,
    ) -> Option<ErrorBound> {
        self.accuracy_contract(topo, params)?.evaluate(gamma)
    }

    /// The smallest epsilon whose [`error_bound`](Self::error_bound)
    /// meets `target` — the inverse of the accuracy theorem, solved on
    /// the closed-form bound (linear `C / eps` bounds invert in two
    /// evaluations; eps-dependent structure falls back to bisection).
    /// `params` supplies every non-epsilon knob. Returns `None` when the
    /// mechanism has no contract or no epsilon attains the target (e.g.
    /// a bounded-weight detour floor above `alpha`).
    fn calibrate(
        &self,
        topo: &Topology,
        params: &Self::Params,
        target: &ErrorTarget,
    ) -> Option<Epsilon> {
        solve_calibration(self, topo, params, target)
    }

    /// Runs the mechanism with an explicit noise source.
    ///
    /// # Errors
    /// Mechanism-specific; see each implementation.
    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError>;

    /// Runs the mechanism drawing noise from `rng`.
    ///
    /// # Errors
    /// Same conditions as [`release_with`](Self::release_with).
    fn release(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        rng: &mut impl Rng,
    ) -> Result<Self::Release, EngineError> {
        let mut noise = RngNoise::new(rng);
        self.release_with(topo, weights, params, &mut noise)
    }
}

/// The generic solver behind [`Mechanism::calibrate`]: bisect (with a
/// linear fast path) on the mechanism's own `error_bound` over
/// reparameterized candidates. Free-standing so calibrate overrides can
/// delegate to it after preprocessing their parameters.
fn solve_calibration<M: Mechanism + ?Sized>(
    mechanism: &M,
    topo: &Topology,
    params: &M::Params,
    target: &ErrorTarget,
) -> Option<Epsilon> {
    let cal = solve_min_eps(
        |e| {
            let eps = Epsilon::new(e).ok()?;
            let candidate = mechanism.with_eps(params, eps);
            Some(
                mechanism
                    .error_bound(topo, &candidate, target.gamma())?
                    .alpha(),
            )
        },
        target.alpha(),
    )?;
    Epsilon::new(cal.eps).ok()
}

/// Algorithm 3: private shortest paths (Section 5.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShortestPaths;

impl Mechanism for ShortestPaths {
    type Params = ShortestPathParams;
    type Release = ShortestPathRelease;

    fn name(&self) -> &'static str {
        "shortest-path"
    }

    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost {
        PrivacyCost::pure(params.eps())
    }

    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params {
        params.with_eps(eps)
    }

    fn accuracy_contract(
        &self,
        topo: &Topology,
        params: &Self::Params,
    ) -> Option<AccuracyContract> {
        // With the shift the bound is Corollary 5.6 exactly; without it
        // the error degrades *to* the same worst-case form (module docs
        // of `privpath_core::shortest_path`), so one contract covers
        // both configurations.
        Some(AccuracyContract::WorstCasePath {
            v: topo.num_nodes(),
            num_edges: topo.num_edges(),
            eps_eff: params.eps().value() / params.scale().value(),
        })
    }

    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError> {
        Ok(private_shortest_paths_with(topo, weights, params, noise)?)
    }
}

/// Algorithm 1 + Theorem 4.2: all-pairs distances on trees.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeAllPairs;

impl Mechanism for TreeAllPairs {
    type Params = TreeDistanceParams;
    type Release = TreeAllPairsRelease;

    fn name(&self) -> &'static str {
        "tree"
    }

    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost {
        PrivacyCost::pure(params.eps())
    }

    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params {
        params.with_eps(eps)
    }

    fn accuracy_contract(
        &self,
        topo: &Topology,
        params: &Self::Params,
    ) -> Option<AccuracyContract> {
        Some(tree_contract(topo, params, false))
    }

    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError> {
        Ok(tree_all_pairs_distances_with(topo, weights, params, noise)?)
    }
}

/// Theorem 4.2's a-priori contract: depth at most `ceil(log2 V)` (both
/// the Algorithm 1 decomposition and the heavy-path ablation obey it),
/// per-query noise scale `depth * s / eps`.
fn tree_contract(topo: &Topology, params: &TreeDistanceParams, hld: bool) -> AccuracyContract {
    let v = topo.num_nodes();
    let depth = log2_ceil(v);
    AccuracyContract::TreeAllPairs {
        v,
        depth,
        noise_scale: depth as f64 * params.scale().value() / params.eps().value(),
        hld,
    }
}

/// The heavy-path-decomposition tree mechanism (extension ablation of
/// Algorithm 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct HldTree;

impl Mechanism for HldTree {
    type Params = TreeDistanceParams;
    type Release = HldTreeRelease;

    fn name(&self) -> &'static str {
        "hld-tree"
    }

    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost {
        PrivacyCost::pure(params.eps())
    }

    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params {
        params.with_eps(eps)
    }

    fn accuracy_contract(
        &self,
        topo: &Topology,
        params: &Self::Params,
    ) -> Option<AccuracyContract> {
        Some(tree_contract(topo, params, true))
    }

    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError> {
        Ok(hld_tree_all_pairs_with(topo, weights, params, noise)?)
    }
}

/// Algorithm 2: all-pairs distances for bounded-weight graphs
/// (Theorems 4.3/4.5/4.6/4.7).
#[derive(Clone, Copy, Debug, Default)]
pub struct BoundedWeight;

impl Mechanism for BoundedWeight {
    type Params = BoundedWeightParams;
    type Release = BoundedWeightRelease;

    fn name(&self) -> &'static str {
        "bounded-weight"
    }

    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost {
        PrivacyCost::approx(params.eps(), params.delta())
    }

    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params {
        params.clone().with_eps(eps)
    }

    fn accuracy_contract(
        &self,
        topo: &Topology,
        params: &Self::Params,
    ) -> Option<AccuracyContract> {
        let v = topo.num_nodes();
        // The covering size: Lemma 4.4's guarantee |Z| <= V / (k + 1)
        // where a Meir–Moon construction backs the theorem; the actual
        // center count where the caller pinned the covering (the greedy
        // heuristic carries no a-priori size bound, so it is run on the
        // public topology — no privacy is spent).
        let (k, z) = match params.strategy() {
            CoveringStrategy::AutoK => {
                let k = params.auto_k(v);
                (k, (v / (k + 1)).max(1))
            }
            CoveringStrategy::MeirMoon { k } => (*k, (v / (k + 1)).max(1)),
            CoveringStrategy::Custom { centers, k } => (*k, centers.len().max(1)),
            CoveringStrategy::Greedy { k } => (*k, greedy_covering(topo, *k).ok()?.len().max(1)),
        };
        let num_released = z * (z - 1) / 2;
        let s = params.scale().value();
        let noise_scale = if num_released == 0 {
            s / params.eps().value()
        } else if params.delta().is_pure() {
            // Theorem 4.6: basic composition over the released vector.
            s * num_released as f64 / params.eps().value()
        } else {
            // Theorem 4.5: invert advanced composition per query.
            let per = per_query_epsilon(params.eps(), num_released, params.delta().value()).ok()?;
            s / per.value()
        };
        Some(AccuracyContract::BoundedWeight {
            k,
            max_weight: params.max_weight(),
            noise_scale,
            num_released,
            pure: params.delta().is_pure(),
        })
    }

    fn calibrate(
        &self,
        topo: &Topology,
        params: &Self::Params,
        target: &ErrorTarget,
    ) -> Option<Epsilon> {
        // The greedy covering is epsilon-independent (k is fixed), but
        // the generic solver rebuilds the contract — and would re-run
        // the covering construction — on every bound evaluation. Pin
        // the centers once and solve on the equivalent Custom strategy.
        if let CoveringStrategy::Greedy { k } = params.strategy() {
            let k = *k;
            let centers = greedy_covering(topo, k).ok()?;
            let pinned = params
                .clone()
                .with_strategy(CoveringStrategy::Custom { centers, k });
            return solve_calibration(self, topo, &pinned, target);
        }
        solve_calibration(self, topo, params, target)
    }

    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError> {
        Ok(bounded_weight_all_pairs_with(topo, weights, params, noise)?)
    }
}

/// Appendix B.1: private almost-minimum spanning tree.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mst;

impl Mechanism for Mst {
    type Params = MstParams;
    type Release = MstRelease;

    fn name(&self) -> &'static str {
        "mst"
    }

    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost {
        PrivacyCost::pure(params.eps())
    }

    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params {
        params.with_eps(eps)
    }

    fn accuracy_contract(
        &self,
        topo: &Topology,
        params: &Self::Params,
    ) -> Option<AccuracyContract> {
        Some(AccuracyContract::Mst {
            v: topo.num_nodes(),
            num_edges: topo.num_edges(),
            eps_eff: params.eps().value() / params.scale().value(),
        })
    }

    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError> {
        Ok(private_mst_with(topo, weights, params, noise)?)
    }
}

/// Appendix B.2: private low-weight matching, with a selectable objective.
#[derive(Clone, Copy, Debug)]
pub struct Matching {
    /// The matching objective to optimize (the paper's results carry over
    /// to all four variants).
    pub objective: MatchingObjective,
}

impl Default for Matching {
    fn default() -> Self {
        Matching {
            objective: MatchingObjective::MinPerfect,
        }
    }
}

impl Mechanism for Matching {
    type Params = MatchingParams;
    type Release = MatchingRelease;

    fn name(&self) -> &'static str {
        "matching"
    }

    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost {
        PrivacyCost::pure(params.eps())
    }

    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params {
        params.with_eps(eps)
    }

    fn accuracy_contract(
        &self,
        topo: &Topology,
        params: &Self::Params,
    ) -> Option<AccuracyContract> {
        Some(AccuracyContract::Matching {
            v: topo.num_nodes(),
            num_edges: topo.num_edges(),
            eps_eff: params.eps().value() / params.scale().value(),
        })
    }

    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError> {
        Ok(private_matching_objective_with(
            topo,
            weights,
            params,
            self.objective,
            noise,
        )?)
    }
}

/// The CNX-style hierarchical shortcut mechanism for bounded-weight
/// graphs (related-work extension): a ladder of coverings whose top
/// level is Algorithm 2's balanced covering and whose finer levels
/// release hop-local shortcuts, so close pairs pay a detour
/// proportional to their own hop distance. The first mechanism in the
/// registry whose headline claim is *beating* a baseline
/// ([`AllPairsBaseline`]) rather than matching a paper theorem — the
/// accuracy-audit test suite measures exactly that.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShortcutApsp;

/// The shortcut contract a plan implies under `params`.
fn shortcut_contract(plan: &ShortcutPlan, params: &ShortcutApspParams) -> Option<AccuracyContract> {
    Some(AccuracyContract::ShortcutApsp {
        levels: plan.levels.len(),
        k_top: plan.k_top,
        max_weight: params.max_weight(),
        noise_scale: plan_noise_scale(plan, params).ok()?,
        num_released: plan.num_released,
    })
}

impl Mechanism for ShortcutApsp {
    type Params = ShortcutApspParams;
    type Release = ShortcutApspRelease;

    fn name(&self) -> &'static str {
        "shortcut-apsp"
    }

    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost {
        PrivacyCost::approx(params.eps(), params.delta())
    }

    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params {
        params.clone().with_eps(eps)
    }

    fn accuracy_contract(
        &self,
        topo: &Topology,
        params: &Self::Params,
    ) -> Option<AccuracyContract> {
        // The plan (coverings, local pair sets) is a function of the
        // public topology only — declaring the contract costs nothing.
        shortcut_contract(&build_plan(topo, params).ok()?, params)
    }

    fn calibrate(
        &self,
        topo: &Topology,
        params: &Self::Params,
        target: &ErrorTarget,
    ) -> Option<Epsilon> {
        // The bound is `2 k_top M + b ln(N / gamma)` where only `b`
        // moves smoothly with eps; `k_top` and `N` move in steps (the
        // balanced radius is eps-dependent). Fixed-point on the closed
        // form: invert the shifted union bound for the required scale,
        // map it back to a total epsilon under the plan's composition,
        // rebuild the plan there, and accept once the structure stops
        // moving and the realized bound verifies. Falls back to the
        // generic bisection when the structure oscillates or the target
        // sits below the current plan's detour floor (a coarser plan at
        // a larger eps may still attain it).
        let fixed_point = || -> Option<Epsilon> {
            let mut eps = params.eps();
            for _ in 0..8 {
                let candidate = self.with_eps(params, eps);
                let plan = build_plan(topo, &candidate).ok()?;
                let floor = 2.0 * plan.k_top as f64 * params.max_weight();
                let n = plan.num_released.max(1);
                let b =
                    invert_shifted_union_bound(target.alpha(), floor, n, target.gamma()).ok()?;
                let next = if params.delta().is_pure() {
                    Epsilon::new(params.scale().value() * n as f64 / b).ok()?
                } else {
                    let per = Epsilon::new(params.scale().value() / b).ok()?;
                    Epsilon::new(advanced_composition_epsilon(per, n, params.delta().value()).ok()?)
                        .ok()?
                };
                let solved = self.with_eps(params, next);
                let check = build_plan(topo, &solved).ok()?;
                if check.k_top == plan.k_top && check.num_released == plan.num_released {
                    let bound = shortcut_contract(&check, &solved)?.bound_at(target.gamma())?;
                    if bound <= target.alpha() + 1e-9 {
                        return Some(next);
                    }
                }
                eps = next;
            }
            None
        };
        fixed_point().or_else(|| solve_calibration(self, topo, params, target))
    }

    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError> {
        Ok(shortcut_apsp_with(topo, weights, params, noise)?)
    }
}

/// Parameters for the [`SyntheticGraph`] baseline.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticGraphParams {
    eps: Epsilon,
    scale: NeighborScale,
}

impl SyntheticGraphParams {
    /// Privacy `eps` at unit neighbor scale.
    pub fn new(eps: Epsilon) -> Self {
        SyntheticGraphParams {
            eps,
            scale: NeighborScale::unit(),
        }
    }

    /// Overrides the neighbor scale.
    pub fn with_scale(mut self, scale: NeighborScale) -> Self {
        self.scale = scale;
        self
    }

    /// The same parameters at a different privacy budget.
    pub fn with_eps(mut self, eps: Epsilon) -> Self {
        self.eps = eps;
        self
    }

    /// The privacy parameter.
    pub fn eps(&self) -> Epsilon {
        self.eps
    }

    /// The neighbor scale.
    pub fn scale(&self) -> NeighborScale {
        self.scale
    }
}

/// The Laplace synthetic-graph baseline (Section 4's opening discussion;
/// Algorithm 3 without its shift).
#[derive(Clone, Copy, Debug, Default)]
pub struct SyntheticGraph;

impl Mechanism for SyntheticGraph {
    type Params = SyntheticGraphParams;
    type Release = SyntheticGraphRelease;

    fn name(&self) -> &'static str {
        "synthetic-graph"
    }

    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost {
        PrivacyCost::pure(params.eps())
    }

    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params {
        params.with_eps(eps)
    }

    fn accuracy_contract(
        &self,
        topo: &Topology,
        params: &Self::Params,
    ) -> Option<AccuracyContract> {
        // Algorithm 3 without its shift: the simultaneous worst-case
        // bound has the same Corollary 5.6 form.
        Some(AccuracyContract::WorstCasePath {
            v: topo.num_nodes(),
            num_edges: topo.num_edges(),
            eps_eff: params.eps().value() / params.scale().value(),
        })
    }

    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError> {
        Ok(synthetic_graph_release(
            topo,
            weights,
            params.eps(),
            params.scale(),
            noise,
        )?)
    }
}

/// Parameters for the [`AllPairsBaseline`] mechanism.
#[derive(Clone, Copy, Debug)]
pub struct AllPairsBaselineParams {
    eps: Epsilon,
    delta: Delta,
    scale: NeighborScale,
}

impl AllPairsBaselineParams {
    /// Basic composition (pure DP, Lemma 3.3): noise scale
    /// `V(V-1)/2 / eps` per pair.
    pub fn basic(eps: Epsilon) -> Self {
        AllPairsBaselineParams {
            eps,
            delta: Delta::zero(),
            scale: NeighborScale::unit(),
        }
    }

    /// Advanced composition (`(eps, delta)`-DP, Lemma 3.4).
    ///
    /// # Errors
    /// [`EngineError::Core`] for `delta = 0` (use [`basic`](Self::basic)).
    pub fn advanced(eps: Epsilon, delta: Delta) -> Result<Self, EngineError> {
        if delta.is_pure() {
            return Err(EngineError::Core(
                privpath_core::CoreError::InvalidParameter(
                    "advanced composition requires delta > 0".into(),
                ),
            ));
        }
        Ok(AllPairsBaselineParams {
            eps,
            delta,
            scale: NeighborScale::unit(),
        })
    }

    /// Overrides the neighbor scale.
    pub fn with_scale(mut self, scale: NeighborScale) -> Self {
        self.scale = scale;
        self
    }

    /// The same parameters at a different privacy budget.
    pub fn with_eps(mut self, eps: Epsilon) -> Self {
        self.eps = eps;
        self
    }

    /// The privacy parameter.
    pub fn eps(&self) -> Epsilon {
        self.eps
    }

    /// The privacy parameter delta (zero selects basic composition).
    pub fn delta(&self) -> Delta {
        self.delta
    }

    /// The neighbor scale.
    pub fn scale(&self) -> NeighborScale {
        self.scale
    }
}

/// The generic all-pairs composition baseline (Section 4's opening
/// discussion): release every pairwise distance under basic or advanced
/// composition.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllPairsBaseline;

impl Mechanism for AllPairsBaseline {
    type Params = AllPairsBaselineParams;
    type Release = AllPairsDistanceRelease;

    fn name(&self) -> &'static str {
        "all-pairs-baseline"
    }

    fn privacy_cost(&self, params: &Self::Params) -> PrivacyCost {
        PrivacyCost::approx(params.eps(), params.delta())
    }

    fn with_eps(&self, params: &Self::Params, eps: Epsilon) -> Self::Params {
        params.with_eps(eps)
    }

    fn accuracy_contract(
        &self,
        topo: &Topology,
        params: &Self::Params,
    ) -> Option<AccuracyContract> {
        let n = topo.num_nodes();
        let num_released = n * n.saturating_sub(1) / 2;
        let s = params.scale().value();
        let advanced = !params.delta().is_pure();
        let noise_scale = if num_released == 0 {
            s / params.eps().value()
        } else if advanced {
            let per = per_query_epsilon(params.eps(), num_released, params.delta().value()).ok()?;
            s / per.value()
        } else {
            s * num_released as f64 / params.eps().value()
        };
        Some(AccuracyContract::Composition {
            num_released,
            noise_scale,
            advanced,
        })
    }

    fn release_with(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        params: &Self::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<Self::Release, EngineError> {
        if params.delta().is_pure() {
            Ok(all_pairs_basic_composition(
                topo,
                weights,
                params.eps(),
                params.scale(),
                noise,
            )?)
        } else {
            Ok(all_pairs_advanced_composition(
                topo,
                weights,
                params.eps(),
                params.delta(),
                params.scale(),
                noise,
            )?)
        }
    }
}
