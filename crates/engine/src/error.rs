//! Error type for the release engine.

use privpath_core::CoreError;
use privpath_dp::DpError;
use privpath_graph::GraphError;
use std::error::Error;
use std::fmt;

/// Errors produced by the engine layer.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A mechanism-layer error.
    Core(CoreError),
    /// A privacy-substrate error.
    Dp(DpError),
    /// A release would exceed the engine's privacy budget; nothing was
    /// run and no noise was drawn. Carries the requested and remaining
    /// `(eps, delta)` so servers and CLIs can report budget state without
    /// parsing messages.
    BudgetExhausted {
        /// The epsilon the refused release would have cost.
        requested_eps: f64,
        /// The delta the refused release would have cost.
        requested_delta: f64,
        /// Epsilon still available under the budget.
        remaining_eps: f64,
        /// Delta still available under the budget.
        remaining_delta: f64,
    },
    /// No epsilon attains the requested accuracy target — the mechanism
    /// has no utility theorem, or the target lies below the bound's
    /// epsilon-independent floor (e.g. a bounded-weight detour `2 k M`).
    CalibrationFailed {
        /// The mechanism's name.
        mechanism: &'static str,
        /// The requested per-query error bound.
        alpha: f64,
        /// The requested failure probability.
        gamma: f64,
    },
    /// The referenced release id is not registered in the engine.
    UnknownRelease(u64),
    /// The release kind does not support the requested query (e.g. a
    /// distance query against an MST release).
    UnsupportedQuery {
        /// The release kind's name.
        kind: &'static str,
        /// The query that was attempted.
        query: &'static str,
    },
    /// A vertex id was outside the release's vertex range.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of vertices the release covers.
        num_nodes: usize,
    },
    /// A persistence failure (I/O or malformed stored release).
    Persist(String),
    /// A [`BudgetPlan`](crate::BudgetPlan) with no requested releases was
    /// asked for a split — there is nothing to allocate the total to.
    EmptyBudgetPlan,
    /// Scaling a calibrated epsilon by the plan's common factor left the
    /// valid epsilon domain (underflowed to zero or overflowed): the plan
    /// is too oversubscribed (or the total too extreme) to honor this
    /// request's share.
    DegenerateAllocation {
        /// The label of the request whose allocation degenerated.
        label: String,
        /// The calibrated epsilon the request asked for.
        calibrated_eps: f64,
        /// The plan's scale factor (`total / sum of requests`).
        scale_factor: f64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "mechanism error: {e}"),
            EngineError::Dp(e) => write!(f, "privacy error: {e}"),
            EngineError::BudgetExhausted {
                requested_eps,
                requested_delta,
                remaining_eps,
                remaining_delta,
            } => write!(
                f,
                "privacy budget exhausted: requested (eps {requested_eps}, delta \
                 {requested_delta}) exceeds remaining (eps {remaining_eps}, delta \
                 {remaining_delta})"
            ),
            EngineError::CalibrationFailed {
                mechanism,
                alpha,
                gamma,
            } => write!(
                f,
                "cannot calibrate `{mechanism}` to error <= {alpha} with probability \
                 {} (no epsilon attains the target, or the mechanism declares no \
                 accuracy contract)",
                1.0 - gamma
            ),
            EngineError::UnknownRelease(id) => write!(f, "no release with id r{id}"),
            EngineError::UnsupportedQuery { kind, query } => {
                write!(
                    f,
                    "release kind `{kind}` does not support `{query}` queries"
                )
            }
            EngineError::NodeOutOfRange { index, num_nodes } => {
                write!(
                    f,
                    "vertex {index} outside the release's range 0..{num_nodes}"
                )
            }
            EngineError::Persist(msg) => write!(f, "persistence error: {msg}"),
            EngineError::EmptyBudgetPlan => {
                write!(f, "budget plan has no requested releases")
            }
            EngineError::DegenerateAllocation {
                label,
                calibrated_eps,
                scale_factor,
            } => write!(
                f,
                "allocation for {label:?} degenerates: calibrated eps \
                 {calibrated_eps} scaled by {scale_factor} leaves the valid \
                 epsilon domain"
            ),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::Dp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<DpError> for EngineError {
    fn from(e: DpError) -> Self {
        EngineError::Dp(e)
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Core(CoreError::Graph(e))
    }
}
