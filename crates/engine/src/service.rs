//! The shared read path: [`QueryService`], an immutable snapshot of an
//! engine's release registry that any number of threads query in
//! parallel.
//!
//! The paper's architecture makes this split natural: a DP release is
//! computed **once** (the write path, [`crate::ReleaseEngine`], exclusive
//! and budget-accounted) and every query thereafter is free
//! post-processing (the read path, this type, lock-free and `Send +
//! Sync`). A snapshot holds [`Arc`]s to the engine's own records — taking
//! one copies no release data — and freezes the ledger totals at snapshot
//! time so budget reporting needs no lock either.

use crate::engine::{ReleaseId, ReleaseRecord};
use crate::error::EngineError;
use crate::persist::StoredRelease;
use crate::release::DistanceRelease;
use privpath_core::bounds::ErrorBound;
use privpath_core::CoreError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An immutable, cheaply-cloneable view of a set of releases plus frozen
/// ledger totals.
///
/// Obtained from [`ReleaseEngine::snapshot`](crate::ReleaseEngine::snapshot)
/// (in-process serving alongside a live engine) or
/// [`QueryService::from_stored`] (serving a directory of release files
/// with no private weights in the process at all). Cloning bumps two
/// reference counts; every query method takes `&self`, so the hot path
/// has no locks.
#[derive(Clone, Debug)]
pub struct QueryService {
    records: Arc<BTreeMap<u64, Arc<ReleaseRecord>>>,
    spent: (f64, f64),
    remaining: Option<(f64, f64)>,
}

impl QueryService {
    pub(crate) fn from_records(
        records: BTreeMap<u64, Arc<ReleaseRecord>>,
        spent: (f64, f64),
        remaining: Option<(f64, f64)>,
    ) -> Self {
        QueryService {
            records: Arc::new(records),
            spent,
            remaining,
        }
    }

    /// A service over externally stored releases (e.g. loaded from a
    /// store directory), with ids assigned in input order starting at
    /// `r0`. The spent totals are the sum of the stored costs; there is
    /// no budget cap, so [`remaining`](Self::remaining) is `None`.
    ///
    /// This is the pure serving configuration: the process holds released
    /// objects only, never the private weights.
    pub fn from_stored(stored: impl IntoIterator<Item = StoredRelease>) -> Self {
        let mut records = BTreeMap::new();
        let mut spent = (0.0, 0.0);
        for (i, s) in stored.into_iter().enumerate() {
            let id = ReleaseId::from_value(i as u64);
            spent.0 += s.eps;
            spent.1 += s.delta;
            records.insert(
                id.value(),
                Arc::new(ReleaseRecord::from_parts(
                    id, s.label, s.eps, s.delta, s.accuracy, s.release,
                )),
            );
        }
        QueryService {
            records: Arc::new(records),
            spent,
            remaining: None,
        }
    }

    /// The record for a release, if it is in the snapshot.
    pub fn get(&self, id: ReleaseId) -> Option<&ReleaseRecord> {
        self.records.get(&id.value()).map(Arc::as_ref)
    }

    /// A distance-oracle view of a release in the snapshot.
    ///
    /// # Errors
    /// [`EngineError::UnknownRelease`] for an id not in the snapshot;
    /// [`EngineError::UnsupportedQuery`] for kinds without a distance
    /// surface (MST, matching).
    pub fn query(&self, id: ReleaseId) -> Result<&dyn DistanceRelease, EngineError> {
        let record = self
            .records
            .get(&id.value())
            .ok_or(EngineError::UnknownRelease(id.value()))?;
        record
            .release()
            .as_distance()
            .ok_or(EngineError::UnsupportedQuery {
                kind: record.kind().as_str(),
                query: "distance",
            })
    }

    /// The accuracy contract of a release in the snapshot, evaluated at
    /// failure probability `gamma`: what per-query error the release
    /// guarantees with probability `1 - gamma`. Contracts are declared
    /// from the public topology at release time, so answering costs no
    /// privacy — exactly like distance queries.
    ///
    /// # Errors
    /// [`EngineError::UnknownRelease`] for an id not in the snapshot;
    /// [`EngineError::UnsupportedQuery`] when the release carries no
    /// contract (legacy storage); [`EngineError::Core`] for `gamma`
    /// outside `(0, 1)`.
    pub fn accuracy(&self, id: ReleaseId, gamma: f64) -> Result<ErrorBound, EngineError> {
        let record = self
            .records
            .get(&id.value())
            .ok_or(EngineError::UnknownRelease(id.value()))?;
        let contract = record.accuracy().ok_or(EngineError::UnsupportedQuery {
            kind: record.kind().as_str(),
            query: "accuracy",
        })?;
        contract.evaluate(gamma).ok_or_else(|| {
            EngineError::Core(CoreError::InvalidParameter(format!(
                "accuracy gamma must be in (0,1), got {gamma}"
            )))
        })
    }

    /// All releases in the snapshot, in id order.
    pub fn releases(&self) -> impl Iterator<Item = &ReleaseRecord> {
        self.records.values().map(Arc::as_ref)
    }

    /// Number of releases in the snapshot.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no releases.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total `(eps, delta)` spent at snapshot time.
    pub fn spent(&self) -> (f64, f64) {
        self.spent
    }

    /// Remaining `(eps, delta)` at snapshot time, or `None` when the
    /// source had no budget cap.
    pub fn remaining(&self) -> Option<(f64, f64)> {
        self.remaining
    }
}

// The whole point of the snapshot: many threads share one read path.
#[allow(dead_code)]
fn assert_send_sync(s: QueryService) -> impl Send + Sync {
    s
}
