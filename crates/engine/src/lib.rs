//! # privpath-engine — the release-once/query-many layer
//!
//! Sealfon's mechanisms (and the APSD line of work that followed) share
//! one architecture: **release once, query many**. A mechanism touches the
//! private edge weights exactly once and emits a release object; every
//! query thereafter is post-processing, free of further privacy cost. This
//! crate makes that architecture a first-class API:
//!
//! * [`Mechanism`] — one trait over all seven paper mechanisms
//!   (Algorithms 1–3, bounded-weight distances, MST, matching, the
//!   Section 4 baselines) plus the heavy-path extension. Each declares its
//!   exact `(eps, delta)` cost via [`Mechanism::privacy_cost`] before
//!   running, **and** its accuracy contract: an [`AccuracyContract`]
//!   naming the paper theorem behind [`Mechanism::error_bound`], with
//!   [`Mechanism::calibrate`] solving the bound backwards for the
//!   smallest epsilon meeting an [`ErrorTarget`] — so callers ask for
//!   accuracy and the engine derives the budget, not the other way
//!   around. [`ReleaseEngine::release_with_accuracy`] runs that loop
//!   end-to-end, and [`BudgetPlan`] splits one total budget across
//!   several calibrated releases proportionally.
//! * [`DistanceRelease`] — the object-safe serving surface
//!   (`distance`, `distance_batch`, optional `path`) implemented by every
//!   distance-capable release type. `distance_batch` is the serving hot
//!   path: graph-replaying releases share one Dijkstra per distinct
//!   source across a batch.
//! * [`ReleaseEngine`] — the exclusive **write path**: owns one weight
//!   database and an [`Accountant`](privpath_dp::Accountant); debits the
//!   declared cost per release (budget checked **before** noise is
//!   drawn) and registers releases under [`ReleaseId`]s.
//! * [`QueryService`] — the shared **read path**: an immutable `Send +
//!   Sync` snapshot of the registry ([`ReleaseEngine::snapshot`]) or of
//!   stored release files ([`QueryService::from_stored`]) that any
//!   number of threads query in parallel with no locks. Queries are
//!   post-processing, so a snapshot answers unboundedly many of them at
//!   zero privacy cost while the engine keeps releasing.
//! * [`persist`] — a unified tagged storage format covering every
//!   distance-capable release kind (and still reading the legacy
//!   shortest-path-only v1 files).
//!
//! ## Example
//!
//! ```
//! use privpath_engine::{mechanisms, ReleaseEngine};
//! use privpath_core::shortest_path::ShortestPathParams;
//! use privpath_core::tree_distance::TreeDistanceParams;
//! use privpath_dp::{Delta, Epsilon};
//! use privpath_graph::generators::{path_graph, uniform_weights};
//! use privpath_graph::NodeId;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let topo = path_graph(32);
//! let weights = uniform_weights(topo.num_edges(), 1.0, 5.0, &mut rng);
//!
//! // One database, one budget, several releases.
//! let mut engine = ReleaseEngine::with_budget(
//!     topo,
//!     weights,
//!     Epsilon::new(2.0)?,
//!     Delta::zero(),
//! )?;
//! let sp = engine.release(
//!     &mechanisms::ShortestPaths,
//!     &ShortestPathParams::new(Epsilon::new(1.0)?, 0.05)?,
//!     &mut rng,
//! )?;
//! let tree = engine.release(
//!     &mechanisms::TreeAllPairs,
//!     &TreeDistanceParams::new(Epsilon::new(1.0)?),
//!     &mut rng,
//! )?;
//! assert_eq!(engine.spent(), (2.0, 0.0));
//!
//! // Serve queries from either release; both are pure post-processing.
//! let (u, v) = (NodeId::new(0), NodeId::new(31));
//! let d1 = engine.query(sp)?.distance(u, v)?;
//! let d2 = engine.query(tree)?.distance(u, v)?;
//! assert!(d1.is_finite() && d2.is_finite());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod mechanism;
pub mod persist;
mod plan;
mod release;
mod service;

pub use engine::{ParseReleaseIdError, ReleaseEngine, ReleaseId, ReleaseRecord};
pub use error::EngineError;
pub use mechanism::{Mechanism, PrivacyCost};
pub use persist::{read_release, write_release, StoredRelease};
pub use plan::BudgetPlan;
pub use release::{AnyRelease, DistanceRelease, ReleaseKind};
pub use service::QueryService;

// The accuracy-contract vocabulary is defined next to the bound formulas
// in `privpath_core::bounds`; re-export it here because the engine is
// where callers speak it (error_bound / calibrate / release_with_accuracy).
pub use privpath_core::bounds::{
    AccuracyContract, ErrorBound, ErrorTarget, Theorem, DEFAULT_GAMMA,
};

/// The mechanism singletons implementing [`Mechanism`].
pub mod mechanisms {
    pub use crate::mechanism::{
        AllPairsBaseline, AllPairsBaselineParams, BoundedWeight, HldTree, Matching, Mst,
        ShortcutApsp, ShortestPaths, SyntheticGraph, SyntheticGraphParams, TreeAllPairs,
    };
}
