//! [`BudgetPlan`]: split one total privacy budget across several
//! requested releases, proportionally to their calibrated costs.
//!
//! Calibration answers "what does *one* release at accuracy `(alpha,
//! gamma)` cost?"; a deployment usually wants *several* releases out of
//! *one* budget. Because every closed-form bound in the paper scales as
//! `C / eps` (exactly, or as an upper envelope), scaling each calibrated
//! epsilon by the common factor `total / sum` keeps the releases'
//! *relative* accuracies while spending exactly the total: each release's
//! error bound inflates (or tightens) by the same `sum / total` factor.
//!
//! ```
//! use privpath_dp::Epsilon;
//! use privpath_engine::BudgetPlan;
//!
//! let mut plan = BudgetPlan::new(Epsilon::new(2.0)?);
//! plan.request("tree", Epsilon::new(3.0)?);
//! plan.request("shortest-path", Epsilon::new(1.0)?);
//! let allocs = plan.allocations()?;
//! // 3:1 calibrated ratio preserved, 2.0 total spent.
//! assert!((allocs[0].1.value() - 1.5).abs() < 1e-12);
//! assert!((allocs[1].1.value() - 0.5).abs() < 1e-12);
//! assert!((plan.scale_factor()? - 0.5).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::error::EngineError;
use privpath_dp::Epsilon;

/// A proportional split of one total epsilon budget over several
/// requested (typically calibrated) per-release epsilons.
#[derive(Clone, Debug)]
pub struct BudgetPlan {
    total: Epsilon,
    requests: Vec<(String, Epsilon)>,
}

impl BudgetPlan {
    /// A plan distributing `total` epsilon.
    pub fn new(total: Epsilon) -> Self {
        BudgetPlan {
            total,
            requests: Vec::new(),
        }
    }

    /// Adds a requested release with its calibrated epsilon cost.
    pub fn request(&mut self, label: impl Into<String>, calibrated: Epsilon) -> &mut Self {
        self.requests.push((label.into(), calibrated));
        self
    }

    /// The total budget being split.
    pub fn total(&self) -> Epsilon {
        self.total
    }

    /// The requested `(label, calibrated eps)` pairs, in insertion order.
    pub fn requests(&self) -> &[(String, Epsilon)] {
        &self.requests
    }

    /// The factor every calibrated epsilon is multiplied by
    /// (`total / sum of requests`). Factors below 1 mean the budget is
    /// oversubscribed and every release's error bound inflates by the
    /// reciprocal.
    ///
    /// # Errors
    /// [`EngineError::EmptyBudgetPlan`] when the plan holds no requests.
    pub fn scale_factor(&self) -> Result<f64, EngineError> {
        if self.requests.is_empty() {
            return Err(EngineError::EmptyBudgetPlan);
        }
        let sum: f64 = self.requests.iter().map(|(_, e)| e.value()).sum();
        Ok(self.total.value() / sum)
    }

    /// The per-release allocations: each calibrated epsilon scaled by
    /// [`scale_factor`](Self::scale_factor), in insertion order. The
    /// allocations sum to the total budget (up to rounding), so releasing
    /// each at its allocation exactly exhausts an engine budgeted at
    /// [`total`](Self::total).
    ///
    /// # Errors
    /// [`EngineError::EmptyBudgetPlan`] when the plan holds no requests;
    /// [`EngineError::DegenerateAllocation`] if a scaled epsilon leaves
    /// the valid domain (underflows to zero on an extremely oversubscribed
    /// plan, or overflows), naming the request whose share degenerated.
    pub fn allocations(&self) -> Result<Vec<(String, Epsilon)>, EngineError> {
        let factor = self.scale_factor()?;
        self.requests
            .iter()
            .map(|(label, eps)| {
                let scaled = Epsilon::new(eps.value() * factor).map_err(|_| {
                    EngineError::DegenerateAllocation {
                        label: label.clone(),
                        calibrated_eps: eps.value(),
                        scale_factor: factor,
                    }
                })?;
                Ok((label.clone(), scaled))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn allocations_are_proportional_and_exhaustive() {
        let mut plan = BudgetPlan::new(eps(1.0));
        plan.request("a", eps(2.0));
        plan.request("b", eps(6.0));
        plan.request("c", eps(2.0));
        let allocs = plan.allocations().unwrap();
        let total: f64 = allocs.iter().map(|(_, e)| e.value()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((allocs[1].1.value() / allocs[0].1.value() - 3.0).abs() < 1e-12);
        assert_eq!(allocs[0].0, "a");
    }

    #[test]
    fn undersubscribed_budget_scales_up() {
        let mut plan = BudgetPlan::new(eps(4.0));
        plan.request("only", eps(1.0));
        assert!((plan.scale_factor().unwrap() - 4.0).abs() < 1e-12);
        let allocs = plan.allocations().unwrap();
        assert!((allocs[0].1.value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_plan_is_rejected_with_typed_error() {
        let plan = BudgetPlan::new(eps(1.0));
        assert!(matches!(
            plan.scale_factor(),
            Err(EngineError::EmptyBudgetPlan)
        ));
        assert!(matches!(
            plan.allocations(),
            Err(EngineError::EmptyBudgetPlan)
        ));
    }

    // Regression: a scaled allocation that underflows to zero must come
    // back as a typed `DegenerateAllocation` naming the request — not a
    // raw unwrap/panic and not an opaque parameter error.
    #[test]
    fn zero_allocation_is_a_typed_degenerate_error() {
        let mut plan = BudgetPlan::new(eps(5e-324));
        plan.request("tiny-share", eps(1.0));
        plan.request("dominant", eps(1e300));
        let err = plan.allocations().unwrap_err();
        match err {
            EngineError::DegenerateAllocation {
                label,
                calibrated_eps,
                scale_factor,
            } => {
                assert_eq!(label, "tiny-share");
                assert_eq!(calibrated_eps, 1.0);
                assert!((0.0..f64::MIN_POSITIVE).contains(&scale_factor));
            }
            other => panic!("expected DegenerateAllocation, got {other:?}"),
        }
    }

    // Degenerate in the other direction: a scale factor that overflows to
    // infinity (subnormal request sum under a huge total) is also typed,
    // not a panic.
    #[test]
    fn overflow_allocation_is_a_typed_degenerate_error() {
        let mut plan = BudgetPlan::new(eps(1e308));
        plan.request("only", eps(5e-324));
        assert!(plan.scale_factor().unwrap().is_infinite());
        let err = plan.allocations().unwrap_err();
        assert!(matches!(
            err,
            EngineError::DegenerateAllocation { ref label, .. } if label == "only"
        ));
    }
}
