//! The serve-side query surface: the object-safe [`DistanceRelease`]
//! trait and the [`AnyRelease`] sum type the engine's registry stores.
//!
//! Everything here is **post-processing** of an already-made DP release:
//! queries are free of further privacy cost, which is exactly why the
//! release-once/query-many architecture works.
//!
//! Unreachable targets are uniform across kinds: `distance` /
//! `distance_batch` answer `+inf` for a pair with no connecting path
//! (graph-replaying releases on disconnected topologies), never an error
//! and never a silent `0`. Errors are reserved for invalid queries
//! (out-of-range ids, unsupported kinds); `path` still reports
//! `Disconnected` because there is no route to return.

use crate::error::EngineError;
use privpath_core::baselines::{AllPairsDistanceRelease, SyntheticGraphRelease};
use privpath_core::bounded::BoundedWeightRelease;
use privpath_core::matching::MatchingRelease;
use privpath_core::mst::MstRelease;
use privpath_core::shortcut::ShortcutApspRelease;
use privpath_core::shortest_path::ShortestPathRelease;
use privpath_core::tree_distance::TreeAllPairsRelease;
use privpath_core::tree_hld::HldTreeRelease;
use privpath_core::CoreError;
use privpath_graph::{GraphError, NodeId, Path};
use std::collections::HashMap;

/// An object-safe distance oracle over a stored DP release.
///
/// Implementations answer every query by post-processing the release —
/// no additional privacy is ever spent. `distance_batch` exists because
/// the serving hot path is dominated by per-query setup for
/// graph-replaying releases (a Dijkstra per source); batching lets those
/// implementations share work across queries with the same source.
///
/// The `Send + Sync` supertraits make `&dyn DistanceRelease` shareable
/// across serving threads: queries take `&self` and every release type
/// is immutable after construction.
pub trait DistanceRelease: Send + Sync {
    /// Number of vertices the release answers queries for.
    fn num_nodes(&self) -> usize;

    /// The released estimate of `d(u, v)`; `+inf` when `v` is
    /// unreachable from `u` (uniform across every release kind — an
    /// unreachable target is an answer, not an error).
    ///
    /// # Errors
    /// [`EngineError::NodeOutOfRange`] for invalid ids.
    fn distance(&self, u: NodeId, v: NodeId) -> Result<f64, EngineError>;

    /// Released estimates for many pairs at once. Equivalent to mapping
    /// [`distance`](Self::distance) but implementations may share
    /// per-source work. On error, reports the first failing pair.
    ///
    /// # Errors
    /// Same conditions as [`distance`](Self::distance).
    fn distance_batch(&self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<f64>, EngineError> {
        pairs.iter().map(|&(u, v)| self.distance(u, v)).collect()
    }

    /// Every released distance from one source, indexed by target
    /// (unreachable targets are `+inf`). This is the serve-path **cache
    /// slot**: one vector answers every `(source, *)` query against the
    /// release, so a read-path cache keyed by `(release, source)` turns
    /// repeated-source workloads into array lookups. Graph-replaying
    /// releases override it to pay exactly one Dijkstra; the default maps
    /// [`distance`](Self::distance) over all targets (cheap for
    /// table-backed kinds).
    ///
    /// # Errors
    /// Same conditions as [`distance`](Self::distance).
    fn source_distances(&self, u: NodeId) -> Result<Vec<f64>, EngineError> {
        (0..self.num_nodes())
            .map(|v| self.distance(u, NodeId::new(v)))
            .collect()
    }

    /// Distance rows for many sources at once: row `i` is
    /// [`source_distances`](Self::source_distances) of `sources[i]`.
    ///
    /// The default maps `source_distances` sequentially (fine for
    /// table-backed kinds, whose rows are array reads); graph-replaying
    /// kinds override it to fan the per-source Dijkstras over the default
    /// search thread pool. Overrides must stay bit-for-bit identical to
    /// the sequential mapping — callers (the store's snapshot cache) rely
    /// on replayed answers being byte-stable.
    ///
    /// # Errors
    /// Same conditions as [`distance`](Self::distance).
    fn source_distance_rows(&self, sources: &[NodeId]) -> Result<Vec<Vec<f64>>, EngineError> {
        sources.iter().map(|&s| self.source_distances(s)).collect()
    }

    /// The released route from `u` to `v`, for release kinds that carry
    /// one (`None` for value-only releases).
    ///
    /// # Errors
    /// Same conditions as [`distance`](Self::distance).
    fn path(&self, u: NodeId, v: NodeId) -> Option<Result<Path, EngineError>> {
        let _ = (u, v);
        None
    }
}

fn check_node(index: usize, num_nodes: usize) -> Result<(), EngineError> {
    if index >= num_nodes {
        return Err(EngineError::NodeOutOfRange { index, num_nodes });
    }
    Ok(())
}

/// Maps a core-level `Disconnected` error to the uniform unreachable
/// answer `+inf`; every other error passes through.
fn disconnected_is_infinite(e: CoreError) -> Result<f64, EngineError> {
    match e {
        CoreError::Graph(GraphError::Disconnected { .. }) => Ok(f64::INFINITY),
        other => Err(EngineError::Core(other)),
    }
}

/// Shared batching core for graph-replaying releases: one Dijkstra per
/// distinct source, shared across every pair with that source;
/// unreachable targets answer `+inf`.
///
/// `rows_for_sources` receives every distinct source (sorted by id) in
/// one call, so implementations can fan the per-source Dijkstras over the
/// default search thread pool; row `i` must be the full distance vector
/// from source `i`. Results are identical to a sequential per-source loop
/// because the parallel drivers are bit-for-bit deterministic.
fn batch_by_source(
    num_nodes: usize,
    pairs: &[(NodeId, NodeId)],
    rows_for_sources: impl FnOnce(&[NodeId]) -> Result<Vec<Vec<f64>>, EngineError>,
) -> Result<Vec<f64>, EngineError> {
    let mut by_source: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, &(u, v)) in pairs.iter().enumerate() {
        check_node(u.index(), num_nodes)?;
        check_node(v.index(), num_nodes)?;
        by_source.entry(u.index()).or_default().push(i);
    }
    let mut source_ids: Vec<usize> = by_source.keys().copied().collect();
    source_ids.sort_unstable();
    let sources: Vec<NodeId> = source_ids.iter().map(|&s| NodeId::new(s)).collect();
    let rows = rows_for_sources(&sources)?;
    let mut out = vec![0.0; pairs.len()];
    for (s, dists) in source_ids.iter().zip(&rows) {
        for &i in &by_source[s] {
            let (_, v) = pairs[i];
            out[i] = dists[v.index()];
        }
    }
    Ok(out)
}

impl DistanceRelease for ShortestPathRelease {
    fn num_nodes(&self) -> usize {
        self.topology().num_nodes()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Result<f64, EngineError> {
        // Normalize range errors across kinds: every release reports
        // NodeOutOfRange rather than its substrate's own variant.
        check_node(u.index(), DistanceRelease::num_nodes(self))?;
        check_node(v.index(), DistanceRelease::num_nodes(self))?;
        self.estimated_distance(u, v)
            .or_else(disconnected_is_infinite)
    }

    fn distance_batch(&self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<f64>, EngineError> {
        batch_by_source(DistanceRelease::num_nodes(self), pairs, |sources| {
            Ok(self.distances_for_sources(sources)?)
        })
    }

    fn source_distances(&self, u: NodeId) -> Result<Vec<f64>, EngineError> {
        check_node(u.index(), DistanceRelease::num_nodes(self))?;
        Ok(self.paths_from(u)?.distances().to_vec())
    }

    fn source_distance_rows(&self, sources: &[NodeId]) -> Result<Vec<Vec<f64>>, EngineError> {
        for &s in sources {
            check_node(s.index(), DistanceRelease::num_nodes(self))?;
        }
        Ok(self.distances_for_sources(sources)?)
    }

    fn path(&self, u: NodeId, v: NodeId) -> Option<Result<Path, EngineError>> {
        Some(ShortestPathRelease::path(self, u, v).map_err(EngineError::from))
    }
}

impl DistanceRelease for TreeAllPairsRelease {
    fn num_nodes(&self) -> usize {
        TreeAllPairsRelease::num_nodes(self)
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Result<f64, EngineError> {
        check_node(u.index(), self.num_nodes())?;
        check_node(v.index(), self.num_nodes())?;
        Ok(TreeAllPairsRelease::distance(self, u, v))
    }
}

impl DistanceRelease for HldTreeRelease {
    fn num_nodes(&self) -> usize {
        HldTreeRelease::num_nodes(self)
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Result<f64, EngineError> {
        check_node(u.index(), self.num_nodes())?;
        check_node(v.index(), self.num_nodes())?;
        Ok(HldTreeRelease::distance(self, u, v))
    }
}

impl DistanceRelease for BoundedWeightRelease {
    fn num_nodes(&self) -> usize {
        BoundedWeightRelease::num_nodes(self)
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Result<f64, EngineError> {
        check_node(u.index(), self.num_nodes())?;
        check_node(v.index(), self.num_nodes())?;
        Ok(BoundedWeightRelease::distance(self, u, v))
    }
}

impl DistanceRelease for SyntheticGraphRelease {
    fn num_nodes(&self) -> usize {
        self.topology().num_nodes()
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Result<f64, EngineError> {
        check_node(u.index(), DistanceRelease::num_nodes(self))?;
        check_node(v.index(), DistanceRelease::num_nodes(self))?;
        SyntheticGraphRelease::distance(self, u, v).or_else(disconnected_is_infinite)
    }

    fn distance_batch(&self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<f64>, EngineError> {
        batch_by_source(DistanceRelease::num_nodes(self), pairs, |sources| {
            Ok(self.distances_for_sources(sources)?)
        })
    }

    fn source_distances(&self, u: NodeId) -> Result<Vec<f64>, EngineError> {
        check_node(u.index(), DistanceRelease::num_nodes(self))?;
        Ok(self.distances_from(u)?)
    }

    fn source_distance_rows(&self, sources: &[NodeId]) -> Result<Vec<Vec<f64>>, EngineError> {
        for &s in sources {
            check_node(s.index(), DistanceRelease::num_nodes(self))?;
        }
        Ok(self.distances_for_sources(sources)?)
    }
}

impl DistanceRelease for AllPairsDistanceRelease {
    fn num_nodes(&self) -> usize {
        AllPairsDistanceRelease::num_nodes(self)
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Result<f64, EngineError> {
        check_node(u.index(), self.num_nodes())?;
        check_node(v.index(), self.num_nodes())?;
        Ok(AllPairsDistanceRelease::distance(self, u, v))
    }
}

impl DistanceRelease for ShortcutApspRelease {
    fn num_nodes(&self) -> usize {
        ShortcutApspRelease::num_nodes(self)
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Result<f64, EngineError> {
        check_node(u.index(), self.num_nodes())?;
        check_node(v.index(), self.num_nodes())?;
        Ok(ShortcutApspRelease::distance(self, u, v))
    }
}

/// A stable tag identifying a release's kind in the registry, the CLI,
/// and the persistence format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleaseKind {
    /// Algorithm 3 shortest paths.
    ShortestPath,
    /// Algorithm 1 / Theorem 4.2 tree distances.
    Tree,
    /// Heavy-path tree extension.
    HldTree,
    /// Algorithm 2 bounded-weight distances.
    BoundedWeight,
    /// Appendix B.1 spanning tree.
    Mst,
    /// Appendix B.2 matching.
    Matching,
    /// Laplace synthetic graph baseline.
    SyntheticGraph,
    /// All-pairs composition baseline.
    AllPairsBaseline,
    /// CNX-style hierarchical shortcut APSP (bounded weights).
    ShortcutApsp,
}

impl ReleaseKind {
    /// The kind's stable name (matches [`crate::Mechanism::name`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            ReleaseKind::ShortestPath => "shortest-path",
            ReleaseKind::Tree => "tree",
            ReleaseKind::HldTree => "hld-tree",
            ReleaseKind::BoundedWeight => "bounded-weight",
            ReleaseKind::Mst => "mst",
            ReleaseKind::Matching => "matching",
            ReleaseKind::SyntheticGraph => "synthetic-graph",
            ReleaseKind::AllPairsBaseline => "all-pairs-baseline",
            ReleaseKind::ShortcutApsp => "shortcut-apsp",
        }
    }

    /// Parses a kind name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "shortest-path" => ReleaseKind::ShortestPath,
            "tree" => ReleaseKind::Tree,
            "hld-tree" => ReleaseKind::HldTree,
            "bounded-weight" => ReleaseKind::BoundedWeight,
            "mst" => ReleaseKind::Mst,
            "matching" => ReleaseKind::Matching,
            "synthetic-graph" => ReleaseKind::SyntheticGraph,
            "all-pairs-baseline" => ReleaseKind::AllPairsBaseline,
            "shortcut-apsp" => ReleaseKind::ShortcutApsp,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ReleaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Any release the engine can hold: the union of every mechanism's output
/// type. Distance-capable variants expose a [`DistanceRelease`] view via
/// [`as_distance`](Self::as_distance).
#[derive(Clone, Debug)]
pub enum AnyRelease {
    /// Algorithm 3 output.
    ShortestPath(ShortestPathRelease),
    /// Algorithm 1 / Theorem 4.2 output.
    Tree(TreeAllPairsRelease),
    /// Heavy-path extension output.
    HldTree(HldTreeRelease),
    /// Algorithm 2 output.
    BoundedWeight(BoundedWeightRelease),
    /// Appendix B.1 output.
    Mst(MstRelease),
    /// Appendix B.2 output.
    Matching(MatchingRelease),
    /// Synthetic-graph baseline output.
    SyntheticGraph(SyntheticGraphRelease),
    /// Composition baseline output.
    AllPairsBaseline(AllPairsDistanceRelease),
    /// Hierarchical shortcut output.
    ShortcutApsp(ShortcutApspRelease),
}

impl AnyRelease {
    /// The release's kind tag.
    pub fn kind(&self) -> ReleaseKind {
        match self {
            AnyRelease::ShortestPath(_) => ReleaseKind::ShortestPath,
            AnyRelease::Tree(_) => ReleaseKind::Tree,
            AnyRelease::HldTree(_) => ReleaseKind::HldTree,
            AnyRelease::BoundedWeight(_) => ReleaseKind::BoundedWeight,
            AnyRelease::Mst(_) => ReleaseKind::Mst,
            AnyRelease::Matching(_) => ReleaseKind::Matching,
            AnyRelease::SyntheticGraph(_) => ReleaseKind::SyntheticGraph,
            AnyRelease::AllPairsBaseline(_) => ReleaseKind::AllPairsBaseline,
            AnyRelease::ShortcutApsp(_) => ReleaseKind::ShortcutApsp,
        }
    }

    /// A distance-oracle view, for the kinds that answer distance
    /// queries (`None` for MST and matching releases, which release a
    /// structure rather than a distance table).
    pub fn as_distance(&self) -> Option<&dyn DistanceRelease> {
        match self {
            AnyRelease::ShortestPath(r) => Some(r),
            AnyRelease::Tree(r) => Some(r),
            AnyRelease::HldTree(r) => Some(r),
            AnyRelease::BoundedWeight(r) => Some(r),
            AnyRelease::SyntheticGraph(r) => Some(r),
            AnyRelease::AllPairsBaseline(r) => Some(r),
            AnyRelease::ShortcutApsp(r) => Some(r),
            AnyRelease::Mst(_) | AnyRelease::Matching(_) => None,
        }
    }
}

impl From<ShortestPathRelease> for AnyRelease {
    fn from(r: ShortestPathRelease) -> Self {
        AnyRelease::ShortestPath(r)
    }
}

impl From<TreeAllPairsRelease> for AnyRelease {
    fn from(r: TreeAllPairsRelease) -> Self {
        AnyRelease::Tree(r)
    }
}

impl From<HldTreeRelease> for AnyRelease {
    fn from(r: HldTreeRelease) -> Self {
        AnyRelease::HldTree(r)
    }
}

impl From<BoundedWeightRelease> for AnyRelease {
    fn from(r: BoundedWeightRelease) -> Self {
        AnyRelease::BoundedWeight(r)
    }
}

impl From<MstRelease> for AnyRelease {
    fn from(r: MstRelease) -> Self {
        AnyRelease::Mst(r)
    }
}

impl From<MatchingRelease> for AnyRelease {
    fn from(r: MatchingRelease) -> Self {
        AnyRelease::Matching(r)
    }
}

impl From<SyntheticGraphRelease> for AnyRelease {
    fn from(r: SyntheticGraphRelease) -> Self {
        AnyRelease::SyntheticGraph(r)
    }
}

impl From<AllPairsDistanceRelease> for AnyRelease {
    fn from(r: AllPairsDistanceRelease) -> Self {
        AnyRelease::AllPairsBaseline(r)
    }
}

impl From<ShortcutApspRelease> for AnyRelease {
    fn from(r: ShortcutApspRelease) -> Self {
        AnyRelease::ShortcutApsp(r)
    }
}
