//! The [`ReleaseEngine`]: one weight database, many budget-accounted
//! releases, one registry to query them from.
//!
//! The engine owns the public topology and the private weights, debits an
//! [`Accountant`] for every release (basic composition, Lemma 3.3), and
//! registers each release object under a [`ReleaseId`] so callers can
//! serve `distance` / `distance_batch` / `path` queries — or persist any
//! release — without ever touching the private weights again.

use crate::error::EngineError;
use crate::mechanism::Mechanism;
use crate::release::{AnyRelease, DistanceRelease, ReleaseKind};
use crate::service::QueryService;
use privpath_core::bounds::{AccuracyContract, ErrorBound, ErrorTarget};
use privpath_dp::{Accountant, Delta, Epsilon, NoiseSource, RngNoise};
use privpath_graph::{EdgeWeights, Topology};
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Records one timed mechanism run. Only the mechanism's public name
/// and the elapsed wall time reach the registry — never the weights or
/// the release contents.
fn record_release_timing(mechanism_name: &str, seconds: f64) {
    if !privpath_obs::enabled() {
        return;
    }
    let reg = privpath_obs::MetricRegistry::global();
    reg.counter_with("engine_releases_total", &[("mechanism", mechanism_name)])
        .inc();
    reg.histogram_with("engine_release_seconds", &[("mechanism", mechanism_name)])
        .observe(seconds);
}

/// A registry handle for one release held by a [`ReleaseEngine`].
///
/// Renders as `r<N>` (e.g. `r3`) and parses back from the same form, so
/// the CLI and the wire protocol share one id syntax:
///
/// ```
/// use privpath_engine::ReleaseId;
/// let id: ReleaseId = "r3".parse()?;
/// assert_eq!(id.value(), 3);
/// assert_eq!(id.to_string().parse::<ReleaseId>()?, id);
/// # Ok::<(), privpath_engine::ParseReleaseIdError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReleaseId(u64);

impl ReleaseId {
    /// A handle for a raw id value (used by stores replaying a manifest
    /// that recorded ids explicitly; within one engine, ids come from the
    /// engine itself).
    pub fn new(value: u64) -> Self {
        ReleaseId(value)
    }

    /// The raw numeric id.
    pub fn value(&self) -> u64 {
        self.0
    }

    pub(crate) fn from_value(value: u64) -> Self {
        ReleaseId(value)
    }
}

impl std::fmt::Display for ReleaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Error parsing a [`ReleaseId`] from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseReleaseIdError {
    input: String,
}

impl std::fmt::Display for ParseReleaseIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid release id {:?} (expected `r<N>`, e.g. `r0`)",
            self.input
        )
    }
}

impl std::error::Error for ParseReleaseIdError {}

impl std::str::FromStr for ReleaseId {
    type Err = ParseReleaseIdError;

    /// Accepts the canonical `r<N>` form produced by `Display`, or a bare
    /// numeral for convenience at the CLI.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix('r').unwrap_or(s);
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseReleaseIdError { input: s.into() });
        }
        digits
            .parse::<u64>()
            .map(ReleaseId)
            .map_err(|_| ParseReleaseIdError { input: s.into() })
    }
}

/// A registered release plus its accounting metadata and the accuracy
/// contract declared at release time.
#[derive(Clone, Debug)]
pub struct ReleaseRecord {
    id: ReleaseId,
    label: String,
    eps: f64,
    delta: f64,
    accuracy: Option<AccuracyContract>,
    release: AnyRelease,
}

impl ReleaseRecord {
    /// The registry id.
    pub fn id(&self) -> ReleaseId {
        self.id
    }

    /// The spend label recorded in the accountant.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The release's kind.
    pub fn kind(&self) -> ReleaseKind {
        self.release.kind()
    }

    /// The epsilon this release cost.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The delta this release cost.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The accuracy contract declared by the releasing mechanism
    /// (`None` for releases adopted from legacy storage).
    pub fn accuracy(&self) -> Option<&AccuracyContract> {
        self.accuracy.as_ref()
    }

    /// The contract evaluated at failure probability `gamma`: what error
    /// this release guarantees with probability `1 - gamma`.
    pub fn error_bound(&self, gamma: f64) -> Option<ErrorBound> {
        self.accuracy.as_ref()?.evaluate(gamma)
    }

    /// The release object.
    pub fn release(&self) -> &AnyRelease {
        &self.release
    }

    pub(crate) fn from_parts(
        id: ReleaseId,
        label: String,
        eps: f64,
        delta: f64,
        accuracy: Option<AccuracyContract>,
        release: AnyRelease,
    ) -> Self {
        ReleaseRecord {
            id,
            label,
            eps,
            delta,
            accuracy,
            release,
        }
    }
}

/// Owns one private weight database and composes releases over it under a
/// tracked privacy budget.
///
/// This is the exclusive **write path**: releasing mutates the ledger and
/// the registry, so it requires `&mut self`. The shared **read path** is a
/// [`QueryService`] obtained from [`snapshot`](Self::snapshot) — records
/// are stored as [`Arc<ReleaseRecord>`] precisely so a snapshot shares
/// them with zero copying and queries never contend with writers.
#[derive(Clone, Debug)]
pub struct ReleaseEngine {
    topo: Topology,
    weights: EdgeWeights,
    accountant: Accountant,
    records: BTreeMap<u64, Arc<ReleaseRecord>>,
    next_id: u64,
}

impl ReleaseEngine {
    /// An engine with an unbounded (tracking-only) budget.
    ///
    /// # Errors
    /// [`EngineError::Core`] on weight/topology mismatch.
    pub fn new(topo: Topology, weights: EdgeWeights) -> Result<Self, EngineError> {
        Self::with_accountant(topo, weights, Accountant::unbounded())
    }

    /// An engine enforcing a total `(eps, delta)` budget across all
    /// releases.
    ///
    /// # Errors
    /// [`EngineError::Core`] on weight/topology mismatch.
    pub fn with_budget(
        topo: Topology,
        weights: EdgeWeights,
        eps: Epsilon,
        delta: Delta,
    ) -> Result<Self, EngineError> {
        Self::with_accountant(topo, weights, Accountant::with_budget(eps, delta))
    }

    /// An engine over an explicit accountant (possibly carrying prior
    /// spends on the same database).
    ///
    /// # Errors
    /// [`EngineError::Core`] on weight/topology mismatch.
    pub fn with_accountant(
        topo: Topology,
        weights: EdgeWeights,
        accountant: Accountant,
    ) -> Result<Self, EngineError> {
        weights
            .validate_for(&topo)
            .map_err(privpath_core::CoreError::from)?;
        Ok(ReleaseEngine {
            topo,
            weights,
            accountant,
            records: BTreeMap::new(),
            next_id: 0,
        })
    }

    /// The public topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The private weight database.
    ///
    /// This is write-path-only surface: the engine *is* the component
    /// trusted with the private weights (it runs mechanisms over them),
    /// and live-store curators need the current vector to apply sparse
    /// updates and persist write-path state. Never expose this through a
    /// read path — [`snapshot`](Self::snapshot) deliberately carries
    /// releases only.
    pub fn weights(&self) -> &EdgeWeights {
        &self.weights
    }

    /// Replaces the private weight database (the topology stays fixed —
    /// it is public and every registered release was declared against
    /// it). Existing releases are untouched: they keep answering from the
    /// weights they were released over, which stays differentially
    /// private (post-processing) but grows stale;
    /// [`rerelease_with`](Self::rerelease_with) re-runs a mechanism over
    /// the new weights under a fresh debit.
    ///
    /// # Errors
    /// [`EngineError::Core`] when the new vector's length does not match
    /// the topology. On error the old weights remain in place.
    pub fn update_weights(&mut self, weights: EdgeWeights) -> Result<(), EngineError> {
        weights
            .validate_for(&self.topo)
            .map_err(privpath_core::CoreError::from)?;
        self.weights = weights;
        Ok(())
    }

    /// Runs `mechanism` over the engine's database with an explicit noise
    /// source, debiting the accountant and registering the release.
    ///
    /// The budget is checked **before** any noise is drawn; an
    /// over-budget request leaves the engine untouched.
    ///
    /// # Errors
    /// [`EngineError::BudgetExhausted`] when the declared cost does not
    /// fit the remaining budget; otherwise the mechanism's own errors.
    pub fn release_with<M: Mechanism>(
        &mut self,
        mechanism: &M,
        params: &M::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<ReleaseId, EngineError>
    where
        AnyRelease: From<M::Release>,
    {
        let cost = mechanism.privacy_cost(params);
        self.accountant
            .check(cost.eps(), cost.delta())
            .map_err(|_| self.budget_error(cost.eps(), cost.delta()))?;
        let accuracy = mechanism.accuracy_contract(&self.topo, params);
        let started = Instant::now();
        let release = mechanism.release_with(&self.topo, &self.weights, params, noise)?;
        record_release_timing(mechanism.name(), started.elapsed().as_secs_f64());
        let id = ReleaseId(self.next_id);
        let label = format!("{}#{}", mechanism.name(), id.value());
        self.accountant
            .spend(label.clone(), cost.eps(), cost.delta())
            .map_err(|_| self.budget_error(cost.eps(), cost.delta()))?;
        self.next_id += 1;
        self.records.insert(
            id.value(),
            Arc::new(ReleaseRecord::from_parts(
                id,
                label,
                cost.eps().value(),
                cost.delta().value(),
                accuracy,
                AnyRelease::from(release),
            )),
        );
        Ok(id)
    }

    /// Runs `mechanism` drawing noise from `rng`.
    ///
    /// # Errors
    /// Same conditions as [`release_with`](Self::release_with).
    pub fn release<M: Mechanism>(
        &mut self,
        mechanism: &M,
        params: &M::Params,
        rng: &mut impl Rng,
    ) -> Result<ReleaseId, EngineError>
    where
        AnyRelease: From<M::Release>,
    {
        let mut noise = RngNoise::new(rng);
        self.release_with(mechanism, params, &mut noise)
    }

    /// Releases under an **accuracy contract** instead of an explicit
    /// epsilon: calibrates the smallest epsilon whose bound meets
    /// `target` (via [`Mechanism::calibrate`]; every non-epsilon knob is
    /// taken from `template`), checks the budget, runs the mechanism,
    /// and debits the calibrated cost. Returns the registered id plus the
    /// evaluated [`ErrorBound`] the release now guarantees.
    ///
    /// # Errors
    /// [`EngineError::CalibrationFailed`] when the mechanism has no
    /// contract or no epsilon attains the target; otherwise as
    /// [`release_with`](Self::release_with).
    pub fn release_with_accuracy<M: Mechanism>(
        &mut self,
        mechanism: &M,
        template: &M::Params,
        target: &ErrorTarget,
        rng: &mut impl Rng,
    ) -> Result<(ReleaseId, ErrorBound), EngineError>
    where
        AnyRelease: From<M::Release>,
    {
        let mut noise = RngNoise::new(rng);
        self.release_with_accuracy_noise(mechanism, template, target, &mut noise)
    }

    /// [`release_with_accuracy`](Self::release_with_accuracy) with an
    /// explicit noise source (conformance tests drive this with
    /// [`privpath_dp::ZeroNoise`] / [`privpath_dp::RecordingNoise`]).
    ///
    /// # Errors
    /// Same conditions as
    /// [`release_with_accuracy`](Self::release_with_accuracy).
    pub fn release_with_accuracy_noise<M: Mechanism>(
        &mut self,
        mechanism: &M,
        template: &M::Params,
        target: &ErrorTarget,
        noise: &mut impl NoiseSource,
    ) -> Result<(ReleaseId, ErrorBound), EngineError>
    where
        AnyRelease: From<M::Release>,
    {
        let calibration_error = || EngineError::CalibrationFailed {
            mechanism: mechanism.name(),
            alpha: target.alpha(),
            gamma: target.gamma(),
        };
        let eps = mechanism
            .calibrate(&self.topo, template, target)
            .ok_or_else(calibration_error)?;
        let params = mechanism.with_eps(template, eps);
        let id = self.release_with(mechanism, &params, noise)?;
        let bound = self
            .get(id)
            .expect("just registered")
            .error_bound(target.gamma())
            .ok_or_else(calibration_error)?;
        Ok((id, bound))
    }

    /// Re-runs a mechanism over the **current** weights and replaces the
    /// record registered at `id`, keeping the id stable (readers of the
    /// next snapshot see the same handle answer from fresh data). This is
    /// the live-update half of the release lifecycle: after
    /// [`update_weights`](Self::update_weights), each release the curator
    /// wants refreshed is re-released here under a **fresh debit** — a
    /// re-release touches the private weights again, so it costs privacy
    /// exactly like a first release (budget checked before noise).
    ///
    /// The replaced record is dropped from the registry but its original
    /// spend stays in the ledger: both the old and the new release were
    /// in fact computed from private data.
    ///
    /// # Errors
    /// [`EngineError::UnknownRelease`] for an unregistered id;
    /// [`EngineError::BudgetExhausted`] when the fresh cost does not fit;
    /// otherwise the mechanism's own errors. On error the old record
    /// remains registered.
    pub fn rerelease_with<M: Mechanism>(
        &mut self,
        id: ReleaseId,
        mechanism: &M,
        params: &M::Params,
        noise: &mut impl NoiseSource,
    ) -> Result<(), EngineError>
    where
        AnyRelease: From<M::Release>,
    {
        if !self.records.contains_key(&id.value()) {
            return Err(EngineError::UnknownRelease(id.value()));
        }
        let cost = mechanism.privacy_cost(params);
        self.accountant
            .check(cost.eps(), cost.delta())
            .map_err(|_| self.budget_error(cost.eps(), cost.delta()))?;
        let accuracy = mechanism.accuracy_contract(&self.topo, params);
        let started = Instant::now();
        let release = mechanism.release_with(&self.topo, &self.weights, params, noise)?;
        record_release_timing(mechanism.name(), started.elapsed().as_secs_f64());
        // The spend label records which update generation this was.
        let label = format!(
            "{}#{}@u{}",
            mechanism.name(),
            id.value(),
            self.accountant.spends().len()
        );
        self.accountant
            .spend(label.clone(), cost.eps(), cost.delta())
            .map_err(|_| self.budget_error(cost.eps(), cost.delta()))?;
        self.records.insert(
            id.value(),
            Arc::new(ReleaseRecord::from_parts(
                id,
                label,
                cost.eps().value(),
                cost.delta().value(),
                accuracy,
                AnyRelease::from(release),
            )),
        );
        Ok(())
    }

    /// [`rerelease_with`](Self::rerelease_with) drawing noise from `rng`.
    ///
    /// # Errors
    /// Same conditions as [`rerelease_with`](Self::rerelease_with).
    pub fn rerelease<M: Mechanism>(
        &mut self,
        id: ReleaseId,
        mechanism: &M,
        params: &M::Params,
        rng: &mut impl Rng,
    ) -> Result<(), EngineError>
    where
        AnyRelease: From<M::Release>,
    {
        let mut noise = RngNoise::new(rng);
        self.rerelease_with(id, mechanism, params, &mut noise)
    }

    /// Replaces the record at `id` with an **externally staged**
    /// re-release, debiting its recorded cost. This is the two-phase
    /// commit path live stores use: the mechanism is run *outside* the
    /// engine first (so a mid-generation failure stages nothing and
    /// leaves the registry untouched), then each staged release is
    /// installed here — budget checked, spend recorded, id stable. The
    /// replaced record's own spends stay in the ledger.
    ///
    /// # Errors
    /// [`EngineError::UnknownRelease`] for an unregistered id;
    /// [`EngineError::BudgetExhausted`] when the cost does not fit;
    /// [`EngineError::Dp`] for invalid `(eps, delta)` values. On error
    /// the old record remains registered.
    pub fn replace_release(
        &mut self,
        id: ReleaseId,
        label: impl Into<String>,
        eps: f64,
        delta: f64,
        accuracy: Option<AccuracyContract>,
        release: AnyRelease,
    ) -> Result<(), EngineError> {
        if !self.records.contains_key(&id.value()) {
            return Err(EngineError::UnknownRelease(id.value()));
        }
        let eps = Epsilon::new(eps)?;
        let delta = Delta::new(delta)?;
        let label = label.into();
        self.accountant
            .spend(label.clone(), eps, delta)
            .map_err(|_| self.budget_error(eps, delta))?;
        self.records.insert(
            id.value(),
            Arc::new(ReleaseRecord::from_parts(
                id,
                label,
                eps.value(),
                delta.value(),
                accuracy,
                release,
            )),
        );
        Ok(())
    }

    /// Unregisters a release and returns its record (shared snapshots
    /// holding the `Arc` keep working). The release's spends stay in the
    /// ledger — dropping an artifact does not un-spend the privacy that
    /// produced it.
    pub fn remove(&mut self, id: ReleaseId) -> Option<Arc<ReleaseRecord>> {
        self.records.remove(&id.value())
    }

    /// Registers a release at an **explicit id without debiting** — the
    /// ledger-replay path: a store reopening its manifest reconstructs
    /// the accountant from recorded spends first (which already cover
    /// every release and re-release, including spends on records since
    /// replaced or dropped) and then attaches the persisted records here.
    /// Debiting again via [`adopt`](Self::adopt) would double-count.
    ///
    /// `next_id` advances past `id` so subsequent releases never collide.
    ///
    /// # Errors
    /// [`EngineError::Persist`] when `id` is already registered (a
    /// manifest listing an id twice is corrupt).
    pub fn adopt_spent(
        &mut self,
        id: ReleaseId,
        label: impl Into<String>,
        eps: f64,
        delta: f64,
        accuracy: Option<AccuracyContract>,
        release: AnyRelease,
    ) -> Result<(), EngineError> {
        if self.records.contains_key(&id.value()) {
            return Err(EngineError::Persist(format!(
                "release id {id} adopted twice"
            )));
        }
        self.records.insert(
            id.value(),
            Arc::new(ReleaseRecord::from_parts(
                id,
                label.into(),
                eps,
                delta,
                accuracy,
                release,
            )),
        );
        self.next_id = self.next_id.max(id.value() + 1);
        Ok(())
    }

    /// Registers an externally produced release (e.g. loaded from disk),
    /// debiting its recorded `(eps, delta)` so the engine's ledger keeps
    /// covering every release that exists over this database. The stored
    /// accuracy contract, where one was persisted, rides along.
    ///
    /// # Errors
    /// [`EngineError::BudgetExhausted`] if the recorded cost does not fit
    /// the remaining budget; [`EngineError::Dp`] for invalid stored
    /// parameters.
    pub fn adopt(
        &mut self,
        label: impl Into<String>,
        eps: f64,
        delta: f64,
        accuracy: Option<AccuracyContract>,
        release: AnyRelease,
    ) -> Result<ReleaseId, EngineError> {
        let eps = Epsilon::new(eps)?;
        let delta = Delta::new(delta)?;
        self.accountant
            .check(eps, delta)
            .map_err(|_| self.budget_error(eps, delta))?;
        let id = ReleaseId(self.next_id);
        let label = label.into();
        self.accountant
            .spend(label.clone(), eps, delta)
            .map_err(|_| self.budget_error(eps, delta))?;
        self.next_id += 1;
        self.records.insert(
            id.value(),
            Arc::new(ReleaseRecord::from_parts(
                id,
                label,
                eps.value(),
                delta.value(),
                accuracy,
                release,
            )),
        );
        Ok(id)
    }

    /// Registers a release **without debiting** at the next id — the
    /// continual-release serving path: a release derived purely by
    /// post-processing an already-paid-for noisy stream estimate costs
    /// nothing further, so it is recorded with whatever `(eps, delta)`
    /// annotation the caller chooses (typically zero) and no ledger
    /// entry. The stream's own spends are debited separately through
    /// [`debit`](Self::debit).
    pub fn adopt_unspent(
        &mut self,
        label: impl Into<String>,
        eps: f64,
        delta: f64,
        accuracy: Option<AccuracyContract>,
        release: AnyRelease,
    ) -> ReleaseId {
        let id = ReleaseId(self.next_id);
        self.next_id += 1;
        self.records.insert(
            id.value(),
            Arc::new(ReleaseRecord::from_parts(
                id,
                label.into(),
                eps,
                delta,
                accuracy,
                release,
            )),
        );
        id
    }

    /// Swaps the record behind `id` **without debiting** — the continual
    /// re-release path, where each generation is free post-processing of
    /// the composer's estimate and the stream increments are debited
    /// separately through [`debit`](Self::debit).
    ///
    /// # Errors
    /// [`EngineError::UnknownRelease`] for an unregistered id.
    pub fn replace_release_unspent(
        &mut self,
        id: ReleaseId,
        label: impl Into<String>,
        eps: f64,
        delta: f64,
        accuracy: Option<AccuracyContract>,
        release: AnyRelease,
    ) -> Result<(), EngineError> {
        if !self.records.contains_key(&id.value()) {
            return Err(EngineError::UnknownRelease(id.value()));
        }
        self.records.insert(
            id.value(),
            Arc::new(ReleaseRecord::from_parts(
                id,
                label.into(),
                eps,
                delta,
                accuracy,
                release,
            )),
        );
        Ok(())
    }

    /// Records a ledger spend that is not tied to any single release —
    /// how a continual stream's telescoping budget increments enter the
    /// engine's `(eps, delta)` accounting.
    ///
    /// # Errors
    /// [`EngineError::BudgetExhausted`] when the spend does not fit.
    pub fn debit(
        &mut self,
        label: impl Into<String>,
        eps: Epsilon,
        delta: Delta,
    ) -> Result<(), EngineError> {
        self.accountant
            .spend(label, eps, delta)
            .map_err(|_| self.budget_error(eps, delta))
    }

    /// The structured budget error for a refused `(eps, delta)` request.
    fn budget_error(&self, eps: Epsilon, delta: Delta) -> EngineError {
        let (remaining_eps, remaining_delta) = self
            .accountant
            .remaining()
            .unwrap_or((f64::INFINITY, f64::INFINITY));
        EngineError::BudgetExhausted {
            requested_eps: eps.value(),
            requested_delta: delta.value(),
            remaining_eps,
            remaining_delta,
        }
    }

    /// The record for a registered release.
    pub fn get(&self, id: ReleaseId) -> Option<&ReleaseRecord> {
        self.records.get(&id.value()).map(Arc::as_ref)
    }

    /// An immutable, cheaply-cloneable view of every release registered so
    /// far, for the shared read path: the snapshot holds [`Arc`]s to the
    /// same records (no release data is copied) plus the ledger totals
    /// frozen at snapshot time. Releases made after the snapshot do not
    /// appear in it — take a new snapshot to publish them.
    pub fn snapshot(&self) -> QueryService {
        QueryService::from_records(self.records.clone(), self.spent(), self.remaining())
    }

    /// A distance-oracle view of a registered release.
    ///
    /// # Errors
    /// [`EngineError::UnknownRelease`] for an unregistered id;
    /// [`EngineError::UnsupportedQuery`] for kinds without a distance
    /// surface (MST, matching).
    pub fn query(&self, id: ReleaseId) -> Result<&dyn DistanceRelease, EngineError> {
        let record = self
            .records
            .get(&id.value())
            .ok_or(EngineError::UnknownRelease(id.value()))?;
        record
            .release()
            .as_distance()
            .ok_or(EngineError::UnsupportedQuery {
                kind: record.kind().as_str(),
                query: "distance",
            })
    }

    /// All registered releases, in id order.
    pub fn releases(&self) -> impl Iterator<Item = &ReleaseRecord> {
        self.records.values().map(Arc::as_ref)
    }

    /// Number of registered releases.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no release has been registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The privacy ledger.
    pub fn accountant(&self) -> &Accountant {
        &self.accountant
    }

    /// Total `(eps, delta)` spent so far (basic composition).
    pub fn spent(&self) -> (f64, f64) {
        self.accountant.total()
    }

    /// Remaining `(eps, delta)`, or `None` for an unbounded engine.
    pub fn remaining(&self) -> Option<(f64, f64)> {
        self.accountant.remaining()
    }
}
