//! Concentration bounds for Laplace noise: Lemma 3.1 (\[CSS10\]) and the
//! single-variable tail, expressed as executable bound formulas used by the
//! utility theorems and the experiment harness.

use crate::DpError;

/// Lemma 3.1: for `t` independent `Lap(b)` variables, their sum `X`
/// satisfies `|X| < 4 b sqrt(t ln(2/gamma))` with probability at least
/// `1 - gamma`. Returns that bound.
///
/// # Errors
/// Returns [`DpError::InvalidScale`] for invalid `b` and
/// [`DpError::InvalidProbability`] for `gamma` outside `(0, 1)`.
pub fn laplace_sum_bound(b: f64, t: usize, gamma: f64) -> Result<f64, DpError> {
    if !b.is_finite() || b <= 0.0 {
        return Err(DpError::InvalidScale(b));
    }
    if !(gamma > 0.0 && gamma < 1.0) {
        return Err(DpError::InvalidProbability(gamma));
    }
    Ok(4.0 * b * ((t as f64) * (2.0 / gamma).ln()).sqrt())
}

/// The union-bound magnitude for `count` independent `Lap(b)` variables:
/// with probability `1 - gamma`, **every** one of them has magnitude at
/// most `b * ln(count / gamma)`. This is the paper's ubiquitous
/// "(1/eps) log(E/gamma)" term.
///
/// # Errors
/// Same domains as [`laplace_sum_bound`]; additionally `count` must be
/// positive.
pub fn laplace_union_bound(b: f64, count: usize, gamma: f64) -> Result<f64, DpError> {
    if !b.is_finite() || b <= 0.0 {
        return Err(DpError::InvalidScale(b));
    }
    if !(gamma > 0.0 && gamma < 1.0) {
        return Err(DpError::InvalidProbability(gamma));
    }
    if count == 0 {
        return Err(DpError::InvalidComposition("count must be positive".into()));
    }
    Ok(b * ((count as f64) / gamma).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Laplace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sum_bound_formula() {
        let b = 2.0;
        let t = 16;
        let gamma = 0.05;
        let bound = laplace_sum_bound(b, t, gamma).unwrap();
        let expected = 4.0 * 2.0 * (16.0f64 * (2.0f64 / 0.05).ln()).sqrt();
        assert!((bound - expected).abs() < 1e-12);
    }

    #[test]
    fn sum_bound_holds_empirically() {
        // Draw 1000 sums of 25 Lap(1.0) variables; at gamma = 0.1 at most
        // ~10% + slack may exceed the bound.
        let d = Laplace::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2024);
        let gamma = 0.1;
        let bound = laplace_sum_bound(1.0, 25, gamma).unwrap();
        let trials = 1000;
        let exceed = (0..trials)
            .filter(|_| {
                let s: f64 = (0..25).map(|_| d.sample(&mut rng)).sum();
                s.abs() >= bound
            })
            .count();
        assert!(
            (exceed as f64) < gamma * trials as f64 * 1.5 + 5.0,
            "{exceed} of {trials} sums exceeded the 1-gamma bound"
        );
    }

    #[test]
    fn union_bound_holds_empirically() {
        let d = Laplace::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let gamma = 0.1;
        let count = 50;
        let bound = laplace_union_bound(1.0, count, gamma).unwrap();
        let trials = 500;
        let bad = (0..trials)
            .filter(|_| (0..count).any(|_| d.sample(&mut rng).abs() > bound))
            .count();
        assert!(
            (bad as f64) < gamma * trials as f64 * 1.5 + 5.0,
            "{bad} of {trials} batches had an outlier"
        );
    }

    #[test]
    fn domains_validated() {
        assert!(laplace_sum_bound(0.0, 5, 0.1).is_err());
        assert!(laplace_sum_bound(1.0, 5, 0.0).is_err());
        assert!(laplace_sum_bound(1.0, 5, 1.0).is_err());
        assert!(laplace_union_bound(1.0, 0, 0.1).is_err());
    }

    #[test]
    fn bounds_grow_with_confidence() {
        let loose = laplace_sum_bound(1.0, 10, 0.5).unwrap();
        let tight = laplace_sum_bound(1.0, 10, 0.001).unwrap();
        assert!(tight > loose);
        let loose = laplace_union_bound(1.0, 10, 0.5).unwrap();
        let tight = laplace_union_bound(1.0, 10, 0.001).unwrap();
        assert!(tight > loose);
    }
}
