//! The Laplace distribution (paper Definition 3.1), implemented from
//! scratch.

use crate::DpError;
use rand::Rng;

/// The Laplace distribution `Lap(b)` centred at zero with scale `b`:
/// density `p(x) = exp(-|x| / b) / (2b)` and tail
/// `Pr[|Y| > t * b] = e^{-t}`.
///
/// Sampling uses the inverse CDF: for `U` uniform on `(-1/2, 1/2)`,
/// `X = -b * sign(U) * ln(1 - 2|U|)` is `Lap(b)`-distributed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates `Lap(scale)`.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidScale`] unless `scale` is positive and
    /// finite.
    pub fn new(scale: f64) -> Result<Self, DpError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(DpError::InvalidScale(scale));
        }
        Ok(Laplace { scale })
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance, `2 b^2`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // u in [-0.5, 0.5); shift away from the singular endpoint.
        let u: f64 = rng.gen::<f64>() - 0.5;
        let abs = 1.0 - 2.0 * u.abs();
        // abs in (0, 1]; ln finite. Guard the measure-zero abs == 0 case
        // anyway (u == -0.5 exactly).
        let abs = abs.max(f64::MIN_POSITIVE);
        -self.scale * u.signum() * abs.ln()
    }

    /// The density `p(x)`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x.abs()) / self.scale).exp() / (2.0 * self.scale)
    }

    /// The cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }

    /// The quantile function (inverse CDF) for `p` in `(0, 1)`.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidProbability`] for `p` outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64, DpError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(DpError::InvalidProbability(p));
        }
        Ok(if p < 0.5 {
            self.scale * (2.0 * p).ln()
        } else {
            -self.scale * (2.0 * (1.0 - p)).ln()
        })
    }

    /// The two-sided tail probability `Pr[|Y| > t]`.
    pub fn tail(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-t / self.scale).exp()
        }
    }

    /// The magnitude bound `t` with `Pr[|Y| > t] = gamma`: the paper's
    /// ubiquitous "`|X| <= (b) log(1/gamma)` with probability `1 - gamma`".
    ///
    /// # Errors
    /// Returns [`DpError::InvalidProbability`] for `gamma` outside `(0, 1)`.
    pub fn magnitude_bound(&self, gamma: f64) -> Result<f64, DpError> {
        if !(gamma > 0.0 && gamma < 1.0) {
            return Err(DpError::InvalidProbability(gamma));
        }
        Ok(self.scale * (1.0 / gamma).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_scales_rejected() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
        assert!(Laplace::new(f64::INFINITY).is_err());
        assert!(Laplace::new(2.0).is_ok());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = Laplace::new(1.5).unwrap();
        // Trapezoid rule over [-40, 40].
        let steps = 200_000;
        let (a, b) = (-40.0f64, 40.0f64);
        let h = (b - a) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * d.pdf(x);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let d = Laplace::new(0.7).unwrap();
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = d.quantile(p).unwrap();
            assert!((d.cdf(x) - p).abs() < 1e-12, "p={p}");
        }
        assert_eq!(d.quantile(0.5).unwrap(), 0.0);
    }

    #[test]
    fn cdf_monotone_and_symmetric() {
        let d = Laplace::new(1.0).unwrap();
        let mut prev = -1.0;
        for i in -50..=50 {
            let x = i as f64 / 5.0;
            let c = d.cdf(x);
            assert!(c >= prev);
            prev = c;
            // Symmetry: F(-x) = 1 - F(x).
            assert!((d.cdf(-x) - (1.0 - d.cdf(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn tail_matches_definition() {
        let d = Laplace::new(2.0).unwrap();
        // Pr[|Y| > t*b] = e^{-t}.
        for &t in &[0.5, 1.0, 3.0] {
            assert!((d.tail(t * 2.0) - (-t).exp()).abs() < 1e-12);
        }
        assert_eq!(d.tail(-1.0), 1.0);
    }

    #[test]
    fn magnitude_bound_inverts_tail() {
        let d = Laplace::new(3.0).unwrap();
        let gamma = 0.05;
        let t = d.magnitude_bound(gamma).unwrap();
        assert!((d.tail(t) - gamma).abs() < 1e-12);
        assert!(d.magnitude_bound(0.0).is_err());
        assert!(d.magnitude_bound(1.0).is_err());
    }

    #[test]
    fn sample_moments() {
        let d = Laplace::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12345);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.03,
            "var {var}"
        );
    }

    #[test]
    fn sample_tail_fraction() {
        let d = Laplace::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(999);
        let n = 100_000;
        let t = 2.0;
        let exceed = (0..n).filter(|_| d.sample(&mut rng).abs() > t).count();
        let expected = t.exp().recip();
        let frac = exceed as f64 / n as f64;
        assert!(
            (frac - expected).abs() < 0.01,
            "tail fraction {frac} vs expected {expected}"
        );
    }

    #[test]
    fn sample_median_near_zero() {
        let d = Laplace::new(5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let n = 50_000;
        let pos = (0..n).filter(|_| d.sample(&mut rng) > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }
}
