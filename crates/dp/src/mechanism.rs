//! The Laplace mechanism (paper Lemma 3.2, after [DMNS06]).

use crate::{DpError, Epsilon, NoiseSource};

/// The Laplace mechanism for a vector query: adds independent
/// `Lap(sensitivity / eps)` noise to each coordinate of `values`, where
/// `sensitivity` is the query's global `l1` sensitivity (Definition 3.2).
///
/// The result is `eps`-differentially private with respect to the
/// neighboring relation under which `sensitivity` was computed — in the
/// private edge-weight model, weight functions at `l1` distance 1.
///
/// # Errors
/// Returns [`DpError::InvalidScale`] if `sensitivity` is non-positive or
/// non-finite.
pub fn laplace_mechanism(
    values: &[f64],
    sensitivity: f64,
    eps: Epsilon,
    noise: &mut impl NoiseSource,
) -> Result<Vec<f64>, DpError> {
    if !sensitivity.is_finite() || sensitivity <= 0.0 {
        return Err(DpError::InvalidScale(sensitivity));
    }
    let scale = sensitivity / eps.value();
    Ok(values.iter().map(|&v| v + noise.laplace(scale)).collect())
}

/// Scalar convenience form of [`laplace_mechanism`].
///
/// # Errors
/// Same as [`laplace_mechanism`].
pub fn laplace_mechanism_scalar(
    value: f64,
    sensitivity: f64,
    eps: Epsilon,
    noise: &mut impl NoiseSource,
) -> Result<f64, DpError> {
    if !sensitivity.is_finite() || sensitivity <= 0.0 {
        return Err(DpError::InvalidScale(sensitivity));
    }
    Ok(value + noise.laplace(sensitivity / eps.value()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecordingNoise, RngNoise, ZeroNoise};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_is_identity() {
        let eps = Epsilon::new(1.0).unwrap();
        let out = laplace_mechanism(&[1.0, 2.0, 3.0], 1.0, eps, &mut ZeroNoise).unwrap();
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn scale_is_sensitivity_over_eps() {
        let eps = Epsilon::new(0.5).unwrap();
        let mut rec = RecordingNoise::new(ZeroNoise);
        let _ = laplace_mechanism(&[0.0; 4], 3.0, eps, &mut rec).unwrap();
        assert_eq!(rec.len(), 4);
        for &(scale, _) in rec.draws() {
            assert_eq!(scale, 6.0);
        }
    }

    #[test]
    fn invalid_sensitivity_rejected() {
        let eps = Epsilon::new(1.0).unwrap();
        assert!(laplace_mechanism(&[1.0], 0.0, eps, &mut ZeroNoise).is_err());
        assert!(laplace_mechanism_scalar(1.0, f64::NAN, eps, &mut ZeroNoise).is_err());
    }

    #[test]
    fn noise_is_additive() {
        let eps = Epsilon::new(2.0).unwrap();
        let mut a = RngNoise::new(StdRng::seed_from_u64(1));
        let mut b = RngNoise::new(StdRng::seed_from_u64(1));
        let base = laplace_mechanism(&[0.0, 0.0], 1.0, eps, &mut a).unwrap();
        let shifted = laplace_mechanism(&[10.0, 20.0], 1.0, eps, &mut b).unwrap();
        assert!((shifted[0] - base[0] - 10.0).abs() < 1e-12);
        assert!((shifted[1] - base[1] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_distinguishability_respects_eps() {
        // Sanity check of the DP guarantee itself: for scalar outputs of
        // neighboring inputs 0 and 1 with sensitivity 1, the likelihood
        // ratio of falling in [-0.5, 0.5) is bounded by e^eps. Histogram
        // test with generous tolerance.
        let eps = Epsilon::new(1.0).unwrap();
        let trials = 60_000;
        let mut rng = RngNoise::new(StdRng::seed_from_u64(77));
        let mut count0 = 0u32;
        let mut count1 = 0u32;
        for _ in 0..trials {
            let x0 = laplace_mechanism_scalar(0.0, 1.0, eps, &mut rng).unwrap();
            let x1 = laplace_mechanism_scalar(1.0, 1.0, eps, &mut rng).unwrap();
            if (-0.5..0.5).contains(&x0) {
                count0 += 1;
            }
            if (-0.5..0.5).contains(&x1) {
                count1 += 1;
            }
        }
        let ratio = count0 as f64 / count1 as f64;
        assert!(
            ratio <= (1.0f64).exp() * 1.1,
            "likelihood ratio {ratio} violates eps bound"
        );
        assert!(ratio >= 1.0, "event is more likely under input 0");
    }
}
