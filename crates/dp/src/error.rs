//! Error type for privacy-parameter and mechanism misuse.

use std::error::Error;
use std::fmt;

/// Errors produced by the DP substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// Epsilon must be a positive, finite real.
    InvalidEpsilon(f64),
    /// Delta must lie in `[0, 1)`.
    InvalidDelta(f64),
    /// A scale/sensitivity parameter was non-positive or non-finite.
    InvalidScale(f64),
    /// A probability parameter was outside `(0, 1)`.
    InvalidProbability(f64),
    /// A composition target is infeasible (e.g. zero queries).
    InvalidComposition(String),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidEpsilon(v) => {
                write!(f, "epsilon must be positive and finite, got {v}")
            }
            DpError::InvalidDelta(v) => write!(f, "delta must be in [0, 1), got {v}"),
            DpError::InvalidScale(v) => {
                write!(f, "scale must be positive and finite, got {v}")
            }
            DpError::InvalidProbability(v) => {
                write!(f, "probability must be in (0, 1), got {v}")
            }
            DpError::InvalidComposition(msg) => write!(f, "invalid composition: {msg}"),
        }
    }
}

impl Error for DpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_values() {
        assert!(DpError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(DpError::InvalidDelta(1.5).to_string().contains("1.5"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error>(_: E) {}
        assert_err(DpError::InvalidScale(0.0));
    }
}
