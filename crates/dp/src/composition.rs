//! Composition of differentially private mechanisms: Lemma 3.3 (basic) and
//! Lemma 3.4 (advanced, after [DRV10, DR13]), plus the numeric inverse of
//! advanced composition that Theorem 4.5 needs ("what per-query epsilon can
//! I afford for `k` queries at a total `(eps, delta)`?").

use crate::{Delta, DpError, Epsilon};

/// Basic composition (Lemma 3.3): `k` adaptive `(eps, delta)`-DP
/// mechanisms compose to `(k * eps, k * delta)`-DP.
///
/// # Errors
/// Returns [`DpError::InvalidComposition`] if `k == 0`, or propagates
/// parameter validation if the products overflow their domains.
pub fn basic_composition(
    eps: Epsilon,
    delta: Delta,
    k: usize,
) -> Result<(Epsilon, Delta), DpError> {
    if k == 0 {
        return Err(DpError::InvalidComposition("k must be positive".into()));
    }
    let e = Epsilon::new(eps.value() * k as f64)?;
    let d = Delta::new((delta.value() * k as f64).min(1.0 - f64::EPSILON))?;
    Ok((e, d))
}

/// Advanced composition (Lemma 3.4): `k` adaptive `(eps, delta)`-DP
/// mechanisms are `(eps', k * delta + delta')`-DP for
///
/// ```text
/// eps' = sqrt(2 k ln(1 / delta')) * eps + k * eps * (e^eps - 1)
/// ```
///
/// Returns `eps'` (the caller supplies `delta'`).
///
/// # Errors
/// Returns [`DpError::InvalidComposition`] if `k == 0` or
/// [`DpError::InvalidDelta`] if `delta_prime` is not in `(0, 1)`.
pub fn advanced_composition_epsilon(
    eps: Epsilon,
    k: usize,
    delta_prime: f64,
) -> Result<f64, DpError> {
    if k == 0 {
        return Err(DpError::InvalidComposition("k must be positive".into()));
    }
    if !(delta_prime > 0.0 && delta_prime < 1.0) {
        return Err(DpError::InvalidDelta(delta_prime));
    }
    let e = eps.value();
    let kf = k as f64;
    Ok((2.0 * kf * (1.0 / delta_prime).ln()).sqrt() * e + kf * e * (e.exp() - 1.0))
}

/// The inverse of [`advanced_composition_epsilon`]: the largest per-query
/// `eps` such that `k` adaptive pure-DP queries compose to at most
/// `eps_total` (with slack `delta_prime`), found by monotone bisection on
/// the exact Lemma 3.4 expression. This realizes Theorem 4.5's
/// "`eps' = O(eps / sqrt(ln(1/delta)))`" without the hidden constant.
///
/// # Errors
/// Returns [`DpError::InvalidComposition`] if `k == 0` or
/// [`DpError::InvalidDelta`] if `delta_prime` is not in `(0, 1)`.
pub fn per_query_epsilon(
    eps_total: Epsilon,
    k: usize,
    delta_prime: f64,
) -> Result<Epsilon, DpError> {
    if k == 0 {
        return Err(DpError::InvalidComposition("k must be positive".into()));
    }
    if !(delta_prime > 0.0 && delta_prime < 1.0) {
        return Err(DpError::InvalidDelta(delta_prime));
    }
    let target = eps_total.value();
    // The advanced-composition epsilon is strictly increasing in the
    // per-query epsilon, starts at 0, and is unbounded: bisect.
    let mut lo = 0.0f64;
    let mut hi = target; // composition of k >= 1 queries is >= one query
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid == lo || mid == hi {
            break;
        }
        let eps_mid = Epsilon::new(mid).map_err(|_| DpError::InvalidEpsilon(mid))?;
        let total = advanced_composition_epsilon(eps_mid, k, delta_prime)?;
        if total <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Epsilon::new(lo)
}

/// Which of basic and advanced composition yields the better (larger)
/// per-query budget for `k` pure-DP queries at total `(eps_total,
/// delta_total)`; for small `k` basic composition wins, for large `k`
/// advanced does. Returns the winning per-query epsilon and whether
/// advanced composition was used (spending `delta_total` as slack).
///
/// # Errors
/// Returns [`DpError::InvalidComposition`] if `k == 0`.
pub fn best_per_query_epsilon(
    eps_total: Epsilon,
    delta_total: Delta,
    k: usize,
) -> Result<(Epsilon, bool), DpError> {
    let basic = eps_total.split(k)?;
    if delta_total.is_pure() {
        return Ok((basic, false));
    }
    let advanced = per_query_epsilon(eps_total, k, delta_total.value())?;
    if advanced.value() > basic.value() {
        Ok((advanced, true))
    } else {
        Ok((basic, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_composition_multiplies() {
        let (e, d) =
            basic_composition(Epsilon::new(0.1).unwrap(), Delta::new(1e-6).unwrap(), 10).unwrap();
        assert!((e.value() - 1.0).abs() < 1e-12);
        assert!((d.value() - 1e-5).abs() < 1e-18);
        assert!(basic_composition(Epsilon::new(1.0).unwrap(), Delta::zero(), 0).is_err());
    }

    #[test]
    fn advanced_composition_formula() {
        let eps = Epsilon::new(0.01).unwrap();
        let k = 10_000;
        let dp = 1e-6;
        let e = advanced_composition_epsilon(eps, k, dp).unwrap();
        let expected = (2.0 * 10_000.0 * (1e6f64).ln()).sqrt() * 0.01
            + 10_000.0 * 0.01 * ((0.01f64).exp() - 1.0);
        assert!((e - expected).abs() < 1e-9);
    }

    #[test]
    fn per_query_inverts_advanced() {
        let total = Epsilon::new(1.0).unwrap();
        for &k in &[2usize, 16, 256, 10_000] {
            let per = per_query_epsilon(total, k, 1e-6).unwrap();
            let recomposed = advanced_composition_epsilon(per, k, 1e-6).unwrap();
            assert!(recomposed <= 1.0 + 1e-9, "k={k}: {recomposed}");
            // And nearly tight.
            assert!(recomposed > 0.999, "k={k}: loose inverse {recomposed}");
        }
    }

    #[test]
    fn advanced_beats_basic_for_many_queries() {
        let total = Epsilon::new(1.0).unwrap();
        let delta = Delta::new(1e-6).unwrap();
        let k = 10_000;
        let (eps, used_advanced) = best_per_query_epsilon(total, delta, k).unwrap();
        assert!(used_advanced);
        // Basic would give 1e-4; advanced should give ~ 1/sqrt(2 k ln 1e6).
        assert!(
            eps.value() > 1.0 / k as f64,
            "advanced not better: {}",
            eps.value()
        );
        let rough = 1.0 / (2.0 * k as f64 * (1e6f64).ln()).sqrt();
        assert!(eps.value() > 0.5 * rough && eps.value() < 2.0 * rough);
    }

    #[test]
    fn basic_beats_advanced_for_few_queries() {
        let total = Epsilon::new(1.0).unwrap();
        let delta = Delta::new(1e-6).unwrap();
        let (eps, used_advanced) = best_per_query_epsilon(total, delta, 2).unwrap();
        assert!(!used_advanced);
        assert_eq!(eps.value(), 0.5);
    }

    #[test]
    fn pure_dp_always_basic() {
        let total = Epsilon::new(1.0).unwrap();
        let (eps, used_advanced) = best_per_query_epsilon(total, Delta::zero(), 1_000).unwrap();
        assert!(!used_advanced);
        assert!((eps.value() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_k() {
        let total = Epsilon::new(1.0).unwrap();
        let mut prev = f64::INFINITY;
        for &k in &[1usize, 4, 16, 64, 256] {
            let per = per_query_epsilon(total, k, 1e-5).unwrap().value();
            assert!(per < prev, "per-query eps should shrink with k");
            prev = per;
        }
    }

    #[test]
    fn invalid_inputs() {
        let e = Epsilon::new(1.0).unwrap();
        assert!(advanced_composition_epsilon(e, 0, 0.1).is_err());
        assert!(advanced_composition_epsilon(e, 5, 0.0).is_err());
        assert!(advanced_composition_epsilon(e, 5, 1.0).is_err());
        assert!(per_query_epsilon(e, 0, 0.5).is_err());
    }
}
