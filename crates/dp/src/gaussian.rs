//! The Gaussian distribution, implemented from scratch for the
//! zero-concentrated-DP (zCDP) side of the substrate.
//!
//! The Laplace mechanism is the paper's workhorse for one-shot releases,
//! but under *continual observation* a stream of `T` releases composes
//! far more tightly through the Gaussian mechanism accounted in zCDP
//! (rho adds linearly; see [`crate::zcdp`]). Sampling uses Box–Muller
//! over the same uniform source the Laplace sampler draws from — no
//! external distribution crate.

use crate::DpError;
use rand::Rng;

/// The centred Gaussian `N(0, sigma^2)`.
///
/// Tail: `Pr[|Y| > t] <= 2 exp(-t^2 / (2 sigma^2))`, the bound every
/// continual-release accuracy contract unions over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gaussian {
    sigma: f64,
}

impl Gaussian {
    /// Creates `N(0, sigma^2)`.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidScale`] unless `sigma` is positive and
    /// finite.
    pub fn new(sigma: f64) -> Result<Self, DpError> {
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(DpError::InvalidScale(sigma));
        }
        Ok(Gaussian { sigma })
    }

    /// The standard deviation `sigma`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The variance, `sigma^2`.
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Draws one sample via Box–Muller.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // u1 in (0, 1]: shift the half-open [0, 1) draw away from the
        // ln(0) singularity; u2 in [0, 1) is fine for the angle.
        let u1: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.sigma * radius * angle.cos()
    }

    /// The two-sided sub-Gaussian tail bound `2 exp(-t^2 / (2 sigma^2))`
    /// (clamped to 1), used to calibrate magnitude bounds.
    pub fn tail_bound(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (2.0 * (-(t * t) / (2.0 * self.sigma * self.sigma)).exp()).min(1.0)
        }
    }

    /// The magnitude `t` with tail bound `gamma`:
    /// `t = sigma * sqrt(2 ln(2 / gamma))`.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidProbability`] for `gamma` outside `(0, 1)`.
    pub fn magnitude_bound(&self, gamma: f64) -> Result<f64, DpError> {
        if !(gamma > 0.0 && gamma < 1.0) {
            return Err(DpError::InvalidProbability(gamma));
        }
        Ok(self.sigma * (2.0 * (2.0 / gamma).ln()).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_sigmas_rejected() {
        assert!(Gaussian::new(0.0).is_err());
        assert!(Gaussian::new(-2.0).is_err());
        assert!(Gaussian::new(f64::NAN).is_err());
        assert!(Gaussian::new(f64::INFINITY).is_err());
        assert!(Gaussian::new(0.5).is_ok());
    }

    #[test]
    fn sample_moments() {
        let d = Gaussian::new(3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4242);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.03,
            "var {var} vs {}",
            d.variance()
        );
    }

    #[test]
    fn sample_symmetric() {
        let d = Gaussian::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let n = 100_000;
        let pos = (0..n).filter(|_| d.sample(&mut rng) > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn tail_bound_dominates_empirical_tail() {
        let d = Gaussian::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        let n = 100_000;
        for &t in &[1.0, 2.0, 4.0] {
            let exceed = (0..n).filter(|_| d.sample(&mut rng).abs() > t).count();
            let frac = exceed as f64 / n as f64;
            assert!(
                frac <= d.tail_bound(t) + 0.01,
                "tail at {t}: empirical {frac} > bound {}",
                d.tail_bound(t)
            );
        }
    }

    #[test]
    fn magnitude_bound_inverts_tail_bound() {
        let d = Gaussian::new(1.7).unwrap();
        for &gamma in &[0.5, 0.1, 0.01] {
            let t = d.magnitude_bound(gamma).unwrap();
            assert!((d.tail_bound(t) - gamma).abs() < 1e-12, "gamma={gamma}");
        }
        assert!(d.magnitude_bound(0.0).is_err());
        assert!(d.magnitude_bound(1.0).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Gaussian::new(1.0).unwrap();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
