//! Randomized response (Warner 1965) and the reconstruction limits of
//! Lemmas 5.3 and 5.4.
//!
//! Lemma 5.3 states that any `(eps, delta)`-DP algorithm `B : {0,1}^n ->
//! {0,1}` must err on a uniformly random input's bit with probability at
//! least `(1 - delta) / (1 + e^eps)`; randomized response achieves exactly
//! this for `delta = 0`, which is why the paper calls the lemma a statement
//! about the optimality of randomized response. The reconstruction-attack
//! experiments (E1/E10/E11) report their Hamming distances against
//! [`reconstruction_error_floor`].

use crate::{Delta, DpError, Epsilon};
use rand::Rng;

/// `eps`-DP randomized response on one bit: report the truth with
/// probability `e^eps / (1 + e^eps)`, the flip otherwise.
pub fn randomized_response_bit(bit: bool, eps: Epsilon, rng: &mut impl Rng) -> bool {
    let p_truth = eps.value().exp() / (1.0 + eps.value().exp());
    if rng.gen::<f64>() < p_truth {
        bit
    } else {
        !bit
    }
}

/// Applies [`randomized_response_bit`] to each bit independently, giving an
/// `eps`-DP release of the whole vector **per bit**; as a release of the
/// whole vector under the "one record changes" neighboring relation it is
/// also `eps`-DP.
pub fn randomized_response(bits: &[bool], eps: Epsilon, rng: &mut impl Rng) -> Vec<bool> {
    bits.iter()
        .map(|&b| randomized_response_bit(b, eps, rng))
        .collect()
}

/// The unbiased estimator for the population frequency of `true` under
/// randomized response: given the reported frequency `p_hat` and the truth
/// probability `p = e^eps / (1 + e^eps)`, returns
/// `(p_hat - (1 - p)) / (2p - 1)` clamped to `[0, 1]`.
pub fn estimate_frequency(reported_true_frac: f64, eps: Epsilon) -> f64 {
    let p = eps.value().exp() / (1.0 + eps.value().exp());
    ((reported_true_frac - (1.0 - p)) / (2.0 * p - 1.0)).clamp(0.0, 1.0)
}

/// Lemma 5.3 / 5.4: the per-bit disagreement floor
/// `(1 - delta) / (1 + e^eps)` for any `(eps, delta)`-DP bit release. The
/// expected Hamming distance of any DP reconstruction of an `n`-bit uniform
/// input is at least `n` times this.
///
/// # Errors
/// Never fails for validated parameters; signature returns `Result` for
/// uniformity with the other bound formulas.
pub fn reconstruction_error_floor(eps: Epsilon, delta: Delta) -> Result<f64, DpError> {
    Ok((1.0 - delta.value()) / (1.0 + eps.value().exp()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rr_error_rate_matches_floor() {
        // Lemma 5.3 is tight for randomized response at delta = 0: the
        // disagreement probability is exactly 1 / (1 + e^eps).
        let mut rng = StdRng::seed_from_u64(55);
        for &e in &[0.25, 1.0, 2.0] {
            let eps = Epsilon::new(e).unwrap();
            let floor = reconstruction_error_floor(eps, Delta::zero()).unwrap();
            let trials = 200_000;
            let flips = (0..trials)
                .filter(|i| randomized_response_bit(i % 2 == 0, eps, &mut rng) != (i % 2 == 0))
                .count();
            let rate = flips as f64 / trials as f64;
            assert!(
                (rate - floor).abs() < 0.01,
                "eps={e}: rate {rate} vs floor {floor}"
            );
        }
    }

    #[test]
    fn frequency_estimator_unbiased() {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let n = 100_000;
        let truth_frac = 0.3;
        let bits: Vec<bool> = (0..n).map(|i| (i as f64 / n as f64) < truth_frac).collect();
        let reported = randomized_response(&bits, eps, &mut rng);
        let p_hat = reported.iter().filter(|&&b| b).count() as f64 / n as f64;
        let est = estimate_frequency(p_hat, eps);
        assert!((est - truth_frac).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn floor_decreases_with_eps() {
        let d = Delta::zero();
        let f1 = reconstruction_error_floor(Epsilon::new(0.1).unwrap(), d).unwrap();
        let f2 = reconstruction_error_floor(Epsilon::new(2.0).unwrap(), d).unwrap();
        assert!(f1 > f2);
        // eps -> 0: floor -> 1/2.
        let f0 = reconstruction_error_floor(Epsilon::new(1e-9).unwrap(), d).unwrap();
        assert!((f0 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn floor_scales_with_delta() {
        let eps = Epsilon::new(1.0).unwrap();
        let f0 = reconstruction_error_floor(eps, Delta::zero()).unwrap();
        let f1 = reconstruction_error_floor(eps, Delta::new(0.5).unwrap()).unwrap();
        assert!((f1 - 0.5 * f0).abs() < 1e-12);
    }

    #[test]
    fn estimator_clamps() {
        let eps = Epsilon::new(1.0).unwrap();
        assert_eq!(estimate_frequency(0.0, eps), 0.0);
        assert_eq!(estimate_frequency(1.0, eps), 1.0);
    }
}
