//! The noise-source seam: every mechanism in `privpath-core` draws its
//! Laplace noise through [`NoiseSource`].
//!
//! This indirection is what makes the paper's decomposition arguments
//! testable: running a mechanism with [`ZeroNoise`] must reproduce the
//! exact (non-private) quantity, isolating the combinatorial logic from the
//! randomness; running with [`RecordingNoise`] lets tests audit that the
//! number and scale of draws match the sensitivity analysis.

use crate::Laplace;
use rand::Rng;

/// A source of Laplace noise at caller-chosen scales.
pub trait NoiseSource {
    /// Draws one `Lap(scale)` sample.
    ///
    /// # Panics
    /// Implementations may panic if `scale` is non-positive or non-finite;
    /// mechanisms validate scales before drawing.
    fn laplace(&mut self, scale: f64) -> f64;
}

/// The production noise source: samples from a [`rand::Rng`].
#[derive(Debug)]
pub struct RngNoise<R: Rng> {
    rng: R,
}

impl<R: Rng> RngNoise<R> {
    /// Wraps an RNG.
    pub fn new(rng: R) -> Self {
        RngNoise { rng }
    }

    /// Unwraps the RNG.
    pub fn into_inner(self) -> R {
        self.rng
    }
}

/// Counts production noise draws. The *number* of draws is a function of
/// the public topology and mechanism choice (the sensitivity analysis
/// fixes it), so exporting it leaks nothing about the weights; the drawn
/// values themselves never reach the registry.
fn noise_draw_counter() -> &'static privpath_obs::Counter {
    static COUNTER: std::sync::OnceLock<privpath_obs::Counter> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| privpath_obs::MetricRegistry::global().counter("dp_noise_draws_total"))
}

impl<R: Rng> NoiseSource for RngNoise<R> {
    fn laplace(&mut self, scale: f64) -> f64 {
        noise_draw_counter().inc();
        Laplace::new(scale)
            .expect("mechanism passed an invalid noise scale")
            .sample(&mut self.rng)
    }
}

/// A noise source returning exactly zero: turns any mechanism into its
/// exact, non-private counterpart. **For tests and diagnostics only** — a
/// release produced with `ZeroNoise` is not differentially private.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZeroNoise;

impl NoiseSource for ZeroNoise {
    fn laplace(&mut self, scale: f64) -> f64 {
        assert!(
            scale.is_finite() && scale > 0.0,
            "mechanism passed an invalid noise scale {scale}"
        );
        0.0
    }
}

/// Wraps another source and records every `(scale, value)` draw, so tests
/// can audit a mechanism's noise usage against its privacy analysis.
#[derive(Debug, Default)]
pub struct RecordingNoise<N> {
    inner: N,
    draws: Vec<(f64, f64)>,
}

impl<N: NoiseSource> RecordingNoise<N> {
    /// Wraps `inner`.
    pub fn new(inner: N) -> Self {
        RecordingNoise {
            inner,
            draws: Vec::new(),
        }
    }

    /// All draws so far as `(scale, value)` pairs, in order.
    pub fn draws(&self) -> &[(f64, f64)] {
        &self.draws
    }

    /// Number of draws so far.
    pub fn len(&self) -> usize {
        self.draws.len()
    }

    /// Whether no draws have been made.
    pub fn is_empty(&self) -> bool {
        self.draws.is_empty()
    }

    /// The minimum scale drawn at, if any draw happened.
    pub fn min_scale(&self) -> Option<f64> {
        self.draws.iter().map(|&(s, _)| s).min_by(f64::total_cmp)
    }
}

impl<N: NoiseSource> NoiseSource for RecordingNoise<N> {
    fn laplace(&mut self, scale: f64) -> f64 {
        let value = self.inner.laplace(scale);
        self.draws.push((scale, value));
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_is_zero() {
        let mut z = ZeroNoise;
        assert_eq!(z.laplace(1.0), 0.0);
        assert_eq!(z.laplace(100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid noise scale")]
    fn zero_noise_rejects_bad_scale() {
        let mut z = ZeroNoise;
        let _ = z.laplace(-1.0);
    }

    #[test]
    fn rng_noise_produces_varied_samples() {
        let mut n = RngNoise::new(StdRng::seed_from_u64(5));
        let a = n.laplace(1.0);
        let b = n.laplace(1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn rng_noise_deterministic_under_seed() {
        let mut a = RngNoise::new(StdRng::seed_from_u64(9));
        let mut b = RngNoise::new(StdRng::seed_from_u64(9));
        for _ in 0..10 {
            assert_eq!(a.laplace(2.0), b.laplace(2.0));
        }
    }

    #[test]
    fn recording_noise_audits_draws() {
        let mut r = RecordingNoise::new(ZeroNoise);
        assert!(r.is_empty());
        let _ = r.laplace(3.0);
        let _ = r.laplace(5.0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.draws()[0], (3.0, 0.0));
        assert_eq!(r.min_scale(), Some(3.0));
    }
}
