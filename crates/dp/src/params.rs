//! Validated privacy parameters.

use crate::DpError;
use std::fmt;

/// A validated privacy parameter `epsilon > 0` (finite).
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps an epsilon.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidEpsilon`] unless `value` is positive and
    /// finite.
    pub fn new(value: f64) -> Result<Self, DpError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(DpError::InvalidEpsilon(value));
        }
        Ok(Epsilon(value))
    }

    /// The raw value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Splits this budget evenly over `k` sequential uses (basic
    /// composition, Lemma 3.3).
    ///
    /// # Errors
    /// Returns [`DpError::InvalidComposition`] if `k == 0`.
    pub fn split(&self, k: usize) -> Result<Epsilon, DpError> {
        if k == 0 {
            return Err(DpError::InvalidComposition(
                "cannot split over zero uses".into(),
            ));
        }
        Epsilon::new(self.0 / k as f64)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A validated privacy parameter `delta` in `[0, 1)`.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Delta(f64);

impl Delta {
    /// Validates and wraps a delta.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidDelta`] unless `value` is in `[0, 1)`.
    pub fn new(value: f64) -> Result<Self, DpError> {
        if !value.is_finite() || !(0.0..1.0).contains(&value) {
            return Err(DpError::InvalidDelta(value));
        }
        Ok(Delta(value))
    }

    /// The `delta = 0` of pure differential privacy.
    pub fn zero() -> Self {
        Delta(0.0)
    }

    /// The raw value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Whether this is pure DP (`delta == 0`).
    pub fn is_pure(&self) -> bool {
        self.0 <= 0.0
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(1.0).is_ok());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-0.5).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
    }

    #[test]
    fn epsilon_split() {
        let e = Epsilon::new(2.0).unwrap();
        assert_eq!(e.split(4).unwrap().value(), 0.5);
        assert!(e.split(0).is_err());
    }

    #[test]
    fn delta_validation() {
        assert!(Delta::new(0.0).is_ok());
        assert!(Delta::new(1e-9).is_ok());
        assert!(Delta::new(1.0).is_err());
        assert!(Delta::new(-0.1).is_err());
        assert!(Delta::zero().is_pure());
        assert!(!Delta::new(0.1).unwrap().is_pure());
    }

    #[test]
    fn display() {
        assert_eq!(Epsilon::new(0.5).unwrap().to_string(), "0.5");
        assert_eq!(Delta::zero().to_string(), "0");
    }
}
