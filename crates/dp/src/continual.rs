//! Continual release via the binary-tree mechanism (Chan–Shi–Song /
//! Dwork–Naor–Pitassi–Rothblum).
//!
//! A release store taking a stream of weight updates cannot afford a
//! fresh debit per update: `T` updates would cost `Theta(T)` budget. The
//! tree mechanism instead maintains the dyadic decomposition of the
//! stream prefix: item `n` finalises exactly one tree node (at level
//! `trailing_zeros(n)`), each node is released once with Gaussian noise
//! `N(0, sigma_node^2)` per coordinate, and the running prefix sum is the
//! sum of the `O(log T)` noisy nodes selected by the binary digits of
//! `n`. Each stream item therefore participates in at most
//! `floor(log2 T) + 1` released nodes, so the total privacy cost over the
//! whole stream is `levels * rho_node` — polylog in `T` — while every
//! prefix estimate carries at most `levels` noise terms, giving the
//! `O(log^{3/2} T)`-shaped error the `ContinualRelease` accuracy contract
//! declares.

use crate::gaussian::Gaussian;
use crate::DpError;
use rand::Rng;

/// Number of tree levels for a stream of `capacity` items:
/// `floor(log2(capacity)) + 1`, or 0 for an empty stream.
pub fn levels_for(capacity: u64) -> u32 {
    if capacity == 0 {
        0
    } else {
        64 - capacity.leading_zeros()
    }
}

/// Number of tree levels *touched* by the first `n` items — the level
/// count the accountant charges for after `n` pushes. Equals
/// [`levels_for`]`(n)`: released nodes so far live on levels
/// `0 ..= floor(log2 n)`, and an item appears in at most one per level.
pub fn levels_used(n: u64) -> u32 {
    levels_for(n)
}

/// The binary-tree composer over a stream of `dim`-dimensional deltas.
///
/// Holds one slot per level; slot `j` is occupied exactly when bit `j`
/// of the item count is set (a binary counter). Each occupied slot
/// carries the *raw* dyadic partial sum (needed to build parent nodes)
/// and its *noisy* release (the only value that flows into estimates).
#[derive(Clone, Debug, PartialEq)]
pub struct TreeComposer {
    dim: usize,
    capacity: u64,
    sigma_node: f64,
    items: u64,
    raw: Vec<Option<Vec<f64>>>,
    noisy: Vec<Option<Vec<f64>>>,
}

impl TreeComposer {
    /// A composer for up to `capacity` stream items of dimension `dim`,
    /// with per-coordinate node noise `N(0, sigma_node^2)`.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidScale`] unless `sigma_node` is positive
    /// and finite, or [`DpError::InvalidComposition`] for a zero
    /// capacity.
    pub fn new(dim: usize, capacity: u64, sigma_node: f64) -> Result<Self, DpError> {
        Gaussian::new(sigma_node)?;
        if capacity == 0 {
            return Err(DpError::InvalidComposition(
                "tree composer needs capacity >= 1".into(),
            ));
        }
        let levels = levels_for(capacity) as usize;
        Ok(TreeComposer {
            dim,
            capacity,
            sigma_node,
            items: 0,
            raw: vec![None; levels],
            noisy: vec![None; levels],
        })
    }

    /// The stream dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The stream capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of tree levels.
    pub fn levels(&self) -> u32 {
        self.raw.len() as u32
    }

    /// The per-node noise standard deviation.
    pub fn sigma_node(&self) -> f64 {
        self.sigma_node
    }

    /// Items pushed so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Absorbs the next stream delta and returns the fresh prefix-sum
    /// estimate. Draws `dim` Gaussian samples (one node is finalised per
    /// push).
    ///
    /// # Errors
    /// Returns [`DpError::InvalidComposition`] if the stream is at
    /// capacity or `delta` has the wrong dimension.
    pub fn push(&mut self, delta: &[f64], rng: &mut impl Rng) -> Result<Vec<f64>, DpError> {
        if self.items >= self.capacity {
            return Err(DpError::InvalidComposition(format!(
                "tree composer at capacity ({} items)",
                self.capacity
            )));
        }
        if delta.len() != self.dim {
            return Err(DpError::InvalidComposition(format!(
                "delta dimension {} != composer dimension {}",
                delta.len(),
                self.dim
            )));
        }
        let n = self.items + 1;
        let level = n.trailing_zeros() as usize;
        // The new node's raw value is this delta plus every lower
        // (now-merged) dyadic block.
        let mut raw = delta.to_vec();
        for j in 0..level {
            if let Some(block) = self.raw[j].take() {
                for (r, b) in raw.iter_mut().zip(&block) {
                    *r += b;
                }
            }
            self.noisy[j] = None;
        }
        let noise = Gaussian::new(self.sigma_node).expect("validated in new");
        let noisy: Vec<f64> = raw.iter().map(|&r| r + noise.sample(rng)).collect();
        self.raw[level] = Some(raw);
        self.noisy[level] = Some(noisy);
        self.items = n;
        Ok(self.estimate())
    }

    /// The current noisy prefix-sum estimate: the sum of the noisy nodes
    /// selected by the set bits of the item count (all zeros before the
    /// first push).
    pub fn estimate(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for j in 0..self.raw.len() {
            if (self.items >> j) & 1 == 1 {
                let node = self.noisy[j].as_ref().expect("occupied level has noise");
                for (o, v) in out.iter_mut().zip(node) {
                    *o += v;
                }
            }
        }
        out
    }

    /// The `(raw, noisy)` vectors at `level`, if that slot is occupied —
    /// the unit of state a store persists for crash-safe replay.
    pub fn level_state(&self, level: u32) -> Option<(&[f64], &[f64])> {
        let j = level as usize;
        match (self.raw.get(j), self.noisy.get(j)) {
            (Some(Some(r)), Some(Some(n))) => Some((r.as_slice(), n.as_slice())),
            _ => None,
        }
    }

    /// Rebuilds a composer from persisted state: `levels_state[j]` holds
    /// the `(raw, noisy)` pair for level `j` or `None` for an empty slot.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidComposition`] unless occupancy matches
    /// the binary digits of `items`, every vector has length `dim`, and
    /// `items <= capacity`; sigma and capacity are validated as in
    /// [`new`](Self::new).
    pub fn restore(
        dim: usize,
        capacity: u64,
        sigma_node: f64,
        items: u64,
        levels_state: Vec<Option<(Vec<f64>, Vec<f64>)>>,
    ) -> Result<Self, DpError> {
        let mut composer = TreeComposer::new(dim, capacity, sigma_node)?;
        if items > capacity {
            return Err(DpError::InvalidComposition(format!(
                "restored position {items} exceeds capacity {capacity}"
            )));
        }
        if levels_state.len() != composer.raw.len() {
            return Err(DpError::InvalidComposition(format!(
                "restored state has {} levels, composer has {}",
                levels_state.len(),
                composer.raw.len()
            )));
        }
        for (j, slot) in levels_state.into_iter().enumerate() {
            let occupied = (items >> j) & 1 == 1;
            match slot {
                Some((raw, noisy)) if occupied => {
                    if raw.len() != dim || noisy.len() != dim {
                        return Err(DpError::InvalidComposition(format!(
                            "level {j} state has wrong dimension"
                        )));
                    }
                    composer.raw[j] = Some(raw);
                    composer.noisy[j] = Some(noisy);
                }
                None if !occupied => {}
                _ => {
                    return Err(DpError::InvalidComposition(format!(
                        "level {j} occupancy does not match position {items}"
                    )));
                }
            }
        }
        composer.items = items;
        Ok(composer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn level_math() {
        assert_eq!(levels_for(0), 0);
        assert_eq!(levels_for(1), 1);
        assert_eq!(levels_for(2), 2);
        assert_eq!(levels_for(256), 9);
        assert_eq!(levels_for(257), 9);
        assert_eq!(levels_used(5), 3);
        assert_eq!(levels_used(0), 0);
    }

    #[test]
    fn raw_blocks_sum_to_exact_prefix() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut composer = TreeComposer::new(3, 40, 1.0).unwrap();
        let mut exact = vec![0.0f64; 3];
        for t in 0..40u64 {
            let delta: Vec<f64> = (0..3).map(|c| (t * 3 + c as u64) as f64 * 0.1).collect();
            for (e, d) in exact.iter_mut().zip(&delta) {
                *e += d;
            }
            composer.push(&delta, &mut rng).unwrap();
            // Invariant: occupied slots are the set bits, and their raw
            // blocks partition the prefix exactly.
            let n = t + 1;
            let mut raw_sum = [0.0f64; 3];
            for j in 0..composer.levels() {
                let occupied = (n >> j) & 1 == 1;
                assert_eq!(composer.level_state(j).is_some(), occupied, "n={n} j={j}");
                if let Some((raw, _)) = composer.level_state(j) {
                    for (s, r) in raw_sum.iter_mut().zip(raw) {
                        *s += r;
                    }
                }
            }
            for (s, e) in raw_sum.iter().zip(&exact) {
                assert!((s - e).abs() < 1e-9, "n={n}: raw {s} vs exact {e}");
            }
        }
    }

    #[test]
    fn estimate_error_stays_within_composed_noise() {
        let sigma = 0.5;
        let mut rng = StdRng::seed_from_u64(7);
        let mut composer = TreeComposer::new(4, 300, sigma).unwrap();
        let mut exact = vec![0.0f64; 4];
        let worst_noise = 8.0 * (composer.levels() as f64).sqrt() * sigma;
        for t in 0..300u64 {
            let delta: Vec<f64> = (0..4).map(|c| ((t + c as u64) % 7) as f64 - 3.0).collect();
            for (e, d) in exact.iter_mut().zip(&delta) {
                *e += d;
            }
            let est = composer.push(&delta, &mut rng).unwrap();
            for (a, b) in est.iter().zip(&exact) {
                assert!(
                    (a - b).abs() <= worst_noise,
                    "t={t}: estimate {a} vs exact {b} (limit {worst_noise})"
                );
            }
        }
    }

    #[test]
    fn capacity_and_dimension_enforced() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut composer = TreeComposer::new(2, 2, 1.0).unwrap();
        composer.push(&[1.0, 2.0], &mut rng).unwrap();
        assert!(composer.push(&[1.0], &mut rng).is_err());
        composer.push(&[0.0, 0.0], &mut rng).unwrap();
        let err = composer.push(&[1.0, 1.0], &mut rng).unwrap_err();
        assert!(matches!(err, DpError::InvalidComposition(_)));
        assert!(TreeComposer::new(2, 0, 1.0).is_err());
        assert!(TreeComposer::new(2, 4, 0.0).is_err());
    }

    #[test]
    fn restore_resumes_identically() {
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut continuous = TreeComposer::new(2, 30, 0.7).unwrap();
        let mut interrupted = TreeComposer::new(2, 30, 0.7).unwrap();
        let delta_at = |t: u64| vec![t as f64, -(t as f64) * 0.5];
        for t in 0..13u64 {
            continuous.push(&delta_at(t), &mut rng_a).unwrap();
            interrupted.push(&delta_at(t), &mut rng_b).unwrap();
        }
        // Persist and rebuild mid-stream.
        let state: Vec<Option<(Vec<f64>, Vec<f64>)>> = (0..interrupted.levels())
            .map(|j| {
                interrupted
                    .level_state(j)
                    .map(|(r, n)| (r.to_vec(), n.to_vec()))
            })
            .collect();
        let mut restored = TreeComposer::restore(2, 30, 0.7, interrupted.items(), state).unwrap();
        assert_eq!(restored, interrupted);
        for t in 13..30u64 {
            let a = continuous.push(&delta_at(t), &mut rng_a).unwrap();
            let b = restored.push(&delta_at(t), &mut rng_b).unwrap();
            assert_eq!(a, b, "t={t}");
        }
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        // Occupancy must match the binary digits of the position.
        let bad = TreeComposer::restore(1, 8, 1.0, 1, vec![None, None, None, None]);
        assert!(bad.is_err());
        let bad = TreeComposer::restore(
            1,
            8,
            1.0,
            2,
            vec![
                Some((vec![1.0], vec![1.0])),
                Some((vec![1.0], vec![1.0])),
                None,
                None,
            ],
        );
        assert!(bad.is_err());
        // Wrong dimension inside a slot.
        let bad = TreeComposer::restore(
            2,
            8,
            1.0,
            1,
            vec![Some((vec![1.0], vec![1.0])), None, None, None],
        );
        assert!(bad.is_err());
        // Position past capacity.
        let bad = TreeComposer::restore(1, 2, 1.0, 3, vec![None, None]);
        assert!(bad.is_err());
    }

    #[test]
    fn estimate_before_any_push_is_zero() {
        let composer = TreeComposer::new(3, 4, 1.0).unwrap();
        assert_eq!(composer.estimate(), vec![0.0, 0.0, 0.0]);
    }
}
