//! Zero-concentrated differential privacy (zCDP): conversions and a
//! rho-based accountant.
//!
//! The paper's mechanisms account in pure `(eps, 0)`-DP, which composes
//! *linearly* — fatal for a continual-release stream of `T` updates. zCDP
//! (Bun–Steinke) gives the tight alternative: the Gaussian mechanism with
//! sensitivity `s` and standard deviation `sigma` is
//! `rho = s^2 / (2 sigma^2)`-zCDP, rho adds linearly under composition,
//! and a total rho converts back to `(eps, delta)`-DP far more tightly
//! than advanced composition. The [`ZcdpAccountant`] here is the
//! rho-denominated sibling of [`Accountant`](crate::Accountant); the
//! conversions are:
//!
//! * pure `eps`-DP implies `(eps^2 / 2)`-zCDP ([`pure_to_zcdp`]);
//! * `rho`-zCDP implies `(eps, delta)`-DP with the classic
//!   `eps = rho + 2 sqrt(rho ln(1/delta))` ([`zcdp_epsilon_classic`]) and
//!   the tighter minimum-over-alpha form ([`zcdp_epsilon`]);
//! * the numeric inverse [`max_rho_for_epsilon`] — the largest rho whose
//!   conversion fits a target `(eps, delta)` budget — which is how a
//!   continual namespace derives its rho allowance from the store's
//!   eps-denominated budget.

use crate::DpError;

/// rho for pure `eps`-DP: every `eps`-DP mechanism is
/// `(eps^2 / 2)`-zCDP (Bun–Steinke Proposition 1.4).
pub fn pure_to_zcdp(eps: f64) -> f64 {
    0.5 * eps * eps
}

/// rho of the Gaussian mechanism: sensitivity `s`, noise `N(0, sigma^2)`
/// gives `rho = s^2 / (2 sigma^2)`.
///
/// # Errors
/// Returns [`DpError::InvalidScale`] unless both arguments are positive
/// and finite.
pub fn gaussian_rho(sensitivity: f64, sigma: f64) -> Result<f64, DpError> {
    if !sensitivity.is_finite() || sensitivity <= 0.0 {
        return Err(DpError::InvalidScale(sensitivity));
    }
    if !sigma.is_finite() || sigma <= 0.0 {
        return Err(DpError::InvalidScale(sigma));
    }
    Ok(sensitivity * sensitivity / (2.0 * sigma * sigma))
}

/// The sigma achieving a target rho at sensitivity `s`:
/// `sigma = s / sqrt(2 rho)`.
///
/// # Errors
/// Returns [`DpError::InvalidScale`] unless both arguments are positive
/// and finite.
pub fn gaussian_sigma(sensitivity: f64, rho: f64) -> Result<f64, DpError> {
    if !sensitivity.is_finite() || sensitivity <= 0.0 {
        return Err(DpError::InvalidScale(sensitivity));
    }
    if !rho.is_finite() || rho <= 0.0 {
        return Err(DpError::InvalidScale(rho));
    }
    Ok(sensitivity / (2.0 * rho).sqrt())
}

/// The classic zCDP-to-DP conversion (Bun–Steinke Proposition 1.3):
/// `rho`-zCDP implies `(rho + 2 sqrt(rho ln(1/delta)), delta)`-DP.
///
/// # Errors
/// Returns [`DpError::InvalidScale`] for a negative or non-finite rho and
/// [`DpError::InvalidDelta`] for delta outside `(0, 1)`.
pub fn zcdp_epsilon_classic(rho: f64, delta: f64) -> Result<f64, DpError> {
    check_conversion_args(rho, delta)?;
    if rho <= 0.0 {
        return Ok(0.0);
    }
    Ok(rho + 2.0 * (rho * (1.0 / delta).ln()).sqrt())
}

/// The tight zCDP-to-DP conversion: `rho`-zCDP implies `(eps, delta)`-DP
/// for
///
/// ```text
/// eps = min over alpha > 1 of
///       rho * alpha + ln(1 / (alpha * delta)) / (alpha - 1)
///                   + ln((alpha - 1) / alpha)
/// ```
///
/// (Canonne–Kamath–Steinke; each alpha gives a valid upper bound, so the
/// numeric minimum is sound). Always at most [`zcdp_epsilon_classic`],
/// and clamped at zero.
///
/// # Errors
/// Same argument validation as [`zcdp_epsilon_classic`].
pub fn zcdp_epsilon(rho: f64, delta: f64) -> Result<f64, DpError> {
    check_conversion_args(rho, delta)?;
    if rho <= 0.0 {
        return Ok(0.0);
    }
    let eps_at = |alpha: f64| {
        rho * alpha + (1.0 / (alpha * delta)).ln() / (alpha - 1.0) + ((alpha - 1.0) / alpha).ln()
    };
    // The objective is unimodal in alpha on (1, inf); bracket the
    // minimiser around the classic stationary point
    // alpha* = 1 + sqrt(ln(1/delta) / rho) and ternary-search.
    let alpha_star = 1.0 + ((1.0 / delta).ln() / rho).sqrt();
    let mut lo = 1.0 + 1e-9;
    let mut hi = (2.0 * alpha_star).max(16.0);
    while eps_at(hi * 2.0) < eps_at(hi) {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if eps_at(m1) <= eps_at(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let tight = eps_at(0.5 * (lo + hi));
    let classic = zcdp_epsilon_classic(rho, delta)?;
    Ok(tight.min(classic).max(0.0))
}

/// The largest rho whose tight conversion at `delta` fits within `eps`
/// (bisection on the monotone [`zcdp_epsilon`]). This is how a continual
/// namespace turns its store-level `(eps, delta)` budget into a rho
/// allowance for the tree composer.
///
/// # Errors
/// Returns [`DpError::InvalidEpsilon`] for a non-positive or non-finite
/// eps and [`DpError::InvalidDelta`] for delta outside `(0, 1)`.
pub fn max_rho_for_epsilon(eps: f64, delta: f64) -> Result<f64, DpError> {
    if !eps.is_finite() || eps <= 0.0 {
        return Err(DpError::InvalidEpsilon(eps));
    }
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(DpError::InvalidDelta(delta));
    }
    // eps(rho) >= 0 is nondecreasing in rho; find an upper bracket.
    let mut hi = eps.max(1e-9);
    while zcdp_epsilon(hi, delta)? <= eps {
        hi *= 2.0;
        if hi > 1e12 {
            break;
        }
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if zcdp_epsilon(mid, delta)? <= eps {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

fn check_conversion_args(rho: f64, delta: f64) -> Result<(), DpError> {
    if !rho.is_finite() || rho < 0.0 {
        return Err(DpError::InvalidScale(rho));
    }
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(DpError::InvalidDelta(delta));
    }
    Ok(())
}

/// One recorded rho spend.
#[derive(Clone, Debug, PartialEq)]
pub struct RhoSpend {
    /// Label for diagnostics (e.g. `"continual@17"`).
    pub label: String,
    /// The spend's rho.
    pub rho: f64,
}

/// A rho-denominated privacy ledger: the zCDP sibling of
/// [`Accountant`](crate::Accountant). rho adds linearly under
/// composition, so the ledger is a running sum with an optional cap;
/// [`epsilon_at`](Self::epsilon_at) reports the spend in `(eps, delta)`
/// terms through the tight conversion.
#[derive(Clone, Debug)]
pub struct ZcdpAccountant {
    budget: Option<f64>,
    spends: Vec<RhoSpend>,
}

impl ZcdpAccountant {
    /// An unlimited ledger (tracks but never refuses).
    pub fn unbounded() -> Self {
        ZcdpAccountant {
            budget: None,
            spends: Vec::new(),
        }
    }

    /// A ledger enforcing a total rho budget.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidScale`] unless `rho` is positive and
    /// finite.
    pub fn with_budget(rho: f64) -> Result<Self, DpError> {
        if !rho.is_finite() || rho <= 0.0 {
            return Err(DpError::InvalidScale(rho));
        }
        Ok(ZcdpAccountant {
            budget: Some(rho),
            spends: Vec::new(),
        })
    }

    /// Checks whether a prospective spend fits the budget **without**
    /// recording it.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidScale`] for a negative or non-finite
    /// rho, or [`DpError::InvalidComposition`] if the spend would exceed
    /// the budget.
    pub fn check(&self, rho: f64) -> Result<(), DpError> {
        if !rho.is_finite() || rho < 0.0 {
            return Err(DpError::InvalidScale(rho));
        }
        let cur = self.total_rho();
        if let Some(budget) = self.budget {
            if cur + rho > budget + 1e-12 {
                return Err(DpError::InvalidComposition(format!(
                    "rho spend {rho} would exceed budget {budget}; already spent {cur}"
                )));
            }
        }
        Ok(())
    }

    /// Records a spend.
    ///
    /// # Errors
    /// Same as [`check`](Self::check); a rejected spend is not recorded.
    pub fn spend(&mut self, label: impl Into<String>, rho: f64) -> Result<(), DpError> {
        self.check(rho)?;
        self.spends.push(RhoSpend {
            label: label.into(),
            rho,
        });
        Ok(())
    }

    /// Total rho spent so far.
    pub fn total_rho(&self) -> f64 {
        self.spends.iter().map(|s| s.rho).sum()
    }

    /// Remaining rho, or `None` for an unbounded ledger.
    pub fn remaining_rho(&self) -> Option<f64> {
        self.budget.map(|b| (b - self.total_rho()).max(0.0))
    }

    /// The cumulative spend expressed as an epsilon at `delta`, through
    /// the tight conversion.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidDelta`] for delta outside `(0, 1)`.
    pub fn epsilon_at(&self, delta: f64) -> Result<f64, DpError> {
        zcdp_epsilon(self.total_rho(), delta)
    }

    /// The recorded spends, in order.
    pub fn spends(&self) -> &[RhoSpend] {
        &self.spends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_rho_sigma_invert() {
        let rho = gaussian_rho(2.0, 4.0).unwrap();
        let sigma = gaussian_sigma(2.0, rho).unwrap();
        assert!((sigma - 4.0).abs() < 1e-12);
        assert!(gaussian_rho(0.0, 1.0).is_err());
        assert!(gaussian_sigma(1.0, -1.0).is_err());
    }

    #[test]
    fn tight_never_exceeds_classic() {
        for &rho in &[1e-4, 0.01, 0.1, 0.5, 2.0, 10.0] {
            for &delta in &[1e-12, 1e-9, 1e-6, 1e-3] {
                let tight = zcdp_epsilon(rho, delta).unwrap();
                let classic = zcdp_epsilon_classic(rho, delta).unwrap();
                assert!(
                    tight <= classic + 1e-9,
                    "rho={rho} delta={delta}: tight {tight} > classic {classic}"
                );
                assert!(tight >= 0.0);
            }
        }
    }

    #[test]
    fn conversion_monotone_in_rho() {
        let delta = 1e-6;
        let mut prev = 0.0;
        for i in 1..=50 {
            let rho = i as f64 * 0.05;
            let eps = zcdp_epsilon(rho, delta).unwrap();
            assert!(eps >= prev - 1e-9, "rho={rho}: {eps} < {prev}");
            prev = eps;
        }
    }

    #[test]
    fn zero_rho_is_free() {
        assert_eq!(zcdp_epsilon(0.0, 1e-6).unwrap(), 0.0);
        assert_eq!(zcdp_epsilon_classic(0.0, 1e-6).unwrap(), 0.0);
    }

    #[test]
    fn invalid_args_rejected() {
        assert!(zcdp_epsilon(-0.1, 1e-6).is_err());
        assert!(zcdp_epsilon(0.1, 0.0).is_err());
        assert!(zcdp_epsilon(0.1, 1.0).is_err());
        assert!(zcdp_epsilon(f64::NAN, 1e-6).is_err());
        assert!(max_rho_for_epsilon(0.0, 1e-6).is_err());
        assert!(max_rho_for_epsilon(1.0, 0.0).is_err());
    }

    #[test]
    fn inverse_round_trips() {
        for &eps in &[0.1, 1.0, 4.0] {
            for &delta in &[1e-9, 1e-6] {
                let rho = max_rho_for_epsilon(eps, delta).unwrap();
                let back = zcdp_epsilon(rho, delta).unwrap();
                assert!(back <= eps + 1e-6, "eps={eps}: back-converted {back}");
                // Not wastefully loose: slightly more rho would overshoot.
                let over = zcdp_epsilon(rho * 1.01 + 1e-9, delta).unwrap();
                assert!(over >= eps - 1e-6, "eps={eps}: inverse too small");
            }
        }
    }

    #[test]
    fn accountant_tracks_and_enforces() {
        let mut a = ZcdpAccountant::with_budget(1.0).unwrap();
        a.spend("first", 0.4).unwrap();
        a.spend("second", 0.6).unwrap();
        assert!((a.total_rho() - 1.0).abs() < 1e-12);
        assert!(a.remaining_rho().unwrap().abs() < 1e-9);
        let err = a.spend("over", 0.1).unwrap_err();
        assert!(matches!(err, DpError::InvalidComposition(_)));
        assert_eq!(a.spends().len(), 2);
        assert_eq!(a.spends()[0].label, "first");
    }

    #[test]
    fn unbounded_accountant_never_refuses() {
        let mut a = ZcdpAccountant::unbounded();
        for i in 0..100 {
            a.spend(format!("s{i}"), 1.0).unwrap();
        }
        assert_eq!(a.remaining_rho(), None);
        let eps = a.epsilon_at(1e-6).unwrap();
        assert!(eps > 0.0);
    }

    #[test]
    fn accountant_rejects_bad_inputs() {
        assert!(ZcdpAccountant::with_budget(0.0).is_err());
        assert!(ZcdpAccountant::with_budget(f64::NAN).is_err());
        let mut a = ZcdpAccountant::unbounded();
        assert!(a.spend("bad", -1.0).is_err());
        assert!(a.spend("bad", f64::INFINITY).is_err());
    }
}
