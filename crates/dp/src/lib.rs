//! # privpath-dp — differential-privacy substrate
//!
//! The probability and accounting layer beneath the paper's mechanisms:
//!
//! * [`Laplace`] — the Laplace distribution (Definition 3.1), sampled from
//!   scratch via inverse CDF (the `rand_distr` crate is deliberately not
//!   used; see DESIGN.md).
//! * [`NoiseSource`] — the seam through which every mechanism draws noise.
//!   [`RngNoise`] is the production source; [`ZeroNoise`] turns any
//!   mechanism into its exact counterpart for decomposition tests;
//!   [`RecordingNoise`] audits the number and scale of draws against the
//!   privacy analysis.
//! * [`laplace_mechanism`] — the Laplace mechanism for vector queries
//!   (Lemma 3.2).
//! * [`Epsilon`] / [`Delta`] — validated privacy parameters.
//! * [`composition`] — basic (Lemma 3.3) and advanced (Lemma 3.4)
//!   composition, including the numeric inverse needed by Theorem 4.5.
//! * [`Accountant`] — a privacy-budget ledger.
//! * [`concentration`] — Lemma 3.1 (\[CSS10\]) bounds on sums of Laplace
//!   variables, and the single-variable tail.
//! * [`calibration`] — the inverse direction: solve a closed-form accuracy
//!   bound for the noise scale or the smallest epsilon meeting a target
//!   `(alpha, gamma)` accuracy contract.
//! * [`randomized_response`] — Warner's mechanism, whose optimality
//!   (Lemma 5.3) underpins the reconstruction lower bounds.
//! * [`Gaussian`] / [`zcdp`] — the Gaussian mechanism and
//!   zero-concentrated-DP accounting ([`ZcdpAccountant`], tight
//!   zCDP-to-`(eps, delta)` conversion) for workloads where pure-DP
//!   composition is too loose.
//! * [`continual`] — the binary-tree composer ([`TreeComposer`]) for
//!   continual release: `T` stream updates at `O(polylog T)` total
//!   budget instead of `Theta(T)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accountant;
pub mod calibration;
pub mod composition;
pub mod concentration;
pub mod continual;
mod error;
mod gaussian;
mod laplace;
mod mechanism;
mod noise;
mod params;
pub mod randomized_response;
pub mod zcdp;

pub use accountant::{Accountant, PrivacySpend};
pub use continual::TreeComposer;
pub use error::DpError;
pub use gaussian::Gaussian;
pub use laplace::Laplace;
pub use mechanism::{laplace_mechanism, laplace_mechanism_scalar};
pub use noise::{NoiseSource, RecordingNoise, RngNoise, ZeroNoise};
pub use params::{Delta, Epsilon};
pub use zcdp::ZcdpAccountant;
