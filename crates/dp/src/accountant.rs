//! A privacy-budget ledger for compositions of releases.

use crate::{Delta, DpError, Epsilon};

/// One recorded release.
#[derive(Clone, Debug, PartialEq)]
pub struct PrivacySpend {
    /// Label for diagnostics (e.g. `"tree-distances"`).
    pub label: String,
    /// The release's epsilon.
    pub eps: f64,
    /// The release's delta.
    pub delta: f64,
}

/// Tracks the cumulative `(eps, delta)` spent by a sequence of releases
/// under basic composition (Lemma 3.3), optionally enforcing a budget.
///
/// The paper's mechanisms are all "one-shot" (a single release answers all
/// queries), but applications composing several releases — e.g. a shortest
/// path release *and* a tree-distance release on the same weights — need
/// exactly this bookkeeping.
#[derive(Clone, Debug)]
pub struct Accountant {
    budget: Option<(f64, f64)>,
    spends: Vec<PrivacySpend>,
}

impl Accountant {
    /// An unlimited ledger (tracks but never refuses).
    pub fn unbounded() -> Self {
        Accountant {
            budget: None,
            spends: Vec::new(),
        }
    }

    /// A ledger enforcing a total `(eps, delta)` budget.
    pub fn with_budget(eps: Epsilon, delta: Delta) -> Self {
        Accountant {
            budget: Some((eps.value(), delta.value())),
            spends: Vec::new(),
        }
    }

    /// Checks whether a prospective spend fits the budget **without**
    /// recording it. Callers that must avoid drawing noise for releases
    /// they cannot afford (e.g. the release engine) check first, run the
    /// mechanism, then [`spend`](Self::spend).
    ///
    /// # Errors
    /// Returns [`DpError::InvalidComposition`] if the spend would exceed
    /// the budget.
    pub fn check(&self, eps: Epsilon, delta: Delta) -> Result<(), DpError> {
        let (cur_e, cur_d) = self.total();
        let (new_e, new_d) = (cur_e + eps.value(), cur_d + delta.value());
        if let Some((be, bd)) = self.budget {
            if new_e > be + 1e-12 || new_d > bd + 1e-15 {
                return Err(DpError::InvalidComposition(format!(
                    "spend ({}, {}) would exceed budget ({be}, {bd}); already spent ({cur_e}, {cur_d})",
                    eps.value(),
                    delta.value(),
                )));
            }
        }
        Ok(())
    }

    /// Records a release.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidComposition`] if the spend would exceed
    /// the budget (the spend is **not** recorded in that case).
    pub fn spend(
        &mut self,
        label: impl Into<String>,
        eps: Epsilon,
        delta: Delta,
    ) -> Result<(), DpError> {
        self.check(eps, delta)?;
        self.spends.push(PrivacySpend {
            label: label.into(),
            eps: eps.value(),
            delta: delta.value(),
        });
        Ok(())
    }

    /// Total `(eps, delta)` spent so far under basic composition.
    pub fn total(&self) -> (f64, f64) {
        self.spends
            .iter()
            .fold((0.0, 0.0), |(e, d), s| (e + s.eps, d + s.delta))
    }

    /// Remaining `(eps, delta)`, or `None` for an unbounded ledger.
    pub fn remaining(&self) -> Option<(f64, f64)> {
        self.budget.map(|(be, bd)| {
            let (e, d) = self.total();
            ((be - e).max(0.0), (bd - d).max(0.0))
        })
    }

    /// The recorded spends, in order.
    pub fn spends(&self) -> &[PrivacySpend] {
        &self.spends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn unbounded_tracks() {
        let mut a = Accountant::unbounded();
        a.spend("first", eps(0.5), Delta::zero()).unwrap();
        a.spend("second", eps(0.7), Delta::new(1e-6).unwrap())
            .unwrap();
        let (e, d) = a.total();
        assert!((e - 1.2).abs() < 1e-12);
        assert!((d - 1e-6).abs() < 1e-15);
        assert_eq!(a.remaining(), None);
        assert_eq!(a.spends().len(), 2);
        assert_eq!(a.spends()[0].label, "first");
    }

    #[test]
    fn budget_enforced() {
        let mut a = Accountant::with_budget(eps(1.0), Delta::zero());
        a.spend("ok", eps(0.6), Delta::zero()).unwrap();
        let err = a.spend("too much", eps(0.6), Delta::zero()).unwrap_err();
        assert!(matches!(err, DpError::InvalidComposition(_)));
        // Rejected spend not recorded.
        assert_eq!(a.spends().len(), 1);
        let (re, _) = a.remaining().unwrap();
        assert!((re - 0.4).abs() < 1e-12);
    }

    #[test]
    fn delta_budget_enforced() {
        let mut a = Accountant::with_budget(eps(10.0), Delta::new(1e-6).unwrap());
        a.spend("ok", eps(1.0), Delta::new(5e-7).unwrap()).unwrap();
        assert!(a.spend("bad", eps(1.0), Delta::new(9e-7).unwrap()).is_err());
    }

    #[test]
    fn check_does_not_record() {
        let mut a = Accountant::with_budget(eps(1.0), Delta::zero());
        a.check(eps(0.8), Delta::zero()).unwrap();
        assert!(a.check(eps(1.2), Delta::zero()).is_err());
        assert_eq!(a.spends().len(), 0);
        a.spend("real", eps(0.8), Delta::zero()).unwrap();
        assert!(a.check(eps(0.3), Delta::zero()).is_err());
        assert!(a.check(eps(0.2), Delta::zero()).is_ok());
    }

    #[test]
    fn exact_budget_allowed() {
        let mut a = Accountant::with_budget(eps(1.0), Delta::zero());
        a.spend("a", eps(0.5), Delta::zero()).unwrap();
        a.spend("b", eps(0.5), Delta::zero()).unwrap();
        let (re, _) = a.remaining().unwrap();
        assert!(re.abs() < 1e-9);
    }
}
