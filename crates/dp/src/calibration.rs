//! Inverse-bound solvers: given a target accuracy, find the noise scale
//! or privacy parameter that achieves it.
//!
//! Every accuracy theorem in the paper is a closed-form bound that is
//! nonincreasing in the privacy parameter `eps` (more budget, less
//! noise). Calibration inverts that map: *"what is the smallest `eps`
//! whose bound meets a target `(alpha, gamma)`?"* The two closed-form
//! inverters below cover the Lemma 3.1 sum bound and the union bound of
//! [`crate::concentration`]; [`solve_min_eps`] handles any bound shape by
//! a linear-guess-then-bisection hybrid (most paper bounds are exactly
//! `C / eps`, so the linear guess terminates in a handful of
//! evaluations; bounds with eps-dependent structure — advanced
//! composition, Theorem 4.3's balanced `k` — fall back to bisection).

use crate::concentration::{laplace_sum_bound, laplace_union_bound};
use crate::DpError;

/// The scale `b` at which the Lemma 3.1 sum bound for `t` terms equals
/// `alpha` at confidence `gamma`: inverts
/// [`laplace_sum_bound`] in `b` (the bound is linear in `b`).
///
/// # Errors
/// [`DpError::InvalidScale`] for a nonpositive/nonfinite `alpha`;
/// [`DpError::InvalidProbability`] for `gamma` outside `(0, 1)`;
/// [`DpError::InvalidComposition`] for `t == 0` (the bound is identically
/// zero and has no inverse).
pub fn invert_laplace_sum_bound(alpha: f64, t: usize, gamma: f64) -> Result<f64, DpError> {
    if !alpha.is_finite() || alpha <= 0.0 {
        return Err(DpError::InvalidScale(alpha));
    }
    if t == 0 {
        return Err(DpError::InvalidComposition(
            "sum bound over zero terms has no inverse".into(),
        ));
    }
    // Evaluate at b = 1 and scale: bound(b) = b * bound(1).
    let unit = laplace_sum_bound(1.0, t, gamma)?;
    Ok(alpha / unit)
}

/// The scale `b` at which the union bound over `count` variables equals
/// `alpha` at confidence `gamma`: inverts [`laplace_union_bound`] in `b`.
///
/// # Errors
/// [`DpError::InvalidScale`] for a nonpositive/nonfinite `alpha`; the
/// domains of [`laplace_union_bound`] otherwise. Additionally
/// [`DpError::InvalidComposition`] when `ln(count / gamma) <= 0` (i.e.
/// `gamma >= count`): every magnitude bound holds trivially and no finite
/// scale is pinned down.
pub fn invert_laplace_union_bound(alpha: f64, count: usize, gamma: f64) -> Result<f64, DpError> {
    if !alpha.is_finite() || alpha <= 0.0 {
        return Err(DpError::InvalidScale(alpha));
    }
    let unit = laplace_union_bound(1.0, count, gamma)?;
    if unit <= 0.0 {
        return Err(DpError::InvalidComposition(format!(
            "union bound over {count} variables at gamma {gamma} is degenerate"
        )));
    }
    Ok(alpha / unit)
}

/// The scale `b` at which a *shifted* union bound — a noise-independent
/// error floor plus the union bound over `count` variables — equals
/// `alpha` at confidence `gamma`: solves
/// `floor + b * ln(count / gamma) = alpha` for `b`. This is the closed
/// form behind detour-plus-noise mechanisms (the bounded-weight release
/// and the hierarchical shortcut ladder, whose floor is `2 k M`).
///
/// # Errors
/// [`DpError::InvalidScale`] for a nonpositive/nonfinite `alpha`, a
/// negative/nonfinite `floor`, or `alpha <= floor` (the target sits at
/// or below the noise-independent floor — no scale attains it); the
/// domains of [`laplace_union_bound`] otherwise, and
/// [`DpError::InvalidComposition`] when the union bound is degenerate
/// (`gamma >= count`).
pub fn invert_shifted_union_bound(
    alpha: f64,
    floor: f64,
    count: usize,
    gamma: f64,
) -> Result<f64, DpError> {
    if !floor.is_finite() || floor < 0.0 {
        return Err(DpError::InvalidScale(floor));
    }
    if !alpha.is_finite() || alpha <= floor {
        return Err(DpError::InvalidScale(alpha));
    }
    invert_laplace_union_bound(alpha - floor, count, gamma)
}

/// The result of a [`solve_min_eps`] calibration: the epsilon found and
/// how many bound evaluations the solver spent (the regression signal the
/// calibration micro-bench watches).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// The smallest epsilon found whose bound meets the target.
    pub eps: f64,
    /// Number of times the bound function was evaluated.
    pub evaluations: usize,
}

/// Relative slack accepted by the linear fast path before falling back to
/// bisection.
const LINEAR_SLACK: f64 = 1e-9;

/// Finds the smallest `eps > 0` with `bound(eps) <= target_alpha`, for a
/// bound function that is nonincreasing in `eps`.
///
/// `bound` returns `None` where it is undefined (e.g. an invalid
/// parameter combination); the solver treats such points as
/// unsatisfiable. Strategy:
///
/// 1. **Linear guess.** Most paper bounds are exactly `C / eps`; from one
///    evaluation at `eps = 1` the exact answer is `C / alpha`. The guess
///    is verified, so a non-linear bound cannot be silently
///    mis-calibrated.
/// 2. **Bracket and bisect.** Otherwise expand a bracket geometrically
///    (up to `1e15`) and bisect, returning the upper end so the result
///    always satisfies `bound(eps) <= target_alpha`.
///
/// Returns `None` when no `eps` in `(0, 1e15]` meets the target — e.g. a
/// bounded-weight detour term `2 k M` already exceeding `alpha`.
pub fn solve_min_eps(bound: impl Fn(f64) -> Option<f64>, target_alpha: f64) -> Option<Calibration> {
    let result = solve_min_eps_inner(bound, target_alpha);
    let reg = privpath_obs::MetricRegistry::global();
    reg.counter("dp_calibration_solves_total").inc();
    if let Some(cal) = &result {
        reg.counter("dp_calibration_evaluations_total")
            .inc_by(cal.evaluations as u64);
    }
    result
}

fn solve_min_eps_inner(
    bound: impl Fn(f64) -> Option<f64>,
    target_alpha: f64,
) -> Option<Calibration> {
    if !target_alpha.is_finite() || target_alpha <= 0.0 {
        return None;
    }
    let mut evaluations = 0usize;
    let mut eval = |e: f64| -> Option<f64> {
        evaluations += 1;
        let b = bound(e)?;
        b.is_finite().then_some(b)
    };

    // Linear fast path: if bound(e) = C / e, then e* = bound(1) / alpha.
    if let Some(at_one) = eval(1.0) {
        if at_one > 0.0 {
            let guess = at_one / target_alpha;
            if guess.is_finite() && guess > 0.0 {
                if let Some(at_guess) = eval(guess) {
                    let rel = (at_guess - target_alpha).abs() / target_alpha;
                    if at_guess <= target_alpha && rel <= LINEAR_SLACK {
                        return Some(Calibration {
                            eps: guess,
                            evaluations,
                        });
                    }
                }
            }
        } else {
            // The bound is already <= 0 <= alpha at eps = 1: walk down.
            // (No paper bound does this, but stay total.)
            let mut lo = 1.0;
            while lo > 1e-15 {
                let next = lo / 2.0;
                match eval(next) {
                    Some(b) if b <= target_alpha => lo = next,
                    _ => break,
                }
            }
            return Some(Calibration {
                eps: lo,
                evaluations,
            });
        }
    }

    // Bracket: hi with bound(hi) <= alpha, lo with bound(lo) > alpha.
    let mut hi = 1.0;
    let mut tries = 0;
    while tries < 60 {
        match eval(hi) {
            Some(b) if b <= target_alpha => break,
            _ => {
                hi *= 2.0;
                tries += 1;
            }
        }
    }
    if tries == 60 || hi > 1e15 {
        return None;
    }
    let mut lo = hi / 2.0;
    // Shrink lo until the bound there exceeds the target (or lo hits the
    // floor, meaning arbitrarily small eps already meets it).
    while lo > 1e-15 {
        match eval(lo) {
            Some(b) if b <= target_alpha => {
                hi = lo;
                lo /= 2.0;
            }
            _ => break,
        }
    }

    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid == lo || mid == hi {
            break;
        }
        match eval(mid) {
            Some(b) if b <= target_alpha => hi = mid,
            _ => lo = mid,
        }
    }
    Some(Calibration {
        eps: hi,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_bound_inverse_round_trips() {
        let alpha = 3.7;
        let b = invert_laplace_sum_bound(alpha, 12, 0.05).unwrap();
        let back = laplace_sum_bound(b, 12, 0.05).unwrap();
        assert!((back - alpha).abs() < 1e-12, "{back} vs {alpha}");
    }

    #[test]
    fn union_bound_inverse_round_trips() {
        let alpha = 0.9;
        let b = invert_laplace_union_bound(alpha, 200, 0.1).unwrap();
        let back = laplace_union_bound(b, 200, 0.1).unwrap();
        assert!((back - alpha).abs() < 1e-12);
    }

    #[test]
    fn shifted_union_bound_inverse_round_trips() {
        let (alpha, floor) = (10.0, 4.0);
        let b = invert_shifted_union_bound(alpha, floor, 120, 0.05).unwrap();
        let back = floor + laplace_union_bound(b, 120, 0.05).unwrap();
        assert!((back - alpha).abs() < 1e-12, "{back} vs {alpha}");
        // A zero floor degenerates to the plain union-bound inverse.
        assert_eq!(
            invert_shifted_union_bound(3.0, 0.0, 50, 0.1).unwrap(),
            invert_laplace_union_bound(3.0, 50, 0.1).unwrap()
        );
        // Targets at or below the floor have no solution.
        assert!(invert_shifted_union_bound(4.0, 4.0, 120, 0.05).is_err());
        assert!(invert_shifted_union_bound(3.0, 4.0, 120, 0.05).is_err());
        assert!(invert_shifted_union_bound(1.0, -1.0, 120, 0.05).is_err());
    }

    #[test]
    fn inverse_domains_validated() {
        assert!(invert_laplace_sum_bound(0.0, 5, 0.1).is_err());
        assert!(invert_laplace_sum_bound(1.0, 0, 0.1).is_err());
        assert!(invert_laplace_sum_bound(1.0, 5, 1.5).is_err());
        assert!(invert_laplace_union_bound(-1.0, 5, 0.1).is_err());
        assert!(invert_laplace_union_bound(1.0, 0, 0.1).is_err());
    }

    #[test]
    fn linear_bound_solves_in_two_evaluations() {
        let cal = solve_min_eps(|e| Some(10.0 / e), 0.5).unwrap();
        assert!((cal.eps - 20.0).abs() / 20.0 < 1e-9);
        assert_eq!(cal.evaluations, 2);
        assert!(10.0 / cal.eps <= 0.5 + 1e-12);
    }

    #[test]
    fn nonlinear_bound_bisects_to_the_boundary() {
        // bound(e) = 4 + 10/e: floor of 4, so alpha = 5 needs eps = 10.
        let cal = solve_min_eps(|e| Some(4.0 + 10.0 / e), 5.0).unwrap();
        assert!((cal.eps - 10.0).abs() / 10.0 < 1e-9, "eps {}", cal.eps);
        assert!(4.0 + 10.0 / cal.eps <= 5.0 + 1e-9);
    }

    #[test]
    fn unattainable_target_returns_none() {
        // Floor of 4 exceeds the target 3 at every eps.
        assert!(solve_min_eps(|e| Some(4.0 + 1.0 / e), 3.0).is_none());
        assert!(solve_min_eps(|_| None, 1.0).is_none());
        assert!(solve_min_eps(|e| Some(1.0 / e), 0.0).is_none());
        assert!(solve_min_eps(|e| Some(1.0 / e), f64::NAN).is_none());
    }

    #[test]
    fn stepwise_bound_still_lands_in_the_feasible_region() {
        // A stepped bound (like auto-k bounded-weight): not linear, has
        // plateaus; the solver must still return a satisfying eps.
        let bound = |e: f64| {
            let k = if e < 2.0 { 3.0 } else { 1.0 };
            Some(2.0 * k + 5.0 / e)
        };
        let cal = solve_min_eps(bound, 4.0).unwrap();
        assert!(bound(cal.eps).unwrap() <= 4.0 + 1e-9);
    }
}
