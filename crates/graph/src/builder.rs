//! Construction of [`Topology`] values.

use crate::{EdgeId, GraphError, NodeId, Topology};

/// Incremental builder for [`Topology`].
///
/// Edge ids are assigned densely in insertion order, which generators rely
/// on to document positional weight layouts.
///
/// ```
/// use privpath_graph::{Topology, NodeId};
/// let mut b = Topology::builder(2);
/// let e = b.add_edge(NodeId::new(0), NodeId::new(1));
/// assert_eq!(e.index(), 0);
/// let topo = b.build();
/// assert_eq!(topo.num_edges(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    num_nodes: u32,
    directed: bool,
    endpoints: Vec<(NodeId, NodeId)>,
    /// Adjacency slots the edges added so far will occupy in the CSR arrays
    /// (an undirected non-loop edge occupies two). Tracked in `u64` so the
    /// builder can reject growth past `u32::MAX` *before* the CSR offsets —
    /// which are `u32` — would silently wrap during `build`.
    adj_slots: u64,
}

impl TopologyBuilder {
    /// Creates a builder for an undirected topology with `num_nodes`
    /// vertices.
    ///
    /// # Panics
    /// Panics if `num_nodes` exceeds `u32::MAX`.
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= u32::MAX as usize,
            "num_nodes {num_nodes} exceeds u32::MAX"
        );
        TopologyBuilder {
            num_nodes: num_nodes as u32,
            directed: false,
            endpoints: Vec::new(),
            adj_slots: 0,
        }
    }

    /// Creates a builder for a directed topology with `num_nodes` vertices.
    pub fn new_directed(num_nodes: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.directed = true;
        b
    }

    /// Pre-reserves capacity for `additional` further edges.
    ///
    /// Streaming loaders that know the declared edge count up front (the
    /// DIMACS `p sp n m` header, for one) use this to build million-edge
    /// topologies without incremental reallocation.
    pub fn reserve_edges(&mut self, additional: usize) {
        self.endpoints.reserve(additional);
    }

    /// Number of vertices the built topology will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Adds an edge between `u` and `v` and returns its id.
    ///
    /// Parallel edges and self-loops are allowed. For infallible internal
    /// construction; use [`try_add_edge`](Self::try_add_edge) for untrusted
    /// input.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        self.try_add_edge(u, v)
            .expect("edge endpoints out of range")
    }

    /// Adds an edge between `u` and `v`, validating the endpoints.
    ///
    /// # Errors
    /// * [`GraphError::NodeOutOfRange`] if either endpoint is not a valid
    ///   node id.
    /// * [`GraphError::TooManyEdges`] if the edge would overflow the `u32`
    ///   CSR index space: edge ids are `u32`, and the adjacency offset
    ///   arrays are `u32` as well, so the *slot* total (two per undirected
    ///   non-loop edge) must also stay within `u32::MAX`.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let n = self.num_nodes as usize;
        for node in [u, v] {
            if node.index() >= n {
                return Err(GraphError::NodeOutOfRange { node, num_nodes: n });
            }
        }
        let new_slots = if self.directed || u == v { 1 } else { 2 };
        let slots = self.adj_slots + new_slots;
        if self.endpoints.len() >= u32::MAX as usize || slots > u64::from(u32::MAX) {
            return Err(GraphError::TooManyEdges {
                edges: self.endpoints.len(),
                slots,
            });
        }
        let id = EdgeId::new(self.endpoints.len());
        self.endpoints.push((u, v));
        self.adj_slots = slots;
        Ok(id)
    }

    /// Finalizes the builder into an immutable [`Topology`].
    pub fn build(self) -> Topology {
        Topology::from_builder(self.num_nodes, self.directed, self.endpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_ids_are_dense_and_ordered() {
        let mut b = TopologyBuilder::new(4);
        for i in 0..3 {
            let e = b.add_edge(NodeId::new(i), NodeId::new(i + 1));
            assert_eq!(e.index(), i);
        }
        assert_eq!(b.num_edges(), 3);
        let t = b.build();
        assert_eq!(
            t.endpoints(EdgeId::new(1)),
            (NodeId::new(1), NodeId::new(2))
        );
    }

    #[test]
    fn try_add_edge_rejects_out_of_range() {
        let mut b = TopologyBuilder::new(2);
        let err = b.try_add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
        assert_eq!(b.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_panics_out_of_range() {
        let mut b = TopologyBuilder::new(1);
        b.add_edge(NodeId::new(0), NodeId::new(1));
    }

    /// Regression: slot accounting at the `u32::MAX` boundary. An undirected
    /// non-loop edge needs two adjacency slots, so with `u32::MAX - 1` slots
    /// already committed it must be rejected while a self-loop (one slot)
    /// still fits. Allocating 2^32 real edges is infeasible in a test, so
    /// the private counter is set directly.
    #[test]
    fn undirected_edge_rejected_at_slot_boundary() {
        let mut b = TopologyBuilder::new(2);
        b.adj_slots = u64::from(u32::MAX) - 1;
        let err = b.try_add_edge(NodeId::new(0), NodeId::new(1)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::TooManyEdges {
                slots,
                ..
            } if slots == u64::from(u32::MAX) + 1
        ));
        assert_eq!(b.num_edges(), 0);
        // A self-loop takes the one remaining slot and lands exactly on the
        // u32::MAX total.
        assert!(b.try_add_edge(NodeId::new(0), NodeId::new(0)).is_ok());
        assert_eq!(b.adj_slots, u64::from(u32::MAX));
        // The next edge of any shape is over the line.
        assert!(matches!(
            b.try_add_edge(NodeId::new(0), NodeId::new(0)).unwrap_err(),
            GraphError::TooManyEdges { .. }
        ));
    }

    #[test]
    fn directed_edge_takes_one_slot() {
        let mut b = TopologyBuilder::new_directed(2);
        b.adj_slots = u64::from(u32::MAX) - 1;
        assert!(b.try_add_edge(NodeId::new(0), NodeId::new(1)).is_ok());
        assert!(matches!(
            b.try_add_edge(NodeId::new(1), NodeId::new(0)).unwrap_err(),
            GraphError::TooManyEdges { .. }
        ));
    }

    #[test]
    fn slot_accounting_tracks_edge_shapes() {
        let mut b = TopologyBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1)); // 2 slots
        b.add_edge(NodeId::new(2), NodeId::new(2)); // self-loop: 1 slot
        assert_eq!(b.adj_slots, 3);
        let mut d = TopologyBuilder::new_directed(3);
        d.add_edge(NodeId::new(0), NodeId::new(1)); // 1 slot
        d.add_edge(NodeId::new(1), NodeId::new(2)); // 1 slot
        assert_eq!(d.adj_slots, 2);
    }
}
