//! Construction of [`Topology`] values.

use crate::{EdgeId, GraphError, NodeId, Topology};

/// Incremental builder for [`Topology`].
///
/// Edge ids are assigned densely in insertion order, which generators rely
/// on to document positional weight layouts.
///
/// ```
/// use privpath_graph::{Topology, NodeId};
/// let mut b = Topology::builder(2);
/// let e = b.add_edge(NodeId::new(0), NodeId::new(1));
/// assert_eq!(e.index(), 0);
/// let topo = b.build();
/// assert_eq!(topo.num_edges(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    num_nodes: u32,
    directed: bool,
    endpoints: Vec<(NodeId, NodeId)>,
}

impl TopologyBuilder {
    /// Creates a builder for an undirected topology with `num_nodes`
    /// vertices.
    ///
    /// # Panics
    /// Panics if `num_nodes` exceeds `u32::MAX`.
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= u32::MAX as usize,
            "num_nodes {num_nodes} exceeds u32::MAX"
        );
        TopologyBuilder {
            num_nodes: num_nodes as u32,
            directed: false,
            endpoints: Vec::new(),
        }
    }

    /// Creates a builder for a directed topology with `num_nodes` vertices.
    pub fn new_directed(num_nodes: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.directed = true;
        b
    }

    /// Pre-reserves capacity for `additional` further edges.
    ///
    /// Streaming loaders that know the declared edge count up front (the
    /// DIMACS `p sp n m` header, for one) use this to build million-edge
    /// topologies without incremental reallocation.
    pub fn reserve_edges(&mut self, additional: usize) {
        self.endpoints.reserve(additional);
    }

    /// Number of vertices the built topology will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Adds an edge between `u` and `v` and returns its id.
    ///
    /// Parallel edges and self-loops are allowed. For infallible internal
    /// construction; use [`try_add_edge`](Self::try_add_edge) for untrusted
    /// input.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        self.try_add_edge(u, v)
            .expect("edge endpoints out of range")
    }

    /// Adds an edge between `u` and `v`, validating the endpoints.
    ///
    /// # Errors
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is not a
    /// valid node id.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let n = self.num_nodes as usize;
        for node in [u, v] {
            if node.index() >= n {
                return Err(GraphError::NodeOutOfRange { node, num_nodes: n });
            }
        }
        let id = EdgeId::new(self.endpoints.len());
        self.endpoints.push((u, v));
        Ok(id)
    }

    /// Finalizes the builder into an immutable [`Topology`].
    pub fn build(self) -> Topology {
        Topology::from_builder(self.num_nodes, self.directed, self.endpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_ids_are_dense_and_ordered() {
        let mut b = TopologyBuilder::new(4);
        for i in 0..3 {
            let e = b.add_edge(NodeId::new(i), NodeId::new(i + 1));
            assert_eq!(e.index(), i);
        }
        assert_eq!(b.num_edges(), 3);
        let t = b.build();
        assert_eq!(
            t.endpoints(EdgeId::new(1)),
            (NodeId::new(1), NodeId::new(2))
        );
    }

    #[test]
    fn try_add_edge_rejects_out_of_range() {
        let mut b = TopologyBuilder::new(2);
        let err = b.try_add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
        assert_eq!(b.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_panics_out_of_range() {
        let mut b = TopologyBuilder::new(1);
        b.add_edge(NodeId::new(0), NodeId::new(1));
    }
}
