//! Edge weight vectors: the **private** part of the database.

use crate::{EdgeId, GraphError, Path, Topology};
use std::ops::Index;

/// A dense vector of edge weights indexed by [`EdgeId`].
///
/// In the private edge-weight model this is the sensitive database: two
/// weight vectors are *neighboring* when their [`l1_distance`] is at most 1
/// (paper Definition 2.1). `EdgeWeights` enforces finiteness of every entry
/// (weights may be negative — Appendix B permits negative weights for MST
/// and matching — but never NaN or infinite).
///
/// [`l1_distance`]: EdgeWeights::l1_distance
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeWeights {
    w: Vec<f64>,
}

impl EdgeWeights {
    /// Creates a weight vector from raw values.
    ///
    /// # Errors
    /// Returns [`GraphError::NonFiniteWeight`] if any value is NaN or
    /// infinite.
    pub fn new(values: Vec<f64>) -> Result<Self, GraphError> {
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(GraphError::NonFiniteWeight {
                    edge: EdgeId::new(i),
                    value: v,
                });
            }
        }
        Ok(EdgeWeights { w: values })
    }

    /// An all-zero weight vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        EdgeWeights { w: vec![0.0; len] }
    }

    /// A constant weight vector of length `len`.
    ///
    /// # Panics
    /// Panics if `value` is not finite.
    pub fn constant(len: usize, value: f64) -> Self {
        assert!(value.is_finite(), "weight must be finite, got {value}");
        EdgeWeights {
            w: vec![value; len],
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// The weight of edge `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn get(&self, e: EdgeId) -> f64 {
        self.w[e.index()]
    }

    /// Sets the weight of edge `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range or `value` is not finite.
    #[inline]
    pub fn set(&mut self, e: EdgeId, value: f64) {
        assert!(value.is_finite(), "weight must be finite, got {value}");
        self.w[e.index()] = value;
    }

    /// Borrow the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }

    /// Iterates over `(EdgeId, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, f64)> + '_ {
        self.w.iter().enumerate().map(|(i, &v)| (EdgeId::new(i), v))
    }

    /// The `l1` distance `||w - w'||_1` between two weight vectors
    /// (Definition 2.1: vectors are neighboring when this is at most 1).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn l1_distance(&self, other: &EdgeWeights) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "weight vectors must have equal length"
        );
        self.w
            .iter()
            .zip(&other.w)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Sum of all weights (`||w||_1` for nonnegative weights).
    pub fn sum(&self) -> f64 {
        self.w.iter().sum()
    }

    /// Minimum entry, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.w.iter().copied().min_by(f64::total_cmp)
    }

    /// Maximum entry, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.w.iter().copied().max_by(f64::total_cmp)
    }

    /// Whether every entry is `>= 0`.
    pub fn is_nonnegative(&self) -> bool {
        self.w.iter().all(|&v| v >= 0.0)
    }

    /// Whether every entry lies in `[lo, hi]` (the bounded-weight model of
    /// Section 4.2 uses `[0, M]`).
    pub fn within_bounds(&self, lo: f64, hi: f64) -> bool {
        self.w.iter().all(|&v| v >= lo && v <= hi)
    }

    /// Total weight of a path: `w(P) = sum_{e in P} w(e)`.
    ///
    /// # Panics
    /// Panics if the path references an edge out of range.
    pub fn path_weight(&self, path: &Path) -> f64 {
        path.edges().iter().map(|&e| self.get(e)).sum()
    }

    /// Returns a new vector with `f` applied to each weight.
    ///
    /// # Panics
    /// Panics if `f` produces a non-finite value.
    pub fn map(&self, mut f: impl FnMut(EdgeId, f64) -> f64) -> EdgeWeights {
        let w: Vec<f64> = self
            .w
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let out = f(EdgeId::new(i), v);
                assert!(out.is_finite(), "mapped weight must be finite, got {out}");
                out
            })
            .collect();
        EdgeWeights { w }
    }

    /// Returns a copy with every entry clamped to be `>= 0`.
    ///
    /// Used as a post-processing step after adding Laplace noise so that
    /// Dijkstra's nonnegativity precondition holds surely (see DESIGN.md §4).
    pub fn clamp_nonnegative(&self) -> EdgeWeights {
        EdgeWeights {
            w: self.w.iter().map(|&v| v.max(0.0)).collect(),
        }
    }

    /// Returns a copy with a sparse set of `(edge, new weight)` updates
    /// applied — the weight-update entry point live re-release workflows
    /// use when conditions shift on a subset of edges (traffic on some
    /// roads) while the topology stays fixed.
    ///
    /// Later updates to the same edge win; untouched entries are copied
    /// unchanged.
    ///
    /// # Errors
    /// Returns [`GraphError::EdgeOutOfRange`] for an edge outside
    /// `0..len`, or [`GraphError::NonFiniteWeight`] for a NaN/infinite
    /// replacement value. On error, no partial update is observable (the
    /// original vector is untouched).
    pub fn with_updates(&self, updates: &[(EdgeId, f64)]) -> Result<EdgeWeights, GraphError> {
        let mut w = self.w.clone();
        for &(e, value) in updates {
            if e.index() >= w.len() {
                return Err(GraphError::EdgeOutOfRange {
                    edge: e,
                    num_edges: w.len(),
                });
            }
            if !value.is_finite() {
                return Err(GraphError::NonFiniteWeight { edge: e, value });
            }
            w[e.index()] = value;
        }
        Ok(EdgeWeights { w })
    }

    /// Validates that this weight vector matches `topo`'s edge count.
    ///
    /// # Errors
    /// Returns [`GraphError::WeightsLengthMismatch`] on mismatch.
    pub fn validate_for(&self, topo: &Topology) -> Result<(), GraphError> {
        if self.len() == topo.num_edges() {
            Ok(())
        } else {
            Err(GraphError::WeightsLengthMismatch {
                expected: topo.num_edges(),
                got: self.len(),
            })
        }
    }
}

impl Index<EdgeId> for EdgeWeights {
    type Output = f64;

    fn index(&self, e: EdgeId) -> &f64 {
        &self.w[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn new_rejects_non_finite() {
        assert!(EdgeWeights::new(vec![1.0, f64::NAN]).is_err());
        assert!(EdgeWeights::new(vec![f64::INFINITY]).is_err());
        assert!(EdgeWeights::new(vec![1.0, -2.0]).is_ok());
    }

    #[test]
    fn l1_distance_matches_definition() {
        let a = EdgeWeights::new(vec![1.0, 2.0, 0.0]).unwrap();
        let b = EdgeWeights::new(vec![1.5, 1.5, 0.0]).unwrap();
        assert!((a.l1_distance(&b) - 1.0).abs() < 1e-12);
        // Neighboring iff l1 <= 1.
        assert!(a.l1_distance(&b) <= 1.0);
    }

    #[test]
    fn bounds_and_signs() {
        let w = EdgeWeights::new(vec![0.0, 0.5, 1.0]).unwrap();
        assert!(w.is_nonnegative());
        assert!(w.within_bounds(0.0, 1.0));
        assert!(!w.within_bounds(0.0, 0.9));
        assert_eq!(w.min(), Some(0.0));
        assert_eq!(w.max(), Some(1.0));
        assert!((w.sum() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_nonnegative_only_touches_negatives() {
        let w = EdgeWeights::new(vec![-1.0, 0.5]).unwrap();
        let c = w.clamp_nonnegative();
        assert_eq!(c.as_slice(), &[0.0, 0.5]);
    }

    #[test]
    fn path_weight_sums_edges() {
        let mut b = Topology::builder(3);
        let e0 = b.add_edge(NodeId::new(0), NodeId::new(1));
        let e1 = b.add_edge(NodeId::new(1), NodeId::new(2));
        let topo = b.build();
        let w = EdgeWeights::new(vec![1.5, 2.5]).unwrap();
        let p = Path::new(
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            vec![e0, e1],
        );
        assert!((w.path_weight(&p) - 4.0).abs() < 1e-12);
        assert_eq!(topo.num_edges(), 2);
    }

    #[test]
    fn validate_for_checks_length() {
        let mut b = Topology::builder(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        assert!(EdgeWeights::zeros(1).validate_for(&topo).is_ok());
        assert!(matches!(
            EdgeWeights::zeros(2).validate_for(&topo),
            Err(GraphError::WeightsLengthMismatch {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn map_and_index() {
        let w = EdgeWeights::new(vec![1.0, 2.0]).unwrap();
        let doubled = w.map(|_, v| v * 2.0);
        assert_eq!(doubled[EdgeId::new(1)], 4.0);
        assert_eq!(w.iter().count(), 2);
    }
}
