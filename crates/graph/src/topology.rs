//! The public, immutable graph topology.

use crate::builder::TopologyBuilder;
use crate::{EdgeId, GraphError, NodeId};

/// An immutable multigraph topology: the **public** part of the paper's
/// database `(G, w)`.
///
/// * Supports parallel edges (the lower-bound gadgets of Figures 2 and 3 use
///   them) and self-loops (permitted but never useful for shortest paths).
/// * May be undirected (the default) or directed (the shortest-path results
///   of the paper's Section 5 also apply to directed graphs).
/// * Stores adjacency in compressed sparse row (CSR) form for cache-friendly
///   traversal; construction happens once through [`TopologyBuilder`].
///
/// `Topology` deliberately carries **no weights**; see
/// [`EdgeWeights`](crate::EdgeWeights).
#[derive(Clone, Debug)]
pub struct Topology {
    num_nodes: u32,
    directed: bool,
    /// Endpoints of each edge in insertion order. For undirected graphs the
    /// pair order is as given at insertion but carries no meaning.
    endpoints: Vec<(NodeId, NodeId)>,
    /// CSR offsets: `offsets[v]..offsets[v + 1]` indexes the adjacency
    /// arrays for vertex `v`. For undirected graphs each edge appears in
    /// both endpoint lists (once per endpoint for self-loops).
    offsets: Vec<u32>,
    adj_node: Vec<NodeId>,
    adj_edge: Vec<EdgeId>,
}

impl Topology {
    /// Starts building an undirected topology over `num_nodes` vertices.
    pub fn builder(num_nodes: usize) -> TopologyBuilder {
        TopologyBuilder::new(num_nodes)
    }

    /// Starts building a directed topology over `num_nodes` vertices.
    pub fn builder_directed(num_nodes: usize) -> TopologyBuilder {
        TopologyBuilder::new_directed(num_nodes)
    }

    pub(crate) fn from_builder(
        num_nodes: u32,
        directed: bool,
        endpoints: Vec<(NodeId, NodeId)>,
    ) -> Self {
        let n = num_nodes as usize;
        let mut degree = vec![0u32; n];
        for &(u, v) in &endpoints {
            degree[u.index()] += 1;
            if !directed && u != v {
                degree[v.index()] += 1;
            }
        }
        // The builder bounds the slot total by u32::MAX (`TooManyEdges`), so
        // the u64 accumulation below cannot exceed it; the assert keeps the
        // invariant checked rather than silently wrapping if a new
        // construction path ever bypasses the builder.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc64 = 0u64;
        offsets.push(0);
        for d in &degree {
            acc64 += u64::from(*d);
            assert!(
                acc64 <= u64::from(u32::MAX),
                "CSR adjacency slots overflow u32: builder must reject this"
            );
            offsets.push(acc64 as u32);
        }
        let acc = acc64 as u32;
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj_node = vec![NodeId::new(0); acc as usize];
        let mut adj_edge = vec![EdgeId::new(0); acc as usize];
        for (i, &(u, v)) in endpoints.iter().enumerate() {
            let e = EdgeId::new(i);
            let slot = cursor[u.index()] as usize;
            adj_node[slot] = v;
            adj_edge[slot] = e;
            cursor[u.index()] += 1;
            if !directed && u != v {
                let slot = cursor[v.index()] as usize;
                adj_node[slot] = u;
                adj_edge[slot] = e;
                cursor[v.index()] += 1;
            }
        }
        Topology {
            num_nodes,
            directed,
            endpoints,
            offsets,
            adj_node,
            adj_edge,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of edges (parallel edges counted individually).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the topology is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Iterates over all node ids `0..num_nodes`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::new)
    }

    /// Iterates over all edge ids `0..num_edges`.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges()).map(EdgeId::new)
    }

    /// The endpoints `(u, v)` of edge `e`, in insertion order.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// For a self-loop returns `v` itself.
    ///
    /// # Panics
    /// Panics if `e` is out of range or `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else {
            assert_eq!(b, v, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Iterates over the out-neighbors of `v` as `(neighbor, edge)` pairs.
    ///
    /// For undirected graphs this includes every incident edge; for directed
    /// graphs only out-edges. Parallel edges yield one entry each.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.adj_node[lo..hi]
            .iter()
            .copied()
            .zip(self.adj_edge[lo..hi].iter().copied())
    }

    /// The out-degree of `v` (number of incident edges for undirected
    /// graphs, counting parallel edges).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Returns some edge between `u` and `v`, if any. `O(deg(u))`.
    ///
    /// For directed graphs only edges `u -> v` are considered.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.neighbors(u).find(|&(n, _)| n == v).map(|(_, e)| e)
    }

    /// Returns all (parallel) edges between `u` and `v`. `O(deg(u))`.
    pub fn edges_between(&self, u: NodeId, v: NodeId) -> Vec<EdgeId> {
        self.neighbors(u)
            .filter(|&(n, _)| n == v)
            .map(|(_, e)| e)
            .collect()
    }

    /// Checks that `v` is a valid node id for this topology.
    pub fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() < self.num_nodes() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes(),
            })
        }
    }

    /// Checks that `e` is a valid edge id for this topology.
    pub fn check_edge(&self, e: EdgeId) -> Result<(), GraphError> {
        if e.index() < self.num_edges() {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfRange {
                edge: e,
                num_edges: self.num_edges(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = Topology::builder(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        b.add_edge(NodeId::new(2), NodeId::new(0));
        b.build()
    }

    #[test]
    fn basic_counts() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 3);
        assert!(!t.is_directed());
        assert_eq!(t.nodes().count(), 3);
        assert_eq!(t.edge_ids().count(), 3);
    }

    #[test]
    fn undirected_adjacency_is_symmetric() {
        let t = triangle();
        for v in t.nodes() {
            assert_eq!(t.degree(v), 2);
            for (n, e) in t.neighbors(v) {
                assert_eq!(t.other_endpoint(e, v), n);
                assert!(t.neighbors(n).any(|(back, be)| back == v && be == e));
            }
        }
    }

    #[test]
    fn directed_adjacency_is_one_way() {
        let mut b = Topology::builder_directed(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let t = b.build();
        assert_eq!(t.degree(NodeId::new(0)), 1);
        assert_eq!(t.degree(NodeId::new(1)), 0);
        assert!(t.edge_between(NodeId::new(0), NodeId::new(1)).is_some());
        assert!(t.edge_between(NodeId::new(1), NodeId::new(0)).is_none());
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut b = Topology::builder(2);
        let e0 = b.add_edge(NodeId::new(0), NodeId::new(1));
        let e1 = b.add_edge(NodeId::new(0), NodeId::new(1));
        let t = b.build();
        assert_ne!(e0, e1);
        assert_eq!(
            t.edges_between(NodeId::new(0), NodeId::new(1)),
            vec![e0, e1]
        );
        assert_eq!(t.degree(NodeId::new(0)), 2);
        assert_eq!(t.degree(NodeId::new(1)), 2);
    }

    #[test]
    fn self_loop_counts_once_in_adjacency() {
        let mut b = Topology::builder(1);
        let e = b.add_edge(NodeId::new(0), NodeId::new(0));
        let t = b.build();
        assert_eq!(t.degree(NodeId::new(0)), 1);
        assert_eq!(t.other_endpoint(e, NodeId::new(0)), NodeId::new(0));
    }

    #[test]
    fn check_node_and_edge_bounds() {
        let t = triangle();
        assert!(t.check_node(NodeId::new(2)).is_ok());
        assert!(matches!(
            t.check_node(NodeId::new(3)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(t.check_edge(EdgeId::new(2)).is_ok());
        assert!(matches!(
            t.check_edge(EdgeId::new(3)),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_topology_is_fine() {
        let t = Topology::builder(0).build();
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_edges(), 0);
        assert_eq!(t.nodes().count(), 0);
    }
}
