//! Plain-text persistence for topologies and weight vectors.
//!
//! A deliberately simple, dependency-free line format (no `serde_json` in
//! the allowed dependency set) so that released synthetic graphs — e.g.
//! Algorithm 3's noisy weights — can be stored and served later. Floats
//! round-trip exactly via Rust's shortest-representation formatting.
//!
//! ```text
//! privpath-topology v1
//! nodes 3
//! directed false
//! edges 2
//! 0 1
//! 1 2
//! ```

use crate::{EdgeWeights, NodeId, Topology};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from reading or writing the persistence format.
#[derive(Debug)]
pub enum IoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The input did not match the expected format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Writes a topology in the v1 text format.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_topology(out: &mut impl Write, topo: &Topology) -> Result<(), IoError> {
    writeln!(out, "privpath-topology v1")?;
    writeln!(out, "nodes {}", topo.num_nodes())?;
    writeln!(out, "directed {}", topo.is_directed())?;
    writeln!(out, "edges {}", topo.num_edges())?;
    for e in topo.edge_ids() {
        let (u, v) = topo.endpoints(e);
        writeln!(out, "{} {}", u.index(), v.index())?;
    }
    Ok(())
}

/// Reads a topology written by [`write_topology`]. Edge ids are preserved
/// (insertion order), so weight vectors stay aligned.
///
/// # Errors
/// [`IoError::Parse`] on any malformed line.
pub fn read_topology(input: impl BufRead) -> Result<Topology, IoError> {
    let mut lines = input.lines().enumerate();
    let mut next = |expect: &str| -> Result<(usize, String), IoError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(parse_err(i + 1, e.to_string())),
            None => Err(parse_err(
                0,
                format!("unexpected end of input, expected {expect}"),
            )),
        }
    };

    let (ln, header) = next("header")?;
    if header.trim() != "privpath-topology v1" {
        return Err(parse_err(ln, format!("bad header {header:?}")));
    }
    let (ln, nodes_line) = next("nodes")?;
    let n: usize = nodes_line
        .strip_prefix("nodes ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| parse_err(ln, "expected `nodes <count>`"))?;
    let (ln, directed_line) = next("directed")?;
    let directed: bool = directed_line
        .strip_prefix("directed ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| parse_err(ln, "expected `directed <bool>`"))?;
    let (ln, edges_line) = next("edges")?;
    let m: usize = edges_line
        .strip_prefix("edges ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| parse_err(ln, "expected `edges <count>`"))?;

    let mut builder = if directed {
        Topology::builder_directed(n)
    } else {
        Topology::builder(n)
    };
    for _ in 0..m {
        let (ln, edge_line) = next("edge endpoints")?;
        let mut parts = edge_line.split_whitespace();
        let parse_endpoint = |tok: Option<&str>| -> Result<usize, IoError> {
            tok.and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(ln, "expected `<u> <v>`"))
        };
        let u = parse_endpoint(parts.next())?;
        let v = parse_endpoint(parts.next())?;
        if parts.next().is_some() {
            return Err(parse_err(ln, "trailing tokens on edge line"));
        }
        builder
            .try_add_edge(NodeId::new(u), NodeId::new(v))
            .map_err(|e| parse_err(ln, e.to_string()))?;
    }
    Ok(builder.build())
}

/// Writes a weight vector in the v1 text format (one float per line,
/// exact round-trip formatting).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_weights(out: &mut impl Write, weights: &EdgeWeights) -> Result<(), IoError> {
    writeln!(out, "privpath-weights v1")?;
    writeln!(out, "len {}", weights.len())?;
    for (_, w) in weights.iter() {
        writeln!(out, "{w:?}")?;
    }
    Ok(())
}

/// Reads a weight vector written by [`write_weights`].
///
/// # Errors
/// [`IoError::Parse`] on any malformed line or non-finite value.
pub fn read_weights(input: impl BufRead) -> Result<EdgeWeights, IoError> {
    let mut lines = input.lines().enumerate();
    let mut next = |expect: &str| -> Result<(usize, String), IoError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(parse_err(i + 1, e.to_string())),
            None => Err(parse_err(
                0,
                format!("unexpected end of input, expected {expect}"),
            )),
        }
    };
    let (ln, header) = next("header")?;
    if header.trim() != "privpath-weights v1" {
        return Err(parse_err(ln, format!("bad header {header:?}")));
    }
    let (ln, len_line) = next("len")?;
    let len: usize = len_line
        .strip_prefix("len ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| parse_err(ln, "expected `len <count>`"))?;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        let (ln, value_line) = next("weight")?;
        let v: f64 = value_line
            .trim()
            .parse()
            .map_err(|_| parse_err(ln, format!("bad float {value_line:?}")))?;
        values.push(v);
    }
    EdgeWeights::new(values).map_err(|e| parse_err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gnm_graph, uniform_weights};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::BufReader;

    fn roundtrip_topo(topo: &Topology) -> Topology {
        let mut buf = Vec::new();
        write_topology(&mut buf, topo).unwrap();
        read_topology(BufReader::new(buf.as_slice())).unwrap()
    }

    #[test]
    fn topology_roundtrip_preserves_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let topo = gnm_graph(20, 50, &mut rng);
        let back = roundtrip_topo(&topo);
        assert_eq!(back.num_nodes(), topo.num_nodes());
        assert_eq!(back.num_edges(), topo.num_edges());
        assert_eq!(back.is_directed(), topo.is_directed());
        for e in topo.edge_ids() {
            assert_eq!(back.endpoints(e), topo.endpoints(e));
        }
    }

    #[test]
    fn directed_and_multigraph_roundtrip() {
        let mut b = Topology::builder_directed(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(0), NodeId::new(1)); // parallel
        b.add_edge(NodeId::new(2), NodeId::new(2)); // self loop
        let topo = b.build();
        let back = roundtrip_topo(&topo);
        assert!(back.is_directed());
        assert_eq!(back.num_edges(), 3);
        assert_eq!(
            back.endpoints(crate::EdgeId::new(2)),
            (NodeId::new(2), NodeId::new(2))
        );
    }

    #[test]
    fn weights_roundtrip_bit_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = uniform_weights(40, -5.0, 5.0, &mut rng);
        let mut buf = Vec::new();
        write_weights(&mut buf, &w).unwrap();
        let back = read_weights(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(
            back.as_slice(),
            w.as_slice(),
            "floats must round-trip exactly"
        );
    }

    #[test]
    fn special_float_values_roundtrip() {
        let w = EdgeWeights::new(vec![0.0, -0.0, 1e-300, 1e300, 0.1 + 0.2]).unwrap();
        let mut buf = Vec::new();
        write_weights(&mut buf, &w).unwrap();
        let back = read_weights(BufReader::new(buf.as_slice())).unwrap();
        for (a, b) in back.as_slice().iter().zip(w.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn malformed_inputs_rejected_with_line_numbers() {
        let cases: Vec<(&str, usize)> = vec![
            ("wrong header\n", 1),
            ("privpath-topology v1\nnope\n", 2),
            ("privpath-topology v1\nnodes 2\ndirected maybe\n", 3),
            (
                "privpath-topology v1\nnodes 2\ndirected false\nedges 1\n0\n",
                5,
            ),
            (
                "privpath-topology v1\nnodes 2\ndirected false\nedges 1\n0 5\n",
                5,
            ),
            (
                "privpath-topology v1\nnodes 2\ndirected false\nedges 1\n0 1 9\n",
                5,
            ),
        ];
        for (input, want_line) in cases {
            match read_topology(BufReader::new(input.as_bytes())) {
                Err(IoError::Parse { line, .. }) => {
                    assert_eq!(line, want_line, "input {input:?}");
                }
                other => panic!("input {input:?}: expected parse error, got {other:?}"),
            }
        }
        assert!(read_weights(BufReader::new(
            "privpath-weights v1\nlen 1\nNaN\n".as_bytes()
        ))
        .is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let input = "privpath-topology v1\nnodes 2\ndirected false\nedges 3\n0 1\n";
        assert!(read_topology(BufReader::new(input.as_bytes())).is_err());
        let input = "privpath-weights v1\nlen 3\n1.0\n";
        assert!(read_weights(BufReader::new(input.as_bytes())).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let topo = Topology::builder(0).build();
        let back = roundtrip_topo(&topo);
        assert_eq!(back.num_nodes(), 0);
        let w = EdgeWeights::zeros(0);
        let mut buf = Vec::new();
        write_weights(&mut buf, &w).unwrap();
        assert_eq!(
            read_weights(BufReader::new(buf.as_slice())).unwrap().len(),
            0
        );
    }
}
