//! Walks/paths through a topology.

use crate::{EdgeId, GraphError, NodeId, Topology};

/// A walk through the graph: a sequence of vertices joined by explicit
/// edge ids (explicit because multigraphs have parallel edges — the path
/// must say *which* of the parallel edges it uses, which is exactly what the
/// Section 5.1 reconstruction attack decodes).
///
/// Invariant: `nodes.len() == edges.len() + 1`. A trivial path has one node
/// and no edges. `Path` does not by itself guarantee consistency with a
/// topology; use [`Path::validate`] for that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// Creates a path from node and edge sequences.
    ///
    /// # Panics
    /// Panics unless `nodes.len() == edges.len() + 1` and `nodes` is
    /// non-empty.
    pub fn new(nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Self {
        assert!(!nodes.is_empty(), "a path must contain at least one node");
        assert_eq!(
            nodes.len(),
            edges.len() + 1,
            "a path with {} edges must have {} nodes",
            edges.len(),
            edges.len() + 1
        );
        Path { nodes, edges }
    }

    /// The trivial path consisting of a single vertex.
    pub fn single(node: NodeId) -> Self {
        Path {
            nodes: vec![node],
            edges: Vec::new(),
        }
    }

    /// The vertices of the path, in order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edges of the path, in order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Hop length `ℓ(P)`: the number of edges.
    #[inline]
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// First vertex.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last vertex.
    #[inline]
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("path is non-empty")
    }

    /// Whether the path uses edge `e`.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Validates the path against a topology: every consecutive node pair
    /// must be joined by the stated edge (respecting direction for directed
    /// topologies).
    ///
    /// # Errors
    /// Returns [`GraphError::EdgeOutOfRange`], [`GraphError::NodeOutOfRange`]
    /// or [`GraphError::InvalidParameter`] describing the first
    /// inconsistency.
    pub fn validate(&self, topo: &Topology) -> Result<(), GraphError> {
        for &v in &self.nodes {
            topo.check_node(v)?;
        }
        for (i, &e) in self.edges.iter().enumerate() {
            topo.check_edge(e)?;
            let (a, b) = topo.endpoints(e);
            let (u, v) = (self.nodes[i], self.nodes[i + 1]);
            let ok = if topo.is_directed() {
                a == u && b == v
            } else {
                (a == u && b == v) || (a == v && b == u)
            };
            if !ok {
                return Err(GraphError::InvalidParameter(format!(
                    "path step {i}: edge {e} does not join {u} and {v}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> (Topology, Vec<EdgeId>) {
        let mut b = Topology::builder(3);
        let e0 = b.add_edge(NodeId::new(0), NodeId::new(1));
        let e1 = b.add_edge(NodeId::new(2), NodeId::new(1)); // reversed insertion order
        (b.build(), vec![e0, e1])
    }

    #[test]
    fn construction_and_accessors() {
        let (_, es) = line();
        let p = Path::new(
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            es.clone(),
        );
        assert_eq!(p.hops(), 2);
        assert_eq!(p.source(), NodeId::new(0));
        assert_eq!(p.target(), NodeId::new(2));
        assert!(p.contains_edge(es[0]));
    }

    #[test]
    fn single_node_path() {
        let p = Path::single(NodeId::new(5));
        assert_eq!(p.hops(), 0);
        assert_eq!(p.source(), p.target());
    }

    #[test]
    fn validate_accepts_either_direction_when_undirected() {
        let (topo, es) = line();
        let p = Path::new(vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)], es);
        assert!(p.validate(&topo).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_edge() {
        let (topo, es) = line();
        // edge 0 joins nodes 0-1, not 1-2.
        let p = Path::new(vec![NodeId::new(1), NodeId::new(2)], vec![es[0]]);
        assert!(p.validate(&topo).is_err());
    }

    #[test]
    fn validate_respects_direction() {
        let mut b = Topology::builder_directed(2);
        let e = b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let forward = Path::new(vec![NodeId::new(0), NodeId::new(1)], vec![e]);
        let backward = Path::new(vec![NodeId::new(1), NodeId::new(0)], vec![e]);
        assert!(forward.validate(&topo).is_ok());
        assert!(backward.validate(&topo).is_err());
    }

    #[test]
    #[should_panic(expected = "must have")]
    fn mismatched_lengths_panic() {
        let _ = Path::new(vec![NodeId::new(0)], vec![EdgeId::new(0)]);
    }
}
