//! Error type shared by all substrate operations.

use crate::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id referenced a vertex outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the topology.
        num_nodes: usize,
    },
    /// An edge id referenced an edge outside `0..num_edges`.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Number of edges in the topology.
        num_edges: usize,
    },
    /// A weight vector's length does not match the topology's edge count.
    WeightsLengthMismatch {
        /// Edge count of the topology.
        expected: usize,
        /// Length of the provided weight vector.
        got: usize,
    },
    /// A weight was NaN or infinite where a finite value is required.
    NonFiniteWeight {
        /// The offending edge.
        edge: EdgeId,
        /// The offending value.
        value: f64,
    },
    /// A negative weight was passed to an algorithm that requires
    /// nonnegative weights (e.g. Dijkstra).
    NegativeWeight {
        /// The offending edge.
        edge: EdgeId,
        /// The offending value.
        value: f64,
    },
    /// A negative-weight cycle was detected (Bellman–Ford, Floyd–Warshall).
    NegativeCycle,
    /// Two vertices are not connected but a path/distance between them was
    /// required.
    Disconnected {
        /// Source vertex.
        from: NodeId,
        /// Target vertex.
        to: NodeId,
    },
    /// The graph (or a required subgraph) is not a tree.
    NotATree {
        /// Human-readable reason (edge count, connectivity, ...).
        reason: &'static str,
    },
    /// The graph has no perfect matching.
    NoPerfectMatching,
    /// A non-bipartite connected component was too large for the exact
    /// bitmask matching solver.
    MatchingComponentTooLarge {
        /// Size of the offending component.
        size: usize,
        /// Maximum supported size for the exact solver.
        limit: usize,
    },
    /// Adding an edge would overflow the `u32`-indexed CSR layout (edge ids
    /// and adjacency offsets are `u32`; undirected edges occupy two
    /// adjacency slots each).
    TooManyEdges {
        /// Edges already in the builder when the overflow was detected.
        edges: usize,
        /// Adjacency slots the rejected edge would have required in total.
        slots: u64,
    },
    /// The graph is empty where at least one vertex is required.
    EmptyGraph,
    /// A parameter was outside its documented domain.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for topology with {num_nodes} nodes"
                )
            }
            GraphError::EdgeOutOfRange { edge, num_edges } => {
                write!(
                    f,
                    "edge {edge} out of range for topology with {num_edges} edges"
                )
            }
            GraphError::WeightsLengthMismatch { expected, got } => {
                write!(
                    f,
                    "weight vector has length {got}, topology has {expected} edges"
                )
            }
            GraphError::NonFiniteWeight { edge, value } => {
                write!(f, "edge {edge} has non-finite weight {value}")
            }
            GraphError::NegativeWeight { edge, value } => {
                write!(
                    f,
                    "edge {edge} has negative weight {value}, algorithm requires w >= 0"
                )
            }
            GraphError::NegativeCycle => write!(f, "graph contains a negative-weight cycle"),
            GraphError::Disconnected { from, to } => {
                write!(f, "no path from {from} to {to}")
            }
            GraphError::NotATree { reason } => write!(f, "graph is not a tree: {reason}"),
            GraphError::NoPerfectMatching => write!(f, "graph has no perfect matching"),
            GraphError::MatchingComponentTooLarge { size, limit } => write!(
                f,
                "non-bipartite component of size {size} exceeds exact matching limit {limit}"
            ),
            GraphError::TooManyEdges { edges, slots } => write!(
                f,
                "adding the edge would overflow the u32 CSR index space \
                 ({edges} edges, {slots} adjacency slots required)"
            ),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::WeightsLengthMismatch {
            expected: 5,
            got: 3,
        };
        assert!(e.to_string().contains("length 3"));
        assert!(e.to_string().contains("5 edges"));

        let e = GraphError::Disconnected {
            from: NodeId::new(1),
            to: NodeId::new(2),
        };
        assert!(e.to_string().contains("no path"));

        let e = GraphError::NegativeWeight {
            edge: EdgeId::new(4),
            value: -1.5,
        };
        assert!(e.to_string().contains("-1.5"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(GraphError::EmptyGraph);
    }
}
