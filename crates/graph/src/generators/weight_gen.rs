//! Random weight vectors for workloads.

use crate::EdgeWeights;
use rand::Rng;

/// Uniform weights in `[lo, hi]` for `len` edges.
///
/// # Panics
/// Panics if `lo > hi` or either bound is non-finite.
pub fn uniform_weights(len: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> EdgeWeights {
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "invalid range [{lo}, {hi}]"
    );
    EdgeWeights::new(
        (0..len)
            .map(|_| lo + (hi - lo) * rng.gen::<f64>())
            .collect(),
    )
    .expect("uniform weights are finite")
}

/// Exponential weights with the given mean (inverse-CDF sampling) for `len`
/// edges. Heavy-tailed-ish workloads for the "large weights drown the
/// noise" regime the paper highlights in Section 1.2.
///
/// # Panics
/// Panics if `mean <= 0` or non-finite.
pub fn exponential_weights(len: usize, mean: f64, rng: &mut impl Rng) -> EdgeWeights {
    assert!(
        mean.is_finite() && mean > 0.0,
        "mean must be positive, got {mean}"
    );
    EdgeWeights::new(
        (0..len)
            .map(|_| {
                let u: f64 = rng.gen::<f64>();
                // 1 - u in (0, 1]; ln of it is finite and <= 0.
                -mean * (1.0 - u).ln()
            })
            .collect(),
    )
    .expect("exponential weights are finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = uniform_weights(1000, 2.0, 5.0, &mut rng);
        assert!(w.within_bounds(2.0, 5.0));
        let mean = w.sum() / 1000.0;
        assert!((mean - 3.5).abs() < 0.2, "mean {mean} far from 3.5");
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = uniform_weights(10, 3.0, 3.0, &mut rng);
        assert!(w.as_slice().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn exponential_mean_and_sign() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = exponential_weights(5000, 2.0, &mut rng);
        assert!(w.is_nonnegative());
        let mean = w.sum() / 5000.0;
        assert!((mean - 2.0).abs() < 0.15, "mean {mean} far from 2.0");
    }

    #[test]
    fn empty_vectors() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(uniform_weights(0, 0.0, 1.0, &mut rng).len(), 0);
        assert_eq!(exponential_weights(0, 1.0, &mut rng).len(), 0);
    }
}
