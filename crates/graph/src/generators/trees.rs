//! Tree generators: the workload families for Theorems 4.1 and 4.2.

use crate::{NodeId, Topology};
use rand::Rng;

/// A uniformly random labelled tree on `n` vertices via a random Prüfer
/// sequence.
///
/// # Panics
/// Panics if `n == 0`.
pub fn random_tree_prufer(n: usize, rng: &mut impl Rng) -> Topology {
    assert!(n > 0, "tree needs at least one vertex");
    let mut b = Topology::builder(n);
    if n == 1 {
        return b.build();
    }
    if n == 2 {
        b.add_edge(NodeId::new(0), NodeId::new(1));
        return b.build();
    }
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1u32; n];
    for &s in &seq {
        degree[s] += 1;
    }
    // Standard decoding with a pointer + leaf variable, O(n) amortized.
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &s in &seq {
        b.add_edge(NodeId::new(leaf), NodeId::new(s));
        degree[s] -= 1;
        if degree[s] == 1 && s < ptr {
            leaf = s;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    b.add_edge(NodeId::new(leaf), NodeId::new(n - 1));
    b.build()
}

/// A balanced binary tree on `n` vertices: vertex `i`'s children are
/// `2i + 1` and `2i + 2` (heap layout). Depth is `floor(log2 n)`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn balanced_binary_tree(n: usize) -> Topology {
    assert!(n > 0, "tree needs at least one vertex");
    let mut b = Topology::builder(n);
    for i in 1..n {
        b.add_edge(NodeId::new((i - 1) / 2), NodeId::new(i));
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` vertices, each carrying `legs`
/// pendant leaves. Total vertices: `spine * (1 + legs)`.
///
/// Spine vertices are `0..spine`; the legs of spine vertex `s` are
/// `spine + s * legs .. spine + (s+1) * legs`.
///
/// # Panics
/// Panics if `spine == 0`.
pub fn caterpillar_tree(spine: usize, legs: usize) -> Topology {
    assert!(spine > 0, "caterpillar needs a non-empty spine");
    let n = spine * (1 + legs);
    let mut b = Topology::builder(n);
    for s in 1..spine {
        b.add_edge(NodeId::new(s - 1), NodeId::new(s));
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(NodeId::new(s), NodeId::new(spine + s * legs + l));
        }
    }
    b.build()
}

/// A spider: `legs` paths of length `leg_len` glued at a central vertex
/// `0`. Total vertices: `1 + legs * leg_len`.
///
/// # Panics
/// Panics if `legs == 0` or `leg_len == 0`.
pub fn spider_tree(legs: usize, leg_len: usize) -> Topology {
    assert!(
        legs > 0 && leg_len > 0,
        "spider needs legs of positive length"
    );
    let n = 1 + legs * leg_len;
    let mut b = Topology::builder(n);
    for l in 0..legs {
        let base = 1 + l * leg_len;
        b.add_edge(NodeId::new(0), NodeId::new(base));
        for i in 1..leg_len {
            b.add_edge(NodeId::new(base + i - 1), NodeId::new(base + i));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RootedTree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prufer_trees_are_trees() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 17, 100] {
            let t = random_tree_prufer(n, &mut rng);
            assert_eq!(t.num_edges(), n - 1, "n={n}");
            assert!(
                RootedTree::new(&t, NodeId::new(0)).is_ok(),
                "n={n} not a tree"
            );
        }
    }

    #[test]
    fn prufer_is_seeded_deterministic() {
        let a = random_tree_prufer(30, &mut StdRng::seed_from_u64(11));
        let b = random_tree_prufer(30, &mut StdRng::seed_from_u64(11));
        let ea: Vec<_> = a.edge_ids().map(|e| a.endpoints(e)).collect();
        let eb: Vec<_> = b.edge_ids().map(|e| b.endpoints(e)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn balanced_binary_depths() {
        let t = balanced_binary_tree(15);
        let rt = RootedTree::new(&t, NodeId::new(0)).unwrap();
        assert_eq!(rt.depth(NodeId::new(14)), 3);
        assert_eq!(rt.subtree_size(NodeId::new(1)), 7);
        assert_eq!(rt.children(NodeId::new(0)).len(), 2);
    }

    #[test]
    fn caterpillar_structure() {
        let t = caterpillar_tree(4, 2);
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.num_edges(), 11);
        let rt = RootedTree::new(&t, NodeId::new(0)).unwrap();
        // Legs of spine vertex 1 are 6 and 7.
        assert_eq!(rt.parent(NodeId::new(6)), Some(NodeId::new(1)));
        assert_eq!(rt.parent(NodeId::new(7)), Some(NodeId::new(1)));
    }

    #[test]
    fn spider_structure() {
        let t = spider_tree(3, 4);
        assert_eq!(t.num_nodes(), 13);
        let rt = RootedTree::new(&t, NodeId::new(0)).unwrap();
        assert_eq!(rt.children(NodeId::new(0)).len(), 3);
        assert_eq!(rt.depth(NodeId::new(4)), 4); // end of first leg
    }
}
