//! Grid graphs with coordinate bookkeeping (Theorem 4.7's workload).

use crate::{GraphError, NodeId, Topology};

/// A `rows x cols` grid graph with 4-neighbor connectivity.
///
/// Vertex `(r, c)` has id `r * cols + c`. Edges are inserted row-major:
/// for each cell, first the edge to its right neighbor, then the edge to
/// its neighbor below (when they exist).
///
/// Theorem 4.7 builds a `2 V^{1/3}`-covering of the `sqrt(V) x sqrt(V)`
/// grid by taking every vertex whose coordinates are both `≡ -1 (mod
/// V^{1/3})`; [`GridGraph::modular_covering`] implements exactly that.
#[derive(Clone, Debug)]
pub struct GridGraph {
    topo: Topology,
    rows: usize,
    cols: usize,
}

impl GridGraph {
    /// Builds the `rows x cols` grid.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let mut b = Topology::builder(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = NodeId::new(r * cols + c);
                if c + 1 < cols {
                    b.add_edge(v, NodeId::new(r * cols + c + 1));
                }
                if r + 1 < rows {
                    b.add_edge(v, NodeId::new((r + 1) * cols + c));
                }
            }
        }
        GridGraph {
            topo: b.build(),
            rows,
            cols,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The vertex at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn node_at(&self, r: usize, c: usize) -> NodeId {
        assert!(
            r < self.rows && c < self.cols,
            "grid coordinate out of bounds"
        );
        NodeId::new(r * self.cols + c)
    }

    /// The `(row, col)` of a vertex.
    pub fn coords(&self, v: NodeId) -> (usize, usize) {
        (v.index() / self.cols, v.index() % self.cols)
    }

    /// The modular covering of Theorem 4.7: vertices whose row and column
    /// are both `≡ spacing - 1 (mod spacing)`. This is a
    /// `2 * spacing`-covering of the grid of size about
    /// `(rows / spacing) * (cols / spacing)`.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidParameter`] if `spacing == 0` or
    /// exceeds either dimension (no anchor rows/columns would exist).
    pub fn modular_covering(&self, spacing: usize) -> Result<Vec<NodeId>, GraphError> {
        if spacing == 0 {
            return Err(GraphError::InvalidParameter("spacing must be >= 1".into()));
        }
        if spacing > self.rows || spacing > self.cols {
            return Err(GraphError::InvalidParameter(format!(
                "spacing {spacing} exceeds grid dimensions {}x{}",
                self.rows, self.cols
            )));
        }
        let mut centers = Vec::new();
        let mut r = spacing - 1;
        while r < self.rows {
            let mut c = spacing - 1;
            while c < self.cols {
                centers.push(self.node_at(r, c));
                c += spacing;
            }
            r += spacing;
        }
        Ok(centers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use crate::covering::{covering_radius, verify_covering};

    #[test]
    fn grid_structure() {
        let g = GridGraph::new(3, 4);
        let t = g.topology();
        assert_eq!(t.num_nodes(), 12);
        // Edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17.
        assert_eq!(t.num_edges(), 17);
        assert!(is_connected(t));
        assert_eq!(g.coords(g.node_at(2, 3)), (2, 3));
        // Corner degree 2, edge degree 3, inner degree 4.
        assert_eq!(t.degree(g.node_at(0, 0)), 2);
        assert_eq!(t.degree(g.node_at(0, 1)), 3);
        assert_eq!(t.degree(g.node_at(1, 1)), 4);
    }

    #[test]
    fn modular_covering_is_a_covering() {
        let g = GridGraph::new(9, 9);
        let z = g.modular_covering(3).unwrap();
        assert_eq!(z.len(), 9); // (9/3)^2
                                // Theorem 4.7: spacing s gives a 2s-covering.
        assert!(verify_covering(g.topology(), &z, 6).unwrap());
        let r = covering_radius(g.topology(), &z).unwrap().unwrap();
        assert!(r <= 6, "radius {r} > 2 * spacing");
    }

    #[test]
    fn modular_covering_sizes_match_thm_4_7() {
        // sqrt(V) x sqrt(V) grid with spacing ~ V^{1/3} gives |Z| ~ V^{1/3}.
        let side = 16usize; // V = 256
        let g = GridGraph::new(side, side);
        let spacing = 7; // ~ V^{1/3} = 6.35
        let z = g.modular_covering(spacing).unwrap();
        assert_eq!(z.len(), (side / spacing) * (side / spacing));
        assert!(verify_covering(g.topology(), &z, 2 * spacing).unwrap());
    }

    #[test]
    fn invalid_spacing_rejected() {
        let g = GridGraph::new(4, 4);
        assert!(g.modular_covering(0).is_err());
        assert!(g.modular_covering(5).is_err());
    }

    #[test]
    fn single_cell_grid() {
        let g = GridGraph::new(1, 1);
        assert_eq!(g.topology().num_nodes(), 1);
        assert_eq!(g.topology().num_edges(), 0);
        let z = g.modular_covering(1).unwrap();
        assert_eq!(z.len(), 1);
    }
}
