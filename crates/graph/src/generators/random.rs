//! Random graph models: G(n,p), G(n,m), connected G(n,m), and random
//! geometric graphs (the road-network proxy used throughout EXPERIMENTS.md).

use crate::generators::trees::random_tree_prufer;
use crate::{EdgeId, GraphError, NodeId, Topology};
use rand::Rng;
use std::collections::HashSet;

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges appears
/// independently with probability `p`.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]` or `n == 0`.
pub fn gnp_graph(n: usize, p: f64, rng: &mut impl Rng) -> Topology {
    assert!(n > 0, "G(n,p) needs at least one vertex");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut b = Topology::builder(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                b.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    b.build()
}

/// Uniform `G(n, m)`: exactly `m` distinct edges (no parallel edges or
/// self-loops) chosen uniformly.
///
/// # Panics
/// Panics if `m` exceeds `n(n-1)/2` or `n == 0`.
pub fn gnm_graph(n: usize, m: usize, rng: &mut impl Rng) -> Topology {
    assert!(n > 0, "G(n,m) needs at least one vertex");
    let max = n * (n - 1) / 2;
    assert!(m <= max, "m={m} exceeds max {max} for n={n}");
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(m);
    let mut b = Topology::builder(n);
    // Rejection sampling is fine up to half density; above that, sample the
    // complement.
    if m * 2 <= max {
        while chosen.len() < m {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i == j {
                continue;
            }
            let key = (i.min(j), i.max(j));
            if chosen.insert(key) {
                b.add_edge(NodeId::new(key.0), NodeId::new(key.1));
            }
        }
    } else {
        let mut excluded: HashSet<(usize, usize)> = HashSet::with_capacity(max - m);
        while excluded.len() < max - m {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i == j {
                continue;
            }
            excluded.insert((i.min(j), i.max(j)));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if !excluded.contains(&(i, j)) {
                    b.add_edge(NodeId::new(i), NodeId::new(j));
                }
            }
        }
    }
    b.build()
}

/// Connected `G(n, m)`-style graph: a uniform random spanning tree
/// (Prüfer) plus `m - (n - 1)` additional distinct random edges. Not the
/// uniform distribution over connected graphs, but a standard connected
/// workload generator.
///
/// # Panics
/// Panics if `m < n - 1` or `m` exceeds `n(n-1)/2`.
pub fn connected_gnm(n: usize, m: usize, rng: &mut impl Rng) -> Topology {
    assert!(n > 0, "connected_gnm needs at least one vertex");
    assert!(m + 1 >= n, "m={m} cannot connect n={n} vertices");
    let max = n * (n - 1) / 2;
    assert!(m <= max, "m={m} exceeds max {max} for n={n}");
    let tree = random_tree_prufer(n, rng);
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(m);
    let mut b = Topology::builder(n);
    for e in tree.edge_ids() {
        let (u, v) = tree.endpoints(e);
        let key = (u.index().min(v.index()), u.index().max(v.index()));
        chosen.insert(key);
        b.add_edge(u, v);
    }
    while chosen.len() < m {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let key = (i.min(j), i.max(j));
        if chosen.insert(key) {
            b.add_edge(NodeId::new(key.0), NodeId::new(key.1));
        }
    }
    b.build()
}

/// A random geometric graph: `n` points uniform in the unit square, an
/// edge between any two points within `radius`. Components are then
/// stitched together by connecting each component to its geometrically
/// nearest other component, so the result is always connected — our proxy
/// for road networks (see EXPERIMENTS.md for the substitution note).
#[derive(Clone, Debug)]
pub struct GeometricGraph {
    /// The connected topology.
    pub topo: Topology,
    /// Point positions, indexed by node id.
    pub positions: Vec<(f64, f64)>,
}

impl GeometricGraph {
    /// Pairs a topology with externally supplied point positions,
    /// validating that every vertex has exactly one finite position.
    ///
    /// This is the coordinate-aware entry point the road-network loader
    /// uses: DIMACS `.co` files carry positions for an already-built
    /// topology.
    ///
    /// # Errors
    /// Returns [`GraphError::WeightsLengthMismatch`] when the position
    /// count disagrees with the vertex count, and
    /// [`GraphError::NonFiniteWeight`] when any coordinate is NaN or
    /// infinite (the reported index is the node index).
    pub fn new(topo: Topology, positions: Vec<(f64, f64)>) -> Result<Self, GraphError> {
        if positions.len() != topo.num_nodes() {
            return Err(GraphError::WeightsLengthMismatch {
                expected: topo.num_nodes(),
                got: positions.len(),
            });
        }
        for (i, &(x, y)) in positions.iter().enumerate() {
            if !x.is_finite() || !y.is_finite() {
                return Err(GraphError::NonFiniteWeight {
                    edge: EdgeId::new(i),
                    value: if x.is_finite() { y } else { x },
                });
            }
        }
        Ok(GeometricGraph { topo, positions })
    }

    /// Euclidean distance between two vertices' points.
    pub fn euclid(&self, u: NodeId, v: NodeId) -> f64 {
        let (ux, uy) = self.positions[u.index()];
        let (vx, vy) = self.positions[v.index()];
        ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
    }
}

/// Samples a connected random geometric graph (see [`GeometricGraph`]).
///
/// # Panics
/// Panics if `n == 0` or `radius <= 0`.
pub fn random_geometric_graph(n: usize, radius: f64, rng: &mut impl Rng) -> GeometricGraph {
    assert!(n > 0, "geometric graph needs at least one vertex");
    assert!(radius > 0.0, "radius must be positive");
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut b = Topology::builder(n);
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    // Stitch components: repeatedly connect the component containing vertex
    // 0 to its nearest outside point.
    let mut topo = b.clone().build();
    loop {
        let comps = crate::algo::connected_components(&topo);
        if comps.count <= 1 {
            break;
        }
        let base = comps.component_of(NodeId::new(0));
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if comps.component_of(NodeId::new(i)) != base {
                continue;
            }
            for j in 0..n {
                if comps.component_of(NodeId::new(j)) == base {
                    continue;
                }
                let dx = positions[i].0 - positions[j].0;
                let dy = positions[i].1 - positions[j].1;
                let d2 = dx * dx + dy * dy;
                if best.is_none_or(|(_, _, b2)| d2 < b2) {
                    best = Some((i, j, d2));
                }
            }
        }
        let (i, j, _) = best.expect("multiple components imply a crossing pair");
        b.add_edge(NodeId::new(i), NodeId::new(j));
        topo = b.clone().build();
    }
    GeometricGraph { topo, positions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = gnp_graph(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = gnp_graph(10, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn gnm_exact_count_no_duplicates() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(n, m) in &[(10usize, 20usize), (10, 40), (10, 45), (10, 0), (5, 10)] {
            let g = gnm_graph(n, m, &mut rng);
            assert_eq!(g.num_edges(), m, "n={n} m={m}");
            let mut seen = HashSet::new();
            for e in g.edge_ids() {
                let (u, v) = g.endpoints(e);
                assert_ne!(u, v);
                let key = (u.index().min(v.index()), u.index().max(v.index()));
                assert!(seen.insert(key), "duplicate edge in G(n,m)");
            }
        }
    }

    #[test]
    fn connected_gnm_is_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(n, m) in &[(2usize, 1usize), (20, 19), (20, 40), (50, 100)] {
            let g = connected_gnm(n, m, &mut rng);
            assert_eq!(g.num_edges(), m);
            assert!(is_connected(&g), "n={n} m={m} disconnected");
        }
    }

    #[test]
    fn geometric_graph_connected_and_metric() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_geometric_graph(60, 0.15, &mut rng);
        assert!(is_connected(&g.topo));
        assert_eq!(g.positions.len(), 60);
        // Euclid is symmetric and zero on the diagonal.
        let (a, b) = (NodeId::new(3), NodeId::new(7));
        assert!((g.euclid(a, b) - g.euclid(b, a)).abs() < 1e-12);
        assert_eq!(g.euclid(a, a), 0.0);
    }

    #[test]
    fn geometric_tiny() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_geometric_graph(1, 0.1, &mut rng);
        assert_eq!(g.topo.num_nodes(), 1);
        assert!(is_connected(&g.topo));
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn gnm_overfull_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = gnm_graph(4, 7, &mut rng);
    }
}
