//! Elementary graph families.

use crate::{NodeId, Topology};

/// The path graph `P_n`: vertices `0..n`, edge `i` joining `i` and `i+1`.
///
/// Appendix A of the paper treats all-pairs distances on this graph as
/// query release of threshold functions; the edge-id layout (edge `i` =
/// `(i, i+1)`) is guaranteed so that weight vectors can be built
/// positionally.
///
/// # Panics
/// Panics if `n == 0`.
pub fn path_graph(n: usize) -> Topology {
    assert!(n > 0, "path graph needs at least one vertex");
    let mut b = Topology::builder(n);
    for i in 0..n - 1 {
        b.add_edge(NodeId::new(i), NodeId::new(i + 1));
    }
    b.build()
}

/// The cycle graph `C_n`: edge `i` joins `i` and `(i+1) mod n`.
///
/// Used in the paper's Section 1.3 to show edge-DP cannot release
/// distances: deleting one cycle edge flips a distance from 1 to `n - 1`.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle_graph(n: usize) -> Topology {
    assert!(n >= 3, "cycle graph needs at least three vertices");
    let mut b = Topology::builder(n);
    for i in 0..n {
        b.add_edge(NodeId::new(i), NodeId::new((i + 1) % n));
    }
    b.build()
}

/// The star `K_{1,n-1}`: center `0`, leaves `1..n`; edge `i` joins `0` and
/// `i + 1`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn star_graph(n: usize) -> Topology {
    assert!(n > 0, "star graph needs at least one vertex");
    let mut b = Topology::builder(n);
    for i in 1..n {
        b.add_edge(NodeId::new(0), NodeId::new(i));
    }
    b.build()
}

/// The complete graph `K_n`; edges in lexicographic order `(0,1), (0,2),
/// ..., (n-2, n-1)`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn complete_graph(n: usize) -> Topology {
    assert!(n > 0, "complete graph needs at least one vertex");
    let mut b = Topology::builder(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(NodeId::new(i), NodeId::new(j));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use crate::EdgeId;

    #[test]
    fn path_layout() {
        let p = path_graph(5);
        assert_eq!(p.num_nodes(), 5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(
            p.endpoints(EdgeId::new(2)),
            (NodeId::new(2), NodeId::new(3))
        );
        assert!(is_connected(&p));
        assert_eq!(p.degree(NodeId::new(0)), 1);
        assert_eq!(p.degree(NodeId::new(2)), 2);
    }

    #[test]
    fn single_vertex_path() {
        let p = path_graph(1);
        assert_eq!(p.num_nodes(), 1);
        assert_eq!(p.num_edges(), 0);
    }

    #[test]
    fn cycle_layout() {
        let c = cycle_graph(4);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(
            c.endpoints(EdgeId::new(3)),
            (NodeId::new(3), NodeId::new(0))
        );
        for v in c.nodes() {
            assert_eq!(c.degree(v), 2);
        }
    }

    #[test]
    fn star_layout() {
        let s = star_graph(6);
        assert_eq!(s.num_edges(), 5);
        assert_eq!(s.degree(NodeId::new(0)), 5);
        for i in 1..6 {
            assert_eq!(s.degree(NodeId::new(i)), 1);
        }
    }

    #[test]
    fn complete_counts() {
        let k = complete_graph(6);
        assert_eq!(k.num_edges(), 15);
        for v in k.nodes() {
            assert_eq!(k.degree(v), 5);
        }
    }
}
