//! Graph generators: workloads for every experiment plus the paper's
//! lower-bound gadget constructions (Figures 2 and 3).

mod basic;
mod gadgets;
mod grids;
mod layered;
mod random;
mod trees;
mod weight_gen;

pub use basic::{complete_graph, cycle_graph, path_graph, star_graph};
pub use gadgets::{HourglassGadget, ParallelPathGadget, SimpleParallelPathGadget, StarGadget};
pub use grids::GridGraph;
pub use layered::{planted_path_graph, PlantedPath};
pub use random::{connected_gnm, gnm_graph, gnp_graph, random_geometric_graph, GeometricGraph};
pub use trees::{balanced_binary_tree, caterpillar_tree, random_tree_prufer, spider_tree};
pub use weight_gen::{exponential_weights, uniform_weights};
