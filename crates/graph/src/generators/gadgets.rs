//! The paper's lower-bound gadget graphs (Figures 2 and 3).
//!
//! Each gadget encodes a database `x ∈ {0,1}^n` as a `{0,1}` edge-weight
//! function; the reconstruction reductions (Lemmas 5.2, B.2, B.5) live in
//! `privpath-core::attack` and use the structural accessors defined here.

use crate::{EdgeId, NodeId, Topology};

/// Figure 2: the `(n+1)`-vertex path with **two parallel edges** between
/// consecutive vertices, used in the shortest-path lower bound
/// (Theorem 5.1).
///
/// Bit `i` (0-based, `i < n`) corresponds to the vertex pair `(i, i+1)`;
/// its two parallel edges are [`zero_edge(i)`](Self::zero_edge) (id `2i`)
/// and [`one_edge(i)`](Self::one_edge) (id `2i + 1`).
#[derive(Clone, Debug)]
pub struct ParallelPathGadget {
    topo: Topology,
    n: usize,
}

impl ParallelPathGadget {
    /// Builds the gadget for `n` bits (`n + 1` vertices, `2n` edges).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "gadget needs at least one bit");
        let mut b = Topology::builder(n + 1);
        for i in 0..n {
            b.add_edge(NodeId::new(i), NodeId::new(i + 1));
            b.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        ParallelPathGadget { topo: b.build(), n }
    }

    /// The public topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of encoded bits.
    pub fn num_bits(&self) -> usize {
        self.n
    }

    /// The query source `s` (vertex 0).
    pub fn s(&self) -> NodeId {
        NodeId::new(0)
    }

    /// The query target `t` (vertex n).
    pub fn t(&self) -> NodeId {
        NodeId::new(self.n)
    }

    /// The edge `e_i^{(0)}` carrying weight 0 when `x_i = 0`.
    pub fn zero_edge(&self, bit: usize) -> EdgeId {
        assert!(bit < self.n, "bit {bit} out of range");
        EdgeId::new(2 * bit)
    }

    /// The edge `e_i^{(1)}` carrying weight 0 when `x_i = 1`.
    pub fn one_edge(&self, bit: usize) -> EdgeId {
        assert!(bit < self.n, "bit {bit} out of range");
        EdgeId::new(2 * bit + 1)
    }
}

/// The simple-graph variant of Figure 2 mentioned in the paper: each
/// parallel edge pair is subdivided through a fresh middle vertex, doubling
/// the vertex count and changing the bound by a factor of 2.
///
/// For bit `i`: branch 0 runs `i -> a_i -> i+1` and branch 1 runs
/// `i -> b_i -> i+1`, where `a_i` and `b_i` are the added vertices.
#[derive(Clone, Debug)]
pub struct SimpleParallelPathGadget {
    topo: Topology,
    n: usize,
}

impl SimpleParallelPathGadget {
    /// Builds the simple-graph gadget for `n` bits
    /// (`3n + 1` vertices, `4n` edges).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "gadget needs at least one bit");
        let mut b = Topology::builder(n + 1 + 2 * n);
        for i in 0..n {
            let a = NodeId::new(n + 1 + 2 * i);
            let bb = NodeId::new(n + 2 + 2 * i);
            let u = NodeId::new(i);
            let v = NodeId::new(i + 1);
            b.add_edge(u, a); // 4i
            b.add_edge(a, v); // 4i + 1
            b.add_edge(u, bb); // 4i + 2
            b.add_edge(bb, v); // 4i + 3
        }
        SimpleParallelPathGadget { topo: b.build(), n }
    }

    /// The public topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of encoded bits.
    pub fn num_bits(&self) -> usize {
        self.n
    }

    /// The query source `s` (vertex 0).
    pub fn s(&self) -> NodeId {
        NodeId::new(0)
    }

    /// The query target `t` (vertex n).
    pub fn t(&self) -> NodeId {
        NodeId::new(self.n)
    }

    /// The middle vertex of branch `side` (0 or 1) for `bit`.
    pub fn middle_vertex(&self, bit: usize, side: u8) -> NodeId {
        assert!(bit < self.n && side < 2);
        NodeId::new(self.n + 1 + 2 * bit + side as usize)
    }

    /// The two edges of branch `side` for `bit`, in path order.
    pub fn branch_edges(&self, bit: usize, side: u8) -> [EdgeId; 2] {
        assert!(bit < self.n && side < 2);
        let base = 4 * bit + 2 * side as usize;
        [EdgeId::new(base), EdgeId::new(base + 1)]
    }
}

/// Figure 3 (left): the star gadget for the MST lower bound (Theorem B.1).
/// Vertex 0 is the hub; spoke `i` (0-based, `i < n`) is vertex `i + 1`,
/// joined to the hub by parallel edges [`zero_edge(i)`](Self::zero_edge)
/// (id `2i`) and [`one_edge(i)`](Self::one_edge) (id `2i + 1`).
#[derive(Clone, Debug)]
pub struct StarGadget {
    topo: Topology,
    n: usize,
}

impl StarGadget {
    /// Builds the gadget for `n` bits (`n + 1` vertices, `2n` edges).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "gadget needs at least one bit");
        let mut b = Topology::builder(n + 1);
        for i in 0..n {
            b.add_edge(NodeId::new(0), NodeId::new(i + 1));
            b.add_edge(NodeId::new(0), NodeId::new(i + 1));
        }
        StarGadget { topo: b.build(), n }
    }

    /// The public topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of encoded bits.
    pub fn num_bits(&self) -> usize {
        self.n
    }

    /// The hub vertex.
    pub fn hub(&self) -> NodeId {
        NodeId::new(0)
    }

    /// The spoke vertex of `bit`.
    pub fn spoke(&self, bit: usize) -> NodeId {
        assert!(bit < self.n);
        NodeId::new(bit + 1)
    }

    /// The spoke edge carrying weight 0 when `x_i = 0`.
    pub fn zero_edge(&self, bit: usize) -> EdgeId {
        assert!(bit < self.n, "bit {bit} out of range");
        EdgeId::new(2 * bit)
    }

    /// The spoke edge carrying weight 0 when `x_i = 1`.
    pub fn one_edge(&self, bit: usize) -> EdgeId {
        assert!(bit < self.n, "bit {bit} out of range");
        EdgeId::new(2 * bit + 1)
    }
}

/// Figure 3 (right): the hourglass gadget family for the matching lower
/// bound (Theorem B.4): `n` disjoint 4-cycles, one per bit.
///
/// Gadget `c` has vertices `(b1, b2, c)` with id `4c + 2*b1 + b2`, where
/// `b1` is the side (0 = left, 1 = right); its four edges join `(0, b, c)`
/// to `(1, b', c)` with edge id `4c + 2b + b'`.
#[derive(Clone, Debug)]
pub struct HourglassGadget {
    topo: Topology,
    n: usize,
}

impl HourglassGadget {
    /// Builds `n` disjoint hourglass gadgets (`4n` vertices, `4n` edges).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "gadget needs at least one bit");
        let mut builder = Topology::builder(4 * n);
        for c in 0..n {
            for b in 0..2usize {
                for bp in 0..2usize {
                    builder.add_edge(
                        NodeId::new(4 * c + b),      // (0, b, c)
                        NodeId::new(4 * c + 2 + bp), // (1, b', c)
                    );
                }
            }
        }
        HourglassGadget {
            topo: builder.build(),
            n,
        }
    }

    /// The public topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of encoded bits (gadgets).
    pub fn num_bits(&self) -> usize {
        self.n
    }

    /// The vertex `(side, b, c)`.
    pub fn vertex(&self, gadget: usize, side: u8, b: u8) -> NodeId {
        assert!(gadget < self.n && side < 2 && b < 2);
        NodeId::new(4 * gadget + 2 * side as usize + b as usize)
    }

    /// The edge joining `(0, b, c)` and `(1, b', c)`.
    pub fn edge(&self, gadget: usize, b: u8, bp: u8) -> EdgeId {
        assert!(gadget < self.n && b < 2 && bp < 2);
        EdgeId::new(4 * gadget + 2 * b as usize + bp as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_path_layout() {
        let g = ParallelPathGadget::new(4);
        let t = g.topology();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_edges(), 8);
        assert_eq!(g.s(), NodeId::new(0));
        assert_eq!(g.t(), NodeId::new(4));
        for bit in 0..4 {
            let (u0, v0) = t.endpoints(g.zero_edge(bit));
            let (u1, v1) = t.endpoints(g.one_edge(bit));
            assert_eq!((u0, v0), (NodeId::new(bit), NodeId::new(bit + 1)));
            assert_eq!((u1, v1), (NodeId::new(bit), NodeId::new(bit + 1)));
            assert_ne!(g.zero_edge(bit), g.one_edge(bit));
        }
    }

    #[test]
    fn simple_parallel_path_layout() {
        let g = SimpleParallelPathGadget::new(3);
        let t = g.topology();
        assert_eq!(t.num_nodes(), 10);
        assert_eq!(t.num_edges(), 12);
        for bit in 0..3 {
            for side in 0..2u8 {
                let [e1, e2] = g.branch_edges(bit, side);
                let m = g.middle_vertex(bit, side);
                let (a, b) = t.endpoints(e1);
                assert_eq!((a, b), (NodeId::new(bit), m));
                let (a, b) = t.endpoints(e2);
                assert_eq!((a, b), (m, NodeId::new(bit + 1)));
            }
        }
    }

    #[test]
    fn star_gadget_layout() {
        let g = StarGadget::new(5);
        let t = g.topology();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_edges(), 10);
        for bit in 0..5 {
            let (h, s) = t.endpoints(g.zero_edge(bit));
            assert_eq!(h, g.hub());
            assert_eq!(s, g.spoke(bit));
            let (h, s) = t.endpoints(g.one_edge(bit));
            assert_eq!(h, g.hub());
            assert_eq!(s, g.spoke(bit));
        }
    }

    #[test]
    fn hourglass_layout() {
        let g = HourglassGadget::new(3);
        let t = g.topology();
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.num_edges(), 12);
        for c in 0..3 {
            for b in 0..2u8 {
                for bp in 0..2u8 {
                    let e = g.edge(c, b, bp);
                    let (u, v) = t.endpoints(e);
                    assert_eq!(u, g.vertex(c, 0, b));
                    assert_eq!(v, g.vertex(c, 1, bp));
                }
            }
        }
        // Gadgets are disjoint: 3 components of size 4.
        let comps = crate::algo::connected_components(t);
        assert_eq!(comps.count, 3);
    }

    #[test]
    fn hourglass_components_are_bipartite_4_cycles() {
        let g = HourglassGadget::new(2);
        assert!(crate::algo::bipartite_coloring(g.topology()).is_some());
    }
}
