//! Graphs with a planted k-hop shortest path (workload for Theorem 5.5's
//! hop-dependent error experiment, E2).

use crate::{EdgeId, EdgeWeights, NodeId, Topology};
use rand::Rng;

/// A graph whose `s -> t` shortest path is a planted path with a known
/// number of hops, surrounded by strictly heavier decoy structure.
#[derive(Clone, Debug)]
pub struct PlantedPath {
    /// The topology.
    pub topo: Topology,
    /// The true (private) weights.
    pub weights: EdgeWeights,
    /// Query source (vertex 0).
    pub s: NodeId,
    /// Query target (vertex `hops`).
    pub t: NodeId,
    /// Hop count of the planted shortest path.
    pub hops: usize,
    /// Total weight of the planted path.
    pub planted_weight: f64,
    /// The planted path's edges, in order.
    pub planted_edges: Vec<EdgeId>,
}

/// Builds a [`PlantedPath`]: vertices `0..=hops` carry the planted path
/// with unit edge weights; `extra` decoy vertices each attach to two random
/// vertices via heavy edges (weight uniform in `[hops + 1, 2(hops + 1)]`),
/// and `extra` heavy chords are thrown between random vertex pairs.
/// Every `s -> t` walk other than the planted path must use a heavy edge,
/// so the planted path is the unique shortest path, of weight `hops` and
/// `hops` hops.
///
/// # Panics
/// Panics if `hops == 0`.
pub fn planted_path_graph(hops: usize, extra: usize, rng: &mut impl Rng) -> PlantedPath {
    assert!(hops > 0, "planted path needs at least one hop");
    let n = hops + 1 + extra;
    let mut b = Topology::builder(n);
    let mut weights = Vec::new();
    let mut planted_edges = Vec::with_capacity(hops);
    for i in 0..hops {
        planted_edges.push(b.add_edge(NodeId::new(i), NodeId::new(i + 1)));
        weights.push(1.0);
    }
    let heavy_lo = (hops + 1) as f64;
    for x in 0..extra {
        let v = NodeId::new(hops + 1 + x);
        for _ in 0..2 {
            let u = NodeId::new(rng.gen_range(0..hops + 1 + x));
            b.add_edge(u, v);
            weights.push(heavy_lo * (1.0 + rng.gen::<f64>()));
        }
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.add_edge(NodeId::new(u), NodeId::new(v));
            weights.push(heavy_lo * (1.0 + rng.gen::<f64>()));
        }
    }
    let topo = b.build();
    let weights = EdgeWeights::new(weights).expect("generated weights are finite");
    PlantedPath {
        topo,
        weights,
        s: NodeId::new(0),
        t: NodeId::new(hops),
        hops,
        planted_weight: hops as f64,
        planted_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_path_is_the_shortest_path() {
        let mut rng = StdRng::seed_from_u64(42);
        for (hops, extra) in [(1usize, 0usize), (4, 10), (16, 50), (32, 100)] {
            let p = planted_path_graph(hops, extra, &mut rng);
            let spt = dijkstra(&p.topo, &p.weights, p.s).unwrap();
            assert_eq!(spt.distance(p.t), Some(p.planted_weight), "hops={hops}");
            let path = spt.path_to(p.t).unwrap();
            assert_eq!(path.hops(), hops, "hops={hops}");
            assert_eq!(path.edges(), p.planted_edges.as_slice());
        }
    }

    #[test]
    fn decoys_are_heavier_than_planted_total() {
        let mut rng = StdRng::seed_from_u64(43);
        let p = planted_path_graph(8, 20, &mut rng);
        for (e, w) in p.weights.iter() {
            if !p.planted_edges.contains(&e) {
                assert!(w > p.planted_weight, "decoy edge {e} weight {w} too light");
            }
        }
    }

    #[test]
    fn graph_size_accounts_for_extras() {
        let mut rng = StdRng::seed_from_u64(44);
        let p = planted_path_graph(5, 7, &mut rng);
        assert_eq!(p.topo.num_nodes(), 13);
        assert!(p.topo.num_edges() >= 5 + 14);
    }
}
