//! Rooted-tree machinery for Algorithm 1 (Theorem 4.1) and Theorem 4.2.
//!
//! * [`RootedTree`] — parent/children/depth arrays over a tree topology.
//! * [`Lca`] — lowest common ancestors by binary lifting (Theorem 4.2
//!   reduces all-pairs tree distances to single-source distances + LCA).
//! * [`decompose`] — the recursive split-vertex decomposition of the
//!   paper's Figure 1, produced as a weight-independent *query plan* that
//!   the DP layer executes with noise.

mod decomposition;
mod hld;
mod lca;
mod rooted;

pub use decomposition::{decompose, DecompCall, TreeDecomposition};
pub use hld::{HeavyPath, HeavyPathDecomposition};
pub use lca::Lca;
pub use rooted::{weighted_depths, RootedTree};
