//! Lowest common ancestors by binary lifting.

use super::rooted::RootedTree;
use crate::NodeId;

/// Lowest-common-ancestor queries in `O(log V)` after `O(V log V)`
/// preprocessing.
///
/// Theorem 4.2 computes all-pairs tree distances from single-source
/// estimates via `d(x, y) = d(v0, x) + d(v0, y) - 2 d(v0, lca(x, y))`; this
/// structure supplies the `lca`.
#[derive(Clone, Debug)]
pub struct Lca {
    /// `up[k][v]` = the `2^k`-th ancestor of `v` (clamped at the root).
    up: Vec<Vec<u32>>,
    depth: Vec<u32>,
    levels: usize,
}

impl Lca {
    /// Builds the lifting table for `tree`.
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.num_nodes();
        let levels = usize::BITS as usize - (n.max(2) - 1).leading_zeros() as usize;
        let levels = levels.max(1);
        let mut up = vec![vec![0u32; n]; levels];
        for (v, slot) in up[0].iter_mut().enumerate() {
            let vid = NodeId::new(v);
            *slot = tree.parent(vid).unwrap_or(vid).raw();
        }
        for k in 1..levels {
            for v in 0..n {
                up[k][v] = up[k - 1][up[k - 1][v] as usize];
            }
        }
        let depth = (0..n).map(|v| tree.depth(NodeId::new(v))).collect();
        Lca { up, depth, levels }
    }

    /// Hop depth of `v` (cached from the tree).
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// The ancestor of `v` exactly `k` levels up (clamped at the root).
    pub fn ancestor(&self, v: NodeId, k: u32) -> NodeId {
        // Clamp so every remaining bit of k fits within the lifting table.
        let mut k = k.min(self.depth(v));
        let mut v = v.raw();
        let mut level = 0;
        while k > 0 && level < self.levels {
            if k & 1 == 1 {
                v = self.up[level][v as usize];
            }
            k >>= 1;
            level += 1;
        }
        NodeId::from_raw(v)
    }

    /// The lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut u, mut v) = (u, v);
        if self.depth(u) < self.depth(v) {
            std::mem::swap(&mut u, &mut v);
        }
        u = self.ancestor(u, self.depth(u) - self.depth(v));
        if u == v {
            return u;
        }
        for k in (0..self.levels).rev() {
            let (au, av) = (self.up[k][u.index()], self.up[k][v.index()]);
            if au != av {
                u = NodeId::from_raw(au);
                v = NodeId::from_raw(av);
            }
        }
        NodeId::from_raw(self.up[0][u.index()])
    }

    /// Hop distance between `u` and `v` through their LCA.
    pub fn hop_distance(&self, u: NodeId, v: NodeId) -> u32 {
        let a = self.lca(u, v);
        self.depth(u) + self.depth(v) - 2 * self.depth(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path_graph, star_graph};
    use crate::tree::RootedTree;
    use crate::Topology;

    #[test]
    fn lca_on_path() {
        let topo = path_graph(8);
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        let lca = Lca::new(&rt);
        assert_eq!(lca.lca(NodeId::new(3), NodeId::new(6)), NodeId::new(3));
        assert_eq!(lca.lca(NodeId::new(6), NodeId::new(3)), NodeId::new(3));
        assert_eq!(lca.lca(NodeId::new(5), NodeId::new(5)), NodeId::new(5));
        assert_eq!(lca.hop_distance(NodeId::new(2), NodeId::new(7)), 5);
    }

    #[test]
    fn lca_on_star() {
        let topo = star_graph(6);
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        let lca = Lca::new(&rt);
        assert_eq!(lca.lca(NodeId::new(1), NodeId::new(2)), NodeId::new(0));
        assert_eq!(lca.hop_distance(NodeId::new(1), NodeId::new(2)), 2);
        assert_eq!(lca.lca(NodeId::new(0), NodeId::new(4)), NodeId::new(0));
    }

    #[test]
    fn lca_on_binary_like_tree() {
        //       0
        //      / \
        //     1   2
        //    / \   \
        //   3   4   5
        let mut b = Topology::builder(6);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(0), NodeId::new(2));
        b.add_edge(NodeId::new(1), NodeId::new(3));
        b.add_edge(NodeId::new(1), NodeId::new(4));
        b.add_edge(NodeId::new(2), NodeId::new(5));
        let topo = b.build();
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        let lca = Lca::new(&rt);
        assert_eq!(lca.lca(NodeId::new(3), NodeId::new(4)), NodeId::new(1));
        assert_eq!(lca.lca(NodeId::new(3), NodeId::new(5)), NodeId::new(0));
        assert_eq!(lca.lca(NodeId::new(4), NodeId::new(1)), NodeId::new(1));
        assert_eq!(lca.hop_distance(NodeId::new(3), NodeId::new(5)), 4);
    }

    #[test]
    fn lca_matches_naive_on_path_rooted_in_middle() {
        let topo = path_graph(16);
        let rt = RootedTree::new(&topo, NodeId::new(7)).unwrap();
        let lca = Lca::new(&rt);
        // Naive LCA: walk parents upward.
        let naive = |mut u: NodeId, mut v: NodeId| -> NodeId {
            while rt.depth(u) > rt.depth(v) {
                u = rt.parent(u).unwrap();
            }
            while rt.depth(v) > rt.depth(u) {
                v = rt.parent(v).unwrap();
            }
            while u != v {
                u = rt.parent(u).unwrap();
                v = rt.parent(v).unwrap();
            }
            u
        };
        for ui in 0..16 {
            for vi in 0..16 {
                let (u, v) = (NodeId::new(ui), NodeId::new(vi));
                assert_eq!(lca.lca(u, v), naive(u, v), "pair ({ui},{vi})");
            }
        }
    }

    #[test]
    fn ancestor_clamps_at_root() {
        let topo = path_graph(4);
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        let lca = Lca::new(&rt);
        assert_eq!(lca.ancestor(NodeId::new(3), 100), NodeId::new(0));
        assert_eq!(lca.ancestor(NodeId::new(3), 2), NodeId::new(1));
    }

    #[test]
    fn single_vertex_tree() {
        let topo = Topology::builder(1).build();
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        let lca = Lca::new(&rt);
        assert_eq!(lca.lca(NodeId::new(0), NodeId::new(0)), NodeId::new(0));
    }
}
