//! The recursive split-vertex decomposition of Algorithm 1 (paper Fig. 1).
//!
//! Given a tree rooted at `v0`, each recursion step finds the unique vertex
//! `v*` whose subtree holds more than half the piece's vertices while every
//! child subtree holds at most half. The piece splits into `T_0` (the piece
//! minus the strict descendants of `v*`, still rooted at the piece root)
//! and `T_1..T_t` (the subtrees of `v*`'s children). The queries released
//! at this step are the distance `d(piece_root, v*)` and the edge weights
//! `w((v*, v_i))`.
//!
//! Crucially the decomposition depends **only on the public topology**, so
//! it is computed here, in the non-private substrate, as an explicit query
//! plan ([`TreeDecomposition`]). The DP layer executes the plan with
//! Laplace noise; tests execute it with zero noise to check the
//! decomposition identities exactly.

use super::rooted::RootedTree;
use crate::{EdgeId, NodeId};

/// One recursion step of Algorithm 1.
#[derive(Clone, Debug)]
pub struct DecompCall {
    /// The root of this piece (the paper's `v0` at top level).
    pub piece_root: NodeId,
    /// The split vertex `v*`.
    pub split_vertex: NodeId,
    /// Children of `v*` inside this piece, with their parent edges: the
    /// queries `w((v*, v_i))`.
    pub child_edges: Vec<(NodeId, EdgeId)>,
    /// Number of vertices in this piece.
    pub size: usize,
    /// Sub-pieces, in order: `T_0` first (if it recurses), then `T_i` for
    /// each child. Pieces of size 1 terminate and are omitted.
    pub subcalls: Vec<DecompCall>,
}

/// The full query plan of Algorithm 1 on a rooted tree.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// The top-level call; `None` for a single-vertex tree (no queries).
    pub root_call: Option<DecompCall>,
    /// Maximum recursion depth (number of levels of calls). The paper
    /// bounds this by `log2 V` because every piece has at most
    /// `ceil(|S| / 2)` vertices.
    pub depth: usize,
    /// Total number of released queries (`d(piece_root, v*)` plus one per
    /// child edge). The paper bounds this by `2V`.
    pub num_queries: usize,
}

impl TreeDecomposition {
    /// Visits every call with its recursion depth (root call has depth 0).
    pub fn for_each_call(&self, mut f: impl FnMut(&DecompCall, usize)) {
        fn walk(call: &DecompCall, depth: usize, f: &mut impl FnMut(&DecompCall, usize)) {
            f(call, depth);
            for sub in &call.subcalls {
                walk(sub, depth + 1, f);
            }
        }
        if let Some(root) = &self.root_call {
            walk(root, 0, &mut f);
        }
    }

    /// For each vertex, the number of Laplace noise terms its Algorithm 1
    /// estimate accumulates (0 for the root). The paper's analysis bounds
    /// this by `2 * depth`.
    pub fn noise_terms_per_vertex(&self, num_nodes: usize) -> Vec<u32> {
        let mut terms = vec![0u32; num_nodes];
        fn walk(call: &DecompCall, terms: &mut [u32]) {
            let base = terms[call.piece_root.index()];
            for &(child, _) in &call.child_edges {
                // est[child] = (est[piece_root] + noisy dist) + w(edge) + noise
                terms[child.index()] = base + 2;
            }
            for sub in &call.subcalls {
                walk(sub, terms);
            }
        }
        if let Some(root) = &self.root_call {
            walk(root, &mut terms);
        }
        terms
    }

    /// For each recursion level, the edges used by the queries released at
    /// that level (the root-to-split path edges plus the child edges). The
    /// privacy analysis of Theorem 4.1 rests on these being **disjoint
    /// within every level** — sensitivity 1 per level, `depth` in total —
    /// which tests assert.
    pub fn level_edge_usage(&self, tree: &RootedTree) -> Vec<Vec<EdgeId>> {
        let mut levels: Vec<Vec<EdgeId>> = vec![Vec::new(); self.depth];
        self.for_each_call(|call, depth| {
            let level = &mut levels[depth];
            // Path from split vertex up to the piece root.
            let mut cur = call.split_vertex;
            while cur != call.piece_root {
                let e = tree
                    .parent_edge(cur)
                    .expect("non-root vertex has parent edge");
                level.push(e);
                cur = tree.parent(cur).expect("non-root vertex has parent");
            }
            for &(_, e) in &call.child_edges {
                level.push(e);
            }
        });
        levels
    }
}

/// Computes the Algorithm 1 decomposition of `tree`. Pure topology; no
/// weights involved. Runs in `O(V log V)`.
pub fn decompose(tree: &RootedTree) -> TreeDecomposition {
    let n = tree.num_nodes();
    // Position of each vertex in global preorder (parents before children),
    // used to accumulate piece-local subtree sizes bottom-up.
    let mut pos = vec![0u32; n];
    for (i, &v) in tree.preorder().iter().enumerate() {
        pos[v.index()] = i as u32;
    }
    let mut ctx = Ctx {
        tree,
        pos,
        stamp: vec![0; n],
        epoch: 0,
        local_size: vec![0; n],
        num_queries: 0,
    };
    let all: Vec<NodeId> = tree.preorder().to_vec();
    let (root_call, depth) = recurse(&mut ctx, tree.root(), all);
    TreeDecomposition {
        root_call,
        depth,
        num_queries: ctx.num_queries,
    }
}

struct Ctx<'a> {
    tree: &'a RootedTree,
    pos: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    local_size: Vec<u32>,
    num_queries: usize,
}

/// Returns the call for this piece (or `None` for singleton pieces) and the
/// number of levels including this one.
fn recurse(
    ctx: &mut Ctx<'_>,
    piece_root: NodeId,
    mut nodes: Vec<NodeId>,
) -> (Option<DecompCall>, usize) {
    let size = nodes.len();
    if size <= 1 {
        return (None, 0);
    }
    // Stamp membership and compute piece-local subtree sizes bottom-up
    // (descending preorder position processes children before parents).
    ctx.epoch += 1;
    let epoch = ctx.epoch;
    for &v in &nodes {
        ctx.stamp[v.index()] = epoch;
        ctx.local_size[v.index()] = 1;
    }
    nodes.sort_by(|a, b| ctx.pos[b.index()].cmp(&ctx.pos[a.index()]));
    for &v in &nodes {
        if v == piece_root {
            continue;
        }
        let p = ctx
            .tree
            .parent(v)
            .expect("piece member below piece root has parent");
        debug_assert_eq!(ctx.stamp[p.index()], epoch, "piece must be connected");
        ctx.local_size[p.index()] += ctx.local_size[v.index()];
    }
    debug_assert_eq!(ctx.local_size[piece_root.index()] as usize, size);

    // Descend to the split vertex: the deepest vertex whose local subtree
    // holds more than half the piece.
    let half = (size / 2) as u32;
    let mut split = piece_root;
    loop {
        let next = ctx
            .tree
            .children(split)
            .iter()
            .copied()
            .find(|c| ctx.stamp[c.index()] == epoch && ctx.local_size[c.index()] > half);
        match next {
            Some(c) => split = c,
            None => break,
        }
    }

    let child_edges: Vec<(NodeId, EdgeId)> = ctx
        .tree
        .children(split)
        .iter()
        .copied()
        .filter(|c| ctx.stamp[c.index()] == epoch)
        .map(|c| (c, ctx.tree.parent_edge(c).expect("child has parent edge")))
        .collect();
    ctx.num_queries += 1 + child_edges.len();

    // Collect each child piece by DFS restricted to the stamped set. The
    // stamp is "consumed" (reset to 0) as vertices are claimed so that the
    // leftover stamped vertices form T_0.
    let mut pieces: Vec<(NodeId, Vec<NodeId>)> = Vec::with_capacity(child_edges.len());
    let mut stack = Vec::new();
    for &(c, _) in &child_edges {
        let mut members = Vec::new();
        stack.push(c);
        ctx.stamp[c.index()] = 0;
        while let Some(u) = stack.pop() {
            members.push(u);
            for &w in ctx.tree.children(u) {
                if ctx.stamp[w.index()] == epoch {
                    ctx.stamp[w.index()] = 0;
                    stack.push(w);
                }
            }
        }
        pieces.push((c, members));
    }
    let t0: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|v| ctx.stamp[v.index()] == epoch)
        .collect();
    debug_assert!(t0.contains(&piece_root));
    debug_assert!(t0.contains(&split));

    let mut subcalls = Vec::new();
    let mut max_sub_depth = 0usize;
    let (t0_call, d0) = recurse(ctx, piece_root, t0);
    max_sub_depth = max_sub_depth.max(d0);
    if let Some(c) = t0_call {
        subcalls.push(c);
    }
    for (child, members) in pieces {
        let (call, d) = recurse(ctx, child, members);
        max_sub_depth = max_sub_depth.max(d);
        if let Some(c) = call {
            subcalls.push(c);
        }
    }

    (
        Some(DecompCall {
            piece_root,
            split_vertex: split,
            child_edges,
            size,
            subcalls,
        }),
        max_sub_depth + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path_graph, star_graph};
    use crate::tree::RootedTree;
    use crate::Topology;
    use std::collections::HashSet;

    fn decompose_tree(topo: &Topology, root: usize) -> (RootedTree, TreeDecomposition) {
        let rt = RootedTree::new(topo, NodeId::new(root)).unwrap();
        let d = decompose(&rt);
        (rt, d)
    }

    #[test]
    fn singleton_tree_has_no_calls() {
        let topo = Topology::builder(1).build();
        let (_, d) = decompose_tree(&topo, 0);
        assert!(d.root_call.is_none());
        assert_eq!(d.depth, 0);
        assert_eq!(d.num_queries, 0);
    }

    #[test]
    fn two_vertex_tree() {
        let topo = path_graph(2);
        let (_, d) = decompose_tree(&topo, 0);
        let call = d.root_call.as_ref().unwrap();
        assert_eq!(call.size, 2);
        assert_eq!(d.depth, 1);
        // Split vertex subtree must exceed half (1), so v* = root with
        // subtree 2; one child edge query plus the root-to-split query.
        assert_eq!(call.split_vertex, NodeId::new(0));
        assert_eq!(call.child_edges.len(), 1);
        assert_eq!(d.num_queries, 2);
    }

    #[test]
    fn split_vertex_satisfies_paper_invariant() {
        for n in [3usize, 5, 8, 13, 21, 64] {
            let topo = path_graph(n);
            let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
            let d = decompose(&rt);
            // Check the *top level* invariant against global subtree sizes
            // (the top piece is the whole tree).
            let call = d.root_call.as_ref().unwrap();
            let vstar = call.split_vertex;
            assert!(rt.subtree_size(vstar) > n / 2, "n={n}");
            for &c in rt.children(vstar) {
                assert!(rt.subtree_size(c) <= n / 2, "n={n}");
            }
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        for n in [2usize, 4, 16, 100, 257, 1000] {
            let topo = path_graph(n);
            let (_, d) = decompose_tree(&topo, 0);
            let bound = (n as f64).log2().ceil() as usize + 1;
            assert!(d.depth <= bound, "n={n}: depth {} > bound {bound}", d.depth);
        }
    }

    #[test]
    fn num_queries_at_most_2v() {
        for n in [2usize, 7, 33, 150] {
            let topo = path_graph(n);
            let (_, d) = decompose_tree(&topo, 0);
            assert!(d.num_queries <= 2 * n, "n={n}: {} queries", d.num_queries);
        }
        let topo = star_graph(50);
        let (_, d) = decompose_tree(&topo, 0);
        assert!(d.num_queries <= 100);
    }

    #[test]
    fn every_nonroot_vertex_gets_an_estimate() {
        // Every vertex except the root must appear exactly once as a child
        // in some call (that is where its estimate is assigned).
        for (topo, n) in [(path_graph(17), 17usize), (star_graph(9), 9)] {
            let (_, d) = decompose_tree(&topo, 0);
            let mut seen = vec![0u32; n];
            d.for_each_call(|call, _| {
                for &(c, _) in &call.child_edges {
                    seen[c.index()] += 1;
                }
            });
            assert_eq!(seen[0], 0, "root never assigned");
            for (v, &count) in seen.iter().enumerate().skip(1) {
                assert_eq!(count, 1, "vertex {v} assigned {count} times");
            }
        }
    }

    #[test]
    fn noise_terms_bounded_by_twice_depth() {
        for n in [2usize, 31, 64, 200] {
            let topo = path_graph(n);
            let (_, d) = decompose_tree(&topo, 0);
            let terms = d.noise_terms_per_vertex(n);
            let max = *terms.iter().max().unwrap();
            assert!(
                max as usize <= 2 * d.depth,
                "n={n}: max terms {max} > 2 * depth {}",
                d.depth
            );
            assert_eq!(terms[0], 0);
        }
    }

    #[test]
    fn level_edges_are_disjoint_within_levels() {
        // The sensitivity-1-per-level claim of Theorem 4.1.
        for n in [5usize, 16, 99, 256] {
            let topo = path_graph(n);
            let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
            let d = decompose(&rt);
            for (lvl, edges) in d.level_edge_usage(&rt).iter().enumerate() {
                let unique: HashSet<_> = edges.iter().collect();
                assert_eq!(
                    unique.len(),
                    edges.len(),
                    "n={n} level {lvl}: duplicate edge in level queries"
                );
            }
        }
    }

    #[test]
    fn star_decomposes_in_one_level() {
        let topo = star_graph(10);
        let (_, d) = decompose_tree(&topo, 0);
        // v* is the center; all leaves are children; T_0 = {center} and all
        // T_i singletons, so recursion ends after one level.
        assert_eq!(d.depth, 1);
        let call = d.root_call.as_ref().unwrap();
        assert_eq!(call.split_vertex, NodeId::new(0));
        assert_eq!(call.child_edges.len(), 9);
    }

    #[test]
    fn pieces_partition_the_tree() {
        let topo = path_graph(33);
        let (_, d) = decompose_tree(&topo, 0);
        let call = d.root_call.as_ref().unwrap();
        // Sum of subcall sizes plus singleton pieces equals total size:
        // every vertex is in exactly one sub-piece (T_0 keeps the root).
        // We verify sizes never exceed ceil(size/2).
        d.for_each_call(|c, _| {
            for sub in &c.subcalls {
                assert!(
                    sub.size <= c.size.div_ceil(2),
                    "piece {} in {}",
                    sub.size,
                    c.size
                );
            }
        });
        assert_eq!(call.size, 33);
    }
}
