//! Heavy-path (heavy-light) decomposition of a rooted tree.
//!
//! Used by the alternative tree-distance mechanism in `privpath-core`
//! (`tree_distance::hld`): every root-to-vertex path crosses at most
//! `log2 V` heavy paths, and every edge belongs to exactly one heavy path,
//! so releasing each heavy path with a path-graph mechanism gives another
//! polylog all-pairs tree-distance release — an ablation against the
//! paper's Algorithm 1.

use super::rooted::RootedTree;
use crate::{EdgeId, NodeId};

/// One heavy path: a maximal chain following heavy children, stored
/// top-down (closest to the root first).
#[derive(Clone, Debug)]
pub struct HeavyPath {
    /// Vertices of the chain, topmost first.
    pub vertices: Vec<NodeId>,
    /// The `vertices.len() - 1` edges joining consecutive chain vertices.
    pub edges: Vec<EdgeId>,
}

impl HeavyPath {
    /// Chain length in edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the chain is a single vertex.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// The heavy-path decomposition of a rooted tree.
#[derive(Clone, Debug)]
pub struct HeavyPathDecomposition {
    paths: Vec<HeavyPath>,
    /// For each vertex: which heavy path it belongs to.
    path_of: Vec<u32>,
    /// For each vertex: its position within its heavy path.
    pos_in_path: Vec<u32>,
}

impl HeavyPathDecomposition {
    /// Decomposes `tree` into heavy paths. Every vertex lies on exactly
    /// one path; every edge lies on exactly one path or joins a path head
    /// to its parent path (light edges are chains of length... no — every
    /// edge is *in* exactly one chain: light edges form singleton-step
    /// boundaries and are included as the first edge of the child's
    /// chain's connection — concretely we build chains so that **every
    /// edge belongs to exactly one chain**, by starting each chain at a
    /// vertex whose parent edge is light (or the root) and extending
    /// through heavy children).
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.num_nodes();
        // Heavy child of each vertex: the child with the largest subtree.
        let mut heavy_child: Vec<Option<NodeId>> = vec![None; n];
        for v in tree.preorder() {
            let mut best: Option<(usize, NodeId)> = None;
            for &c in tree.children(*v) {
                let size = tree.subtree_size(c);
                if best.is_none_or(|(bs, bc)| size > bs || (size == bs && c < bc)) {
                    best = Some((size, c));
                }
            }
            heavy_child[v.index()] = best.map(|(_, c)| c);
        }

        let mut paths: Vec<HeavyPath> = Vec::new();
        let mut path_of = vec![u32::MAX; n];
        let mut pos_in_path = vec![0u32; n];
        for &v in tree.preorder() {
            if path_of[v.index()] != u32::MAX {
                continue;
            }
            // v is a chain head: root, or its parent continued elsewhere.
            let path_idx = paths.len() as u32;
            let mut vertices = Vec::new();
            let mut edges = Vec::new();
            let mut cur = v;
            loop {
                path_of[cur.index()] = path_idx;
                pos_in_path[cur.index()] = vertices.len() as u32;
                vertices.push(cur);
                match heavy_child[cur.index()] {
                    Some(h) => {
                        edges.push(tree.parent_edge(h).expect("child has parent edge"));
                        cur = h;
                    }
                    None => break,
                }
            }
            paths.push(HeavyPath { vertices, edges });
        }
        HeavyPathDecomposition {
            paths,
            path_of,
            pos_in_path,
        }
    }

    /// The heavy paths.
    pub fn paths(&self) -> &[HeavyPath] {
        &self.paths
    }

    /// Index of the heavy path containing `v`.
    pub fn path_of(&self, v: NodeId) -> usize {
        self.path_of[v.index()] as usize
    }

    /// Position of `v` within its heavy path (0 = chain head).
    pub fn pos_in_path(&self, v: NodeId) -> usize {
        self.pos_in_path[v.index()] as usize
    }

    /// The head (topmost vertex) of `v`'s heavy path.
    pub fn head_of(&self, v: NodeId) -> NodeId {
        self.paths[self.path_of(v)].vertices[0]
    }

    /// Number of distinct heavy paths crossed by the root-to-`v` path —
    /// classically at most `log2 V + 1`.
    pub fn chains_to_root(&self, tree: &RootedTree, v: NodeId) -> usize {
        let mut count = 0;
        let mut cur = v;
        loop {
            count += 1;
            let head = self.head_of(cur);
            match tree.parent(head) {
                Some(p) => cur = p,
                None => break,
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{balanced_binary_tree, path_graph, random_tree_prufer, star_graph};
    use crate::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decomposition(topo: &Topology) -> (RootedTree, HeavyPathDecomposition) {
        let rt = RootedTree::new(topo, NodeId::new(0)).unwrap();
        let hld = HeavyPathDecomposition::new(&rt);
        (rt, hld)
    }

    #[test]
    fn path_graph_is_one_chain() {
        let topo = path_graph(10);
        let (_, hld) = decomposition(&topo);
        assert_eq!(hld.paths().len(), 1);
        assert_eq!(hld.paths()[0].len(), 9);
        assert_eq!(hld.head_of(NodeId::new(7)), NodeId::new(0));
    }

    #[test]
    fn star_has_one_heavy_chain_plus_singletons() {
        let topo = star_graph(6); // center 0, leaves 1..=5
        let (_, hld) = decomposition(&topo);
        // Chain from center through one leaf; other leaves are singleton
        // chains of zero edges... but singleton chains have no edges, so
        // the light edges to them are NOT in any chain. Verify the edge
        // partition property below instead on general trees where chains
        // absorb them. Here: 1 chain with 1 edge + 4 singleton chains.
        assert_eq!(hld.paths().len(), 5);
        let with_edges: usize = hld.paths().iter().map(|p| p.len()).sum();
        assert_eq!(with_edges, 1);
    }

    #[test]
    fn every_vertex_on_exactly_one_path() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [2usize, 10, 50, 200] {
            let topo = random_tree_prufer(n, &mut rng);
            let (_, hld) = decomposition(&topo);
            let mut seen = vec![false; n];
            for path in hld.paths() {
                for &v in &path.vertices {
                    assert!(!seen[v.index()], "vertex {v} on two paths");
                    seen[v.index()] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "n={n}: some vertex on no path");
        }
    }

    #[test]
    fn chain_edges_are_disjoint() {
        let mut rng = StdRng::seed_from_u64(78);
        let topo = random_tree_prufer(150, &mut rng);
        let (_, hld) = decomposition(&topo);
        let mut seen = vec![false; topo.num_edges()];
        for path in hld.paths() {
            for &e in &path.edges {
                assert!(!seen[e.index()], "edge {e} on two chains");
                seen[e.index()] = true;
            }
        }
    }

    #[test]
    fn chains_to_root_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(79);
        for n in [16usize, 64, 256, 1024] {
            let topo = random_tree_prufer(n, &mut rng);
            let (rt, hld) = decomposition(&topo);
            let bound = (n as f64).log2().floor() as usize + 1;
            for v in topo.nodes() {
                let chains = hld.chains_to_root(&rt, v);
                assert!(chains <= bound, "n={n} v={v}: {chains} chains > {bound}");
            }
        }
    }

    #[test]
    fn balanced_tree_chain_count() {
        let topo = balanced_binary_tree(31);
        let (rt, hld) = decomposition(&topo);
        // Deepest vertices cross at most log2(31)+1 = 5 chains.
        for v in topo.nodes() {
            assert!(hld.chains_to_root(&rt, v) <= 5);
        }
    }

    #[test]
    fn positions_are_consistent() {
        let mut rng = StdRng::seed_from_u64(80);
        let topo = random_tree_prufer(60, &mut rng);
        let (_, hld) = decomposition(&topo);
        for (pi, path) in hld.paths().iter().enumerate() {
            for (pos, &v) in path.vertices.iter().enumerate() {
                assert_eq!(hld.path_of(v), pi);
                assert_eq!(hld.pos_in_path(v), pos);
            }
        }
    }
}
