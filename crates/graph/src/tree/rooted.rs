//! Rooted tree representation.

use crate::{EdgeId, EdgeWeights, GraphError, NodeId, Topology};
use std::collections::VecDeque;

/// A tree topology rooted at a chosen vertex, with parent pointers, child
/// lists, depths, subtree sizes and a preorder traversal.
///
/// Construction verifies that the topology really is a tree: connected,
/// with exactly `V - 1` edges, no self-loops, and no parallel edges.
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
    subtree_size: Vec<u32>,
    /// Preorder: every vertex appears after its parent.
    preorder: Vec<NodeId>,
    /// Euler tour entry/exit counters for O(1) ancestor tests.
    tin: Vec<u32>,
    tout: Vec<u32>,
}

impl RootedTree {
    /// Roots the tree topology `topo` at `root`.
    ///
    /// # Errors
    /// * [`GraphError::NodeOutOfRange`] if `root` is invalid.
    /// * [`GraphError::NotATree`] if `topo` is not a tree (wrong edge
    ///   count, disconnected, self-loop, or parallel edges).
    pub fn new(topo: &Topology, root: NodeId) -> Result<Self, GraphError> {
        topo.check_node(root)?;
        let n = topo.num_nodes();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if topo.num_edges() != n - 1 {
            return Err(GraphError::NotATree {
                reason: "edge count is not V - 1",
            });
        }
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut depth = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut preorder = Vec::with_capacity(n);
        let mut queue = VecDeque::new();
        visited[root.index()] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            preorder.push(u);
            for (v, e) in topo.neighbors(u) {
                if v == u {
                    return Err(GraphError::NotATree {
                        reason: "self-loop present",
                    });
                }
                if Some(e) == parent_edge[u.index()] {
                    continue;
                }
                if visited[v.index()] {
                    return Err(GraphError::NotATree {
                        reason: "cycle or parallel edge present",
                    });
                }
                visited[v.index()] = true;
                parent[v.index()] = Some(u);
                parent_edge[v.index()] = Some(e);
                children[u.index()].push(v);
                depth[v.index()] = depth[u.index()] + 1;
                queue.push_back(v);
            }
        }
        if preorder.len() != n {
            return Err(GraphError::NotATree {
                reason: "graph is disconnected",
            });
        }

        // Subtree sizes: accumulate in reverse BFS order (children before
        // parents).
        let mut subtree_size = vec![1u32; n];
        for &v in preorder.iter().rev() {
            if let Some(p) = parent[v.index()] {
                subtree_size[p.index()] += subtree_size[v.index()];
            }
        }

        // Euler in/out times by iterative DFS.
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut timer = 0u32;
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((v, done)) = stack.pop() {
            if done {
                tout[v.index()] = timer;
                timer += 1;
                continue;
            }
            tin[v.index()] = timer;
            timer += 1;
            stack.push((v, true));
            for &c in children[v.index()].iter().rev() {
                stack.push((c, false));
            }
        }

        Ok(RootedTree {
            root,
            parent,
            parent_edge,
            children,
            depth,
            subtree_size,
            preorder,
            tin,
            tout,
        })
    }

    /// The root vertex.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v`, `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The edge joining `v` to its parent, `None` for the root.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// Children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Hop depth of `v` below the root.
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Size of the subtree rooted at `v` (including `v`).
    pub fn subtree_size(&self, v: NodeId) -> usize {
        self.subtree_size[v.index()] as usize
    }

    /// Preorder traversal (every vertex after its parent).
    pub fn preorder(&self) -> &[NodeId] {
        &self.preorder
    }

    /// Whether `a` is an ancestor of `b` (inclusive: a vertex is its own
    /// ancestor). `O(1)` via Euler-tour intervals.
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.tin[a.index()] <= self.tin[b.index()] && self.tout[b.index()] <= self.tout[a.index()]
    }
}

/// Weighted depth of every vertex: the tree distance from the root under
/// `weights`. Because the graph is a tree, the root-to-`v` path is unique,
/// so this *is* the single-source distance vector that Algorithm 1
/// approximates privately.
///
/// # Errors
/// Returns [`GraphError::WeightsLengthMismatch`] if `weights` does not
/// match the underlying topology's edge count.
pub fn weighted_depths(tree: &RootedTree, weights: &EdgeWeights) -> Result<Vec<f64>, GraphError> {
    if weights.len() != tree.num_nodes() - 1 {
        return Err(GraphError::WeightsLengthMismatch {
            expected: tree.num_nodes() - 1,
            got: weights.len(),
        });
    }
    let mut wd = vec![0.0; tree.num_nodes()];
    for &v in tree.preorder() {
        if let (Some(p), Some(e)) = (tree.parent(v), tree.parent_edge(v)) {
            wd[v.index()] = wd[p.index()] + weights.get(e);
        }
    }
    Ok(wd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path_graph, star_graph};

    #[test]
    fn path_rooted_at_end() {
        let topo = path_graph(5);
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        assert_eq!(rt.root(), NodeId::new(0));
        assert_eq!(rt.depth(NodeId::new(4)), 4);
        assert_eq!(rt.parent(NodeId::new(3)), Some(NodeId::new(2)));
        assert_eq!(rt.subtree_size(NodeId::new(0)), 5);
        assert_eq!(rt.subtree_size(NodeId::new(2)), 3);
        assert_eq!(rt.children(NodeId::new(2)), &[NodeId::new(3)]);
    }

    #[test]
    fn star_rooted_at_center_and_leaf() {
        let topo = star_graph(5); // center 0, leaves 1..=4
        let center = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        assert_eq!(center.children(NodeId::new(0)).len(), 4);
        assert_eq!(center.depth(NodeId::new(3)), 1);

        let leaf = RootedTree::new(&topo, NodeId::new(1)).unwrap();
        assert_eq!(leaf.depth(NodeId::new(0)), 1);
        assert_eq!(leaf.depth(NodeId::new(2)), 2);
        assert_eq!(leaf.subtree_size(NodeId::new(0)), 4);
    }

    #[test]
    fn preorder_parents_first() {
        let topo = path_graph(6);
        let rt = RootedTree::new(&topo, NodeId::new(3)).unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; 6];
            for (i, &v) in rt.preorder().iter().enumerate() {
                pos[v.index()] = i;
            }
            pos
        };
        for v in topo.nodes() {
            if let Some(p) = rt.parent(v) {
                assert!(pos[p.index()] < pos[v.index()]);
            }
        }
    }

    #[test]
    fn ancestor_checks() {
        let topo = path_graph(5);
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        assert!(rt.is_ancestor(NodeId::new(0), NodeId::new(4)));
        assert!(rt.is_ancestor(NodeId::new(2), NodeId::new(2)));
        assert!(!rt.is_ancestor(NodeId::new(4), NodeId::new(0)));
    }

    #[test]
    fn non_trees_rejected() {
        // Cycle: wrong edge count.
        let topo = crate::generators::cycle_graph(4);
        assert!(matches!(
            RootedTree::new(&topo, NodeId::new(0)),
            Err(GraphError::NotATree { .. })
        ));

        // Disconnected with V - 1 edges (one doubled).
        let mut b = Topology::builder(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(2), NodeId::new(3));
        let topo = b.build();
        assert!(matches!(
            RootedTree::new(&topo, NodeId::new(0)),
            Err(GraphError::NotATree { .. })
        ));

        // Self loop.
        let mut b = Topology::builder(2);
        b.add_edge(NodeId::new(0), NodeId::new(0));
        let topo = b.build();
        assert!(matches!(
            RootedTree::new(&topo, NodeId::new(0)),
            Err(GraphError::NotATree { .. })
        ));
    }

    #[test]
    fn single_vertex_tree() {
        let topo = Topology::builder(1).build();
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        assert_eq!(rt.num_nodes(), 1);
        assert_eq!(rt.subtree_size(NodeId::new(0)), 1);
        assert!(rt.children(NodeId::new(0)).is_empty());
    }

    #[test]
    fn weighted_depths_accumulate() {
        let topo = path_graph(4);
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        let w = EdgeWeights::new(vec![1.0, 2.0, 4.0]).unwrap();
        let wd = weighted_depths(&rt, &w).unwrap();
        assert_eq!(wd, vec![0.0, 1.0, 3.0, 7.0]);
    }

    #[test]
    fn weighted_depths_rejects_bad_length() {
        let topo = path_graph(4);
        let rt = RootedTree::new(&topo, NodeId::new(0)).unwrap();
        assert!(weighted_depths(&rt, &EdgeWeights::zeros(5)).is_err());
    }
}
