//! # privpath-graph — graph substrate for the private edge-weight model
//!
//! This crate implements, from scratch, every graph primitive needed by
//! Sealfon's *Shortest Paths and Distances with Differential Privacy*
//! (PODS 2016): a weighted multigraph representation that **separates the
//! public topology from the private edge weights**, shortest-path and
//! spanning-tree algorithms, minimum-weight perfect matching, rooted-tree
//! machinery (LCA, the split-vertex decomposition of the paper's Figure 1),
//! k-coverings (Meir–Moon, Lemma 4.4), and a library of graph generators
//! including the lower-bound gadgets of Figures 2 and 3.
//!
//! ## Topology / weight separation
//!
//! In the paper's model the topology `G = (V, E)` is public while the weight
//! function `w : E -> R+` is the private database. The API mirrors this:
//!
//! * [`Topology`] is an immutable, weight-free multigraph. Any computation
//!   that takes only a `&Topology` provably does not depend on the private
//!   data.
//! * [`EdgeWeights`] is a dense weight vector indexed by [`EdgeId`]. It is
//!   handed separately to each algorithm that needs it.
//!
//! ## Quick example
//!
//! ```
//! use privpath_graph::{Topology, EdgeWeights, NodeId, algo::dijkstra};
//!
//! let mut b = Topology::builder(3);
//! let e01 = b.add_edge(NodeId::new(0), NodeId::new(1));
//! let e12 = b.add_edge(NodeId::new(1), NodeId::new(2));
//! let e02 = b.add_edge(NodeId::new(0), NodeId::new(2));
//! let topo = b.build();
//!
//! let mut w = EdgeWeights::zeros(topo.num_edges());
//! w.set(e01, 1.0);
//! w.set(e12, 1.0);
//! w.set(e02, 5.0);
//!
//! let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
//! assert_eq!(spt.distance(NodeId::new(2)), Some(2.0));
//! let path = spt.path_to(NodeId::new(2)).unwrap();
//! assert_eq!(path.hops(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod ids;
mod path;
mod topology;
mod weights;

pub mod algo;
pub mod covering;
pub mod generators;
pub mod io;
pub mod tree;

pub use builder::TopologyBuilder;
pub use error::GraphError;
pub use ids::{EdgeId, NodeId};
pub use path::Path;
pub use topology::Topology;
pub use weights::EdgeWeights;
