//! Reusable single-source search state.
//!
//! Every mechanism in the workspace bottoms out in repeated Dijkstra runs
//! over the same CSR topology. A fresh run used to allocate five vectors of
//! length `V`; [`DijkstraWorkspace`] keeps those buffers alive and uses
//! generation-stamped visited marks so starting the next source costs
//! `O(touched)` bookkeeping, not `O(V)` clearing plus allocator traffic.
//!
//! This module is on the serving read path (geo queries replay Dijkstra per
//! cache miss), so it is inside `privpath-lint`'s panic-freedom scope: no
//! `unwrap`/`expect`/`panic!` in non-test code.

use super::dijkstra::ShortestPathTree;
use crate::{EdgeId, EdgeWeights, NodeId, Topology};
use privpath_obs::{Counter, MetricRegistry};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Cached handles into the global registry; looked up once per process
/// so the per-run cost is a pair of relaxed `fetch_add`s.
struct SearchMetrics {
    /// Runs that reused already-sized buffers (generation bump only).
    generation_reuses: Counter,
    /// Vertices settled across all runs — the real unit of search work.
    settled_nodes: Counter,
}

fn search_metrics() -> &'static SearchMetrics {
    static METRICS: OnceLock<SearchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = MetricRegistry::global();
        SearchMetrics {
            generation_reuses: reg.counter("search_workspace_generation_reuses_total"),
            settled_nodes: reg.counter("search_settled_nodes_total"),
        }
    })
}

/// Min-heap entry ordered by distance. `f64::total_cmp` is safe because
/// weights are validated finite and nonnegative before the heap is used.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) dist: f64,
    pub(crate) node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on distance; tie-break on node for
        // determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable buffers for repeated Dijkstra runs.
///
/// A vertex's `dist`/`parent` entries are only meaningful when its stamp
/// matches the current generation, so "resetting" for the next source is a
/// single generation bump — no `O(V)` clear pass, and the heap/buffer
/// allocations amortize away across runs.
///
/// ```
/// use privpath_graph::{Topology, EdgeWeights, NodeId};
/// use privpath_graph::algo::{dijkstra_into, DijkstraWorkspace};
///
/// let mut b = Topology::builder(3);
/// b.add_edge(NodeId::new(0), NodeId::new(1));
/// b.add_edge(NodeId::new(1), NodeId::new(2));
/// let topo = b.build();
/// let w = EdgeWeights::constant(2, 1.0);
///
/// let mut ws = DijkstraWorkspace::new();
/// for s in topo.nodes() {
///     dijkstra_into(&mut ws, &topo, &w, s).unwrap();
///     assert_eq!(ws.distance(s), Some(0.0));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct DijkstraWorkspace {
    /// Number of nodes covered by the most recent run.
    n: usize,
    /// Source of the most recent run (`NodeId 0` before any run).
    source: NodeId,
    /// Tentative distances; valid iff `stamp[v] == gen`.
    dist: Vec<f64>,
    /// Joint predecessor `(node, edge)`; valid iff `stamp[v] == gen`.
    parent: Vec<Option<(NodeId, EdgeId)>>,
    /// Generation stamp marking `dist`/`parent` entries as live.
    stamp: Vec<u32>,
    /// Generation stamp marking vertices as settled (popped final).
    settled: Vec<u32>,
    /// Current generation; bumped once per run.
    gen: u32,
    heap: BinaryHeap<HeapEntry>,
}

impl Default for DijkstraWorkspace {
    fn default() -> Self {
        DijkstraWorkspace::new()
    }
}

impl DijkstraWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first run.
    pub fn new() -> Self {
        DijkstraWorkspace {
            n: 0,
            source: NodeId::new(0),
            dist: Vec::new(),
            parent: Vec::new(),
            stamp: Vec::new(),
            settled: Vec::new(),
            gen: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Prepares the buffers for a run over `n` nodes and opens a new
    /// generation.
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, None);
            self.stamp.resize(n, 0);
            self.settled.resize(n, 0);
        } else if n > 0 {
            search_metrics().generation_reuses.inc();
        }
        self.n = n;
        if self.gen == u32::MAX {
            // Generation counter wrapped: invalidate everything the slow way
            // (once every 2^32 runs).
            self.stamp.fill(0);
            self.settled.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.heap.clear();
    }

    /// Runs Dijkstra from `source`, assuming the inputs were already
    /// validated (see
    /// [`validate_dijkstra_inputs`](super::validate_dijkstra_inputs)):
    /// `weights` matches `topo`, is nonnegative, and `source` is in range.
    ///
    /// Relaxation order and tie-breaking are identical to
    /// [`dijkstra`](super::dijkstra), so results are bit-for-bit equal to a
    /// fresh run.
    pub fn run_unchecked(&mut self, topo: &Topology, weights: &EdgeWeights, source: NodeId) {
        self.begin(topo.num_nodes());
        self.source = source;
        let gen = self.gen;
        let s = source.index();
        self.dist[s] = 0.0;
        self.parent[s] = None;
        self.stamp[s] = gen;
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        let mut settled_count = 0u64;
        while let Some(HeapEntry { dist: d, node: u }) = self.heap.pop() {
            let ui = u.index();
            if self.settled[ui] == gen {
                continue;
            }
            self.settled[ui] = gen;
            settled_count += 1;
            for (v, e) in topo.neighbors(u) {
                let vi = v.index();
                let nd = d + weights.get(e);
                if self.stamp[vi] != gen || nd < self.dist[vi] {
                    self.dist[vi] = nd;
                    self.parent[vi] = Some((u, e));
                    self.stamp[vi] = gen;
                    self.heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
        search_metrics().settled_nodes.inc_by(settled_count);
    }

    /// Number of nodes covered by the most recent run (0 before any run).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Source of the most recent run, or `None` before any run.
    pub fn source(&self) -> Option<NodeId> {
        (self.n > 0).then_some(self.source)
    }

    /// Distance from the last run's source to `v`, or `None` if `v` is
    /// unreachable or out of range.
    pub fn distance(&self, v: NodeId) -> Option<f64> {
        let i = v.index();
        (i < self.n && self.stamp[i] == self.gen).then(|| self.dist[i])
    }

    /// Writes the full distance row of the last run into `out`
    /// (`f64::INFINITY` marks unreachable vertices), resizing it to
    /// [`num_nodes`](Self::num_nodes).
    pub fn write_distances(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n).map(|i| {
            if self.stamp[i] == self.gen {
                self.dist[i]
            } else {
                f64::INFINITY
            }
        }));
    }

    /// The full distance row of the last run as a fresh vector.
    pub fn distances(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.write_distances(&mut out);
        out
    }

    /// Materializes the last run as an owned [`ShortestPathTree`].
    ///
    /// Before any run this returns a degenerate zero-node tree.
    pub fn tree(&self) -> ShortestPathTree {
        let mut dist = vec![f64::INFINITY; self.n];
        let mut parent = vec![None; self.n];
        for i in 0..self.n {
            if self.stamp[i] == self.gen {
                dist[i] = self.dist[i];
                parent[i] = self.parent[i];
            }
        }
        ShortestPathTree::new(self.source, dist, parent)
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<DijkstraWorkspace> = RefCell::new(DijkstraWorkspace::new());
}

/// Runs `f` with this thread's shared [`DijkstraWorkspace`].
///
/// Query paths that sit behind `&self` (release oracles, the store's
/// snapshot cache, server workers) use this to get buffer reuse without
/// threading a workspace through their signatures. If the thread-local is
/// already borrowed (a reentrant call from inside `f`), a fresh temporary
/// workspace is used instead so the call still succeeds.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut DijkstraWorkspace) -> R) -> R {
    THREAD_WORKSPACE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut DijkstraWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra_into;

    fn line(n: usize) -> (Topology, EdgeWeights) {
        let mut b = Topology::builder(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        let topo = b.build();
        let w = EdgeWeights::constant(n - 1, 1.0);
        (topo, w)
    }

    #[test]
    fn fresh_workspace_reports_nothing() {
        let ws = DijkstraWorkspace::new();
        assert_eq!(ws.num_nodes(), 0);
        assert_eq!(ws.source(), None);
        assert!(ws.distances().is_empty());
    }

    #[test]
    fn distances_match_tree_distances() {
        let (topo, w) = line(6);
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &topo, &w, NodeId::new(2)).unwrap();
        let row = ws.distances();
        let tree = ws.tree();
        assert_eq!(row, tree.distances());
        assert_eq!(ws.source(), Some(NodeId::new(2)));
    }

    #[test]
    fn unreachable_nodes_are_infinite_in_row_and_none_in_lookup() {
        let mut b = Topology::builder(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let w = EdgeWeights::zeros(1);
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(ws.distance(NodeId::new(3)), None);
        assert!(ws.distances()[3].is_infinite());
        // Out-of-range lookups are None, not a panic.
        assert_eq!(ws.distance(NodeId::new(17)), None);
    }

    #[test]
    fn workspace_shrinks_and_grows_across_topologies() {
        let (big, wb) = line(10);
        let (small, ws_) = line(3);
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &big, &wb, NodeId::new(0)).unwrap();
        assert_eq!(ws.num_nodes(), 10);
        dijkstra_into(&mut ws, &small, &ws_, NodeId::new(0)).unwrap();
        assert_eq!(ws.num_nodes(), 3);
        assert_eq!(ws.distances().len(), 3);
        dijkstra_into(&mut ws, &big, &wb, NodeId::new(9)).unwrap();
        assert_eq!(ws.distance(NodeId::new(0)), Some(9.0));
    }

    #[test]
    fn thread_workspace_is_reused_and_reentrant_safe() {
        let (topo, w) = line(4);
        let d = with_thread_workspace(|ws| {
            ws.run_unchecked(&topo, &w, NodeId::new(0));
            // Reentrant borrow falls back to a temporary workspace.
            let inner = with_thread_workspace(|ws2| {
                ws2.run_unchecked(&topo, &w, NodeId::new(3));
                ws2.distance(NodeId::new(0))
            });
            assert_eq!(inner, Some(3.0));
            // The outer workspace's run is untouched by the inner call.
            ws.distance(NodeId::new(3))
        });
        assert_eq!(d, Some(3.0));
    }
}
