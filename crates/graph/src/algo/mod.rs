//! Graph algorithms over `(Topology, EdgeWeights)` pairs.
//!
//! Everything here is classical and deterministic; the differential-privacy
//! layer (crate `privpath-core`) composes these as *post-processing* steps
//! over released noisy weights, which is what makes e.g. Algorithm 3's
//! "release noisy weights, then run Dijkstra" private.

mod bellman_ford;
mod bfs;
mod components;
mod dijkstra;
mod floyd_warshall;
mod kruskal;
pub mod matching;
mod parallel;
mod prim;
mod union_find;
mod workspace;

pub use bellman_ford::bellman_ford;
pub use bfs::{
    double_sweep_farthest, hop_distances, hop_eccentricity, multi_source_hop_assignment,
    CoverAssignment,
};
pub use components::{bipartite_coloring, connected_components, is_connected, ComponentLabels};
pub use dijkstra::{
    all_pairs_dijkstra, dijkstra, dijkstra_into, dijkstra_unchecked, validate_dijkstra_inputs,
    ShortestPathTree,
};
pub use floyd_warshall::{floyd_warshall, DistanceMatrix};
pub use kruskal::{minimum_spanning_forest, SpanningForest};
pub use matching::{
    greedy_min_weight_maximal_matching, max_weight_matching, max_weight_perfect_matching,
    min_weight_matching, min_weight_perfect_matching, Matching,
};
pub use parallel::{
    default_search_threads, multi_source_dijkstra, multi_source_dijkstra_unchecked,
    multi_source_distances, multi_source_distances_unchecked, set_default_search_threads,
};
pub use prim::prim_spanning_forest;
pub use union_find::UnionFind;
pub use workspace::{with_thread_workspace, DijkstraWorkspace};
