//! Dijkstra's algorithm with path extraction.
//!
//! Three entry points, from most to least convenient:
//!
//! * [`dijkstra`] — validate inputs, run one source, return a
//!   [`ShortestPathTree`]. Allocates per call.
//! * [`dijkstra_into`] — validate inputs, run one source into a caller-owned
//!   [`DijkstraWorkspace`](super::DijkstraWorkspace) so repeated searches
//!   reuse buffers.
//! * [`multi_source_dijkstra`](super::multi_source_dijkstra) — validate
//!   once, fan a batch of sources over a thread pool with bit-for-bit
//!   deterministic outputs.

use super::workspace::DijkstraWorkspace;
use crate::{EdgeId, EdgeWeights, GraphError, NodeId, Path, Topology};

/// A shortest-path tree rooted at a source vertex: the output of
/// [`dijkstra`] (and [`bellman_ford`](crate::algo::bellman_ford)).
///
/// Stores, for every vertex, the distance from the source and the last edge
/// of some shortest path, from which full paths are reconstructed on demand.
/// The predecessor node and edge are stored jointly as
/// `Option<(NodeId, EdgeId)>`, so "parent node set but parent edge missing"
/// is unrepresentable and path reconstruction cannot panic.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<f64>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPathTree {
    pub(crate) fn new(
        source: NodeId,
        dist: Vec<f64>,
        parent: Vec<Option<(NodeId, EdgeId)>>,
    ) -> Self {
        ShortestPathTree {
            source,
            dist,
            parent,
        }
    }

    /// The source vertex.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `v`, or `None` if unreachable.
    pub fn distance(&self, v: NodeId) -> Option<f64> {
        let d = self.dist[v.index()];
        d.is_finite().then_some(d)
    }

    /// Raw distance slice (`f64::INFINITY` marks unreachable vertices).
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Whether `v` is reachable from the source.
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// The predecessor edge of `v` on its shortest path, if any.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent[v.index()].map(|(_, e)| e)
    }

    /// Reconstructs a shortest path from the source to `v`.
    ///
    /// Returns `None` if `v` is unreachable. The path for `v == source` is
    /// the trivial single-vertex path.
    pub fn path_to(&self, v: NodeId) -> Option<Path> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut nodes = vec![v];
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent[cur.index()] {
            edges.push(e);
            nodes.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        nodes.reverse();
        edges.reverse();
        Some(Path::new(nodes, edges))
    }
}

/// Validates the `(topo, weights)` pair for Dijkstra: length match and no
/// negative weights.
///
/// Batch drivers call this **once** and then use the unchecked entry points
/// ([`dijkstra_unchecked`], [`DijkstraWorkspace::run_unchecked`]) per
/// source, instead of paying the `O(E)` scan on every run.
///
/// # Errors
/// * [`GraphError::WeightsLengthMismatch`] if `weights` does not match
///   `topo`.
/// * [`GraphError::NegativeWeight`] if any weight is negative.
pub fn validate_dijkstra_inputs(topo: &Topology, weights: &EdgeWeights) -> Result<(), GraphError> {
    weights.validate_for(topo)?;
    for (e, w) in weights.iter() {
        if w < 0.0 {
            return Err(GraphError::NegativeWeight { edge: e, value: w });
        }
    }
    Ok(())
}

/// Single-source shortest paths with nonnegative weights.
///
/// Runs in `O((V + E) log V)` using a binary heap with lazy deletion.
///
/// # Errors
/// * [`GraphError::WeightsLengthMismatch`] if `weights` does not match
///   `topo`.
/// * [`GraphError::NodeOutOfRange`] if `source` is invalid.
/// * [`GraphError::NegativeWeight`] if any weight is negative (use
///   [`bellman_ford`](crate::algo::bellman_ford) instead, or clamp first).
pub fn dijkstra(
    topo: &Topology,
    weights: &EdgeWeights,
    source: NodeId,
) -> Result<ShortestPathTree, GraphError> {
    validate_dijkstra_inputs(topo, weights)?;
    topo.check_node(source)?;
    Ok(dijkstra_unchecked(topo, weights, source))
}

/// Runs Dijkstra from `source` into a reusable workspace, validating the
/// inputs first.
///
/// The workspace keeps its buffers between calls, so a loop over sources
/// performs `O(touched)` re-initialization per run instead of allocating
/// five fresh vectors. Read the results through
/// [`DijkstraWorkspace::distance`], [`DijkstraWorkspace::distances`], or
/// [`DijkstraWorkspace::tree`].
///
/// # Errors
/// Same preconditions as [`dijkstra`].
pub fn dijkstra_into(
    ws: &mut DijkstraWorkspace,
    topo: &Topology,
    weights: &EdgeWeights,
    source: NodeId,
) -> Result<(), GraphError> {
    validate_dijkstra_inputs(topo, weights)?;
    topo.check_node(source)?;
    ws.run_unchecked(topo, weights, source);
    Ok(())
}

/// Dijkstra without precondition checks.
///
/// The caller must have already established that `weights` matches `topo`
/// and is nonnegative (e.g. via [`validate_dijkstra_inputs`], or because the
/// weights were clamped at construction); `source` must be in range. Batch
/// loops use this to avoid re-scanning weights per source.
pub fn dijkstra_unchecked(
    topo: &Topology,
    weights: &EdgeWeights,
    source: NodeId,
) -> ShortestPathTree {
    let mut ws = DijkstraWorkspace::new();
    ws.run_unchecked(topo, weights, source);
    ws.tree()
}

/// Shortest-path trees from every vertex (`V` runs of Dijkstra).
///
/// Validates once up front, then fans the per-source runs over the default
/// search thread pool (see
/// [`set_default_search_threads`](super::set_default_search_threads)); the
/// result is bit-for-bit identical regardless of thread count.
///
/// # Errors
/// Same preconditions as [`dijkstra`].
pub fn all_pairs_dijkstra(
    topo: &Topology,
    weights: &EdgeWeights,
) -> Result<Vec<ShortestPathTree>, GraphError> {
    let sources: Vec<NodeId> = topo.nodes().collect();
    super::multi_source_dijkstra(topo, weights, &sources, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 --1-- 1 --1-- 2
    ///  \_____5______/
    fn diamond() -> (Topology, EdgeWeights) {
        let mut b = Topology::builder(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        b.add_edge(NodeId::new(0), NodeId::new(2));
        let topo = b.build();
        let w = EdgeWeights::new(vec![1.0, 1.0, 5.0]).unwrap();
        (topo, w)
    }

    #[test]
    fn shortest_path_prefers_two_hops() {
        let (topo, w) = diamond();
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(spt.distance(NodeId::new(2)), Some(2.0));
        let p = spt.path_to(NodeId::new(2)).unwrap();
        assert_eq!(p.hops(), 2);
        assert!(p.validate(&topo).is_ok());
        assert!((w.path_weight(&p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn direct_edge_wins_when_cheaper() {
        let (topo, _) = diamond();
        let w = EdgeWeights::new(vec![3.0, 3.0, 5.0]).unwrap();
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(spt.distance(NodeId::new(2)), Some(5.0));
        assert_eq!(spt.path_to(NodeId::new(2)).unwrap().hops(), 1);
    }

    #[test]
    fn source_distance_is_zero_and_trivial_path() {
        let (topo, w) = diamond();
        let spt = dijkstra(&topo, &w, NodeId::new(1)).unwrap();
        assert_eq!(spt.distance(NodeId::new(1)), Some(0.0));
        assert_eq!(spt.path_to(NodeId::new(1)).unwrap().hops(), 0);
    }

    #[test]
    fn unreachable_vertex_is_none() {
        let mut b = Topology::builder(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let w = EdgeWeights::zeros(1);
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(spt.distance(NodeId::new(2)), None);
        assert!(spt.path_to(NodeId::new(2)).is_none());
        assert!(!spt.is_reachable(NodeId::new(2)));
    }

    #[test]
    fn negative_weight_rejected() {
        let (topo, _) = diamond();
        let w = EdgeWeights::new(vec![1.0, -0.1, 5.0]).unwrap();
        assert!(matches!(
            dijkstra(&topo, &w, NodeId::new(0)),
            Err(GraphError::NegativeWeight { .. })
        ));
    }

    #[test]
    fn parallel_edges_take_lighter() {
        let mut b = Topology::builder(2);
        let heavy = b.add_edge(NodeId::new(0), NodeId::new(1));
        let light = b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let mut w = EdgeWeights::zeros(2);
        w.set(heavy, 2.0);
        w.set(light, 1.0);
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        let p = spt.path_to(NodeId::new(1)).unwrap();
        assert_eq!(p.edges(), &[light]);
    }

    #[test]
    fn directed_respects_orientation() {
        let mut b = Topology::builder_directed(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let w = EdgeWeights::constant(1, 1.0);
        let fwd = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(fwd.distance(NodeId::new(1)), Some(1.0));
        let back = dijkstra(&topo, &w, NodeId::new(1)).unwrap();
        assert_eq!(back.distance(NodeId::new(0)), None);
    }

    #[test]
    fn zero_weight_edges_ok() {
        let (topo, _) = diamond();
        let w = EdgeWeights::zeros(3);
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(spt.distance(NodeId::new(2)), Some(0.0));
    }

    #[test]
    fn all_pairs_is_symmetric_for_undirected() {
        let (topo, w) = diamond();
        let trees = all_pairs_dijkstra(&topo, &w).unwrap();
        for u in topo.nodes() {
            for v in topo.nodes() {
                assert_eq!(trees[u.index()].distance(v), trees[v.index()].distance(u));
            }
        }
    }

    #[test]
    fn mismatched_weights_rejected() {
        let (topo, _) = diamond();
        let w = EdgeWeights::zeros(2);
        assert!(matches!(
            dijkstra(&topo, &w, NodeId::new(0)),
            Err(GraphError::WeightsLengthMismatch { .. })
        ));
    }

    #[test]
    fn dijkstra_into_reuses_workspace_across_sources() {
        let (topo, w) = diamond();
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(ws.distance(NodeId::new(2)), Some(2.0));
        dijkstra_into(&mut ws, &topo, &w, NodeId::new(2)).unwrap();
        assert_eq!(ws.distance(NodeId::new(0)), Some(2.0));
        // Stale state from the previous run must not leak through.
        assert_eq!(ws.distance(NodeId::new(2)), Some(0.0));
        assert_eq!(ws.tree().source(), NodeId::new(2));
    }

    #[test]
    fn workspace_tree_matches_fresh_dijkstra() {
        let (topo, w) = diamond();
        let fresh = dijkstra(&topo, &w, NodeId::new(1)).unwrap();
        let mut ws = DijkstraWorkspace::new();
        // Run from another source first to dirty the buffers.
        dijkstra_into(&mut ws, &topo, &w, NodeId::new(0)).unwrap();
        dijkstra_into(&mut ws, &topo, &w, NodeId::new(1)).unwrap();
        let reused = ws.tree();
        for v in topo.nodes() {
            assert_eq!(fresh.distance(v), reused.distance(v));
            assert_eq!(fresh.parent_edge(v), reused.parent_edge(v));
        }
    }
}
