//! Dijkstra's algorithm with path extraction.

use crate::{EdgeId, EdgeWeights, GraphError, NodeId, Path, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A shortest-path tree rooted at a source vertex: the output of
/// [`dijkstra`] (and [`bellman_ford`](crate::algo::bellman_ford)).
///
/// Stores, for every vertex, the distance from the source and the last edge
/// of some shortest path, from which full paths are reconstructed on demand.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<f64>,
    parent_node: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
}

impl ShortestPathTree {
    pub(crate) fn new(
        source: NodeId,
        dist: Vec<f64>,
        parent_node: Vec<Option<NodeId>>,
        parent_edge: Vec<Option<EdgeId>>,
    ) -> Self {
        ShortestPathTree {
            source,
            dist,
            parent_node,
            parent_edge,
        }
    }

    /// The source vertex.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `v`, or `None` if unreachable.
    pub fn distance(&self, v: NodeId) -> Option<f64> {
        let d = self.dist[v.index()];
        d.is_finite().then_some(d)
    }

    /// Raw distance slice (`f64::INFINITY` marks unreachable vertices).
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Whether `v` is reachable from the source.
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// The predecessor edge of `v` on its shortest path, if any.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// Reconstructs a shortest path from the source to `v`.
    ///
    /// Returns `None` if `v` is unreachable. The path for `v == source` is
    /// the trivial single-vertex path.
    pub fn path_to(&self, v: NodeId) -> Option<Path> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut nodes = vec![v];
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some(p) = self.parent_node[cur.index()] {
            edges.push(self.parent_edge[cur.index()].expect("parent edge set with parent node"));
            nodes.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        nodes.reverse();
        edges.reverse();
        Some(Path::new(nodes, edges))
    }
}

/// Min-heap entry ordered by distance. `f64::total_cmp` is safe because
/// weights are validated finite and nonnegative before the heap is used.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on distance; tie-break on node for
        // determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths with nonnegative weights.
///
/// Runs in `O((V + E) log V)` using a binary heap with lazy deletion.
///
/// # Errors
/// * [`GraphError::WeightsLengthMismatch`] if `weights` does not match
///   `topo`.
/// * [`GraphError::NodeOutOfRange`] if `source` is invalid.
/// * [`GraphError::NegativeWeight`] if any weight is negative (use
///   [`bellman_ford`](crate::algo::bellman_ford) instead, or clamp first).
pub fn dijkstra(
    topo: &Topology,
    weights: &EdgeWeights,
    source: NodeId,
) -> Result<ShortestPathTree, GraphError> {
    weights.validate_for(topo)?;
    topo.check_node(source)?;
    for (e, w) in weights.iter() {
        if w < 0.0 {
            return Err(GraphError::NegativeWeight { edge: e, value: w });
        }
    }
    Ok(dijkstra_unchecked(topo, weights, source))
}

/// Dijkstra without precondition checks (weights already validated by the
/// caller). Used internally to avoid re-scanning weights in all-pairs loops.
pub(crate) fn dijkstra_unchecked(
    topo: &Topology,
    weights: &EdgeWeights,
    source: NodeId,
) -> ShortestPathTree {
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent_node = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        for (v, e) in topo.neighbors(u) {
            let nd = d + weights.get(e);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent_node[v.index()] = Some(u);
                parent_edge[v.index()] = Some(e);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    ShortestPathTree::new(source, dist, parent_node, parent_edge)
}

/// Shortest-path trees from every vertex (`V` runs of Dijkstra).
///
/// # Errors
/// Same preconditions as [`dijkstra`].
pub fn all_pairs_dijkstra(
    topo: &Topology,
    weights: &EdgeWeights,
) -> Result<Vec<ShortestPathTree>, GraphError> {
    weights.validate_for(topo)?;
    for (e, w) in weights.iter() {
        if w < 0.0 {
            return Err(GraphError::NegativeWeight { edge: e, value: w });
        }
    }
    Ok(topo
        .nodes()
        .map(|s| dijkstra_unchecked(topo, weights, s))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 --1-- 1 --1-- 2
    ///  \_____5______/
    fn diamond() -> (Topology, EdgeWeights) {
        let mut b = Topology::builder(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        b.add_edge(NodeId::new(0), NodeId::new(2));
        let topo = b.build();
        let w = EdgeWeights::new(vec![1.0, 1.0, 5.0]).unwrap();
        (topo, w)
    }

    #[test]
    fn shortest_path_prefers_two_hops() {
        let (topo, w) = diamond();
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(spt.distance(NodeId::new(2)), Some(2.0));
        let p = spt.path_to(NodeId::new(2)).unwrap();
        assert_eq!(p.hops(), 2);
        assert!(p.validate(&topo).is_ok());
        assert!((w.path_weight(&p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn direct_edge_wins_when_cheaper() {
        let (topo, _) = diamond();
        let w = EdgeWeights::new(vec![3.0, 3.0, 5.0]).unwrap();
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(spt.distance(NodeId::new(2)), Some(5.0));
        assert_eq!(spt.path_to(NodeId::new(2)).unwrap().hops(), 1);
    }

    #[test]
    fn source_distance_is_zero_and_trivial_path() {
        let (topo, w) = diamond();
        let spt = dijkstra(&topo, &w, NodeId::new(1)).unwrap();
        assert_eq!(spt.distance(NodeId::new(1)), Some(0.0));
        assert_eq!(spt.path_to(NodeId::new(1)).unwrap().hops(), 0);
    }

    #[test]
    fn unreachable_vertex_is_none() {
        let mut b = Topology::builder(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let w = EdgeWeights::zeros(1);
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(spt.distance(NodeId::new(2)), None);
        assert!(spt.path_to(NodeId::new(2)).is_none());
        assert!(!spt.is_reachable(NodeId::new(2)));
    }

    #[test]
    fn negative_weight_rejected() {
        let (topo, _) = diamond();
        let w = EdgeWeights::new(vec![1.0, -0.1, 5.0]).unwrap();
        assert!(matches!(
            dijkstra(&topo, &w, NodeId::new(0)),
            Err(GraphError::NegativeWeight { .. })
        ));
    }

    #[test]
    fn parallel_edges_take_lighter() {
        let mut b = Topology::builder(2);
        let heavy = b.add_edge(NodeId::new(0), NodeId::new(1));
        let light = b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let mut w = EdgeWeights::zeros(2);
        w.set(heavy, 2.0);
        w.set(light, 1.0);
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        let p = spt.path_to(NodeId::new(1)).unwrap();
        assert_eq!(p.edges(), &[light]);
    }

    #[test]
    fn directed_respects_orientation() {
        let mut b = Topology::builder_directed(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let w = EdgeWeights::constant(1, 1.0);
        let fwd = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(fwd.distance(NodeId::new(1)), Some(1.0));
        let back = dijkstra(&topo, &w, NodeId::new(1)).unwrap();
        assert_eq!(back.distance(NodeId::new(0)), None);
    }

    #[test]
    fn zero_weight_edges_ok() {
        let (topo, _) = diamond();
        let w = EdgeWeights::zeros(3);
        let spt = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(spt.distance(NodeId::new(2)), Some(0.0));
    }

    #[test]
    fn all_pairs_is_symmetric_for_undirected() {
        let (topo, w) = diamond();
        let trees = all_pairs_dijkstra(&topo, &w).unwrap();
        for u in topo.nodes() {
            for v in topo.nodes() {
                assert_eq!(trees[u.index()].distance(v), trees[v.index()].distance(u));
            }
        }
    }

    #[test]
    fn mismatched_weights_rejected() {
        let (topo, _) = diamond();
        let w = EdgeWeights::zeros(2);
        assert!(matches!(
            dijkstra(&topo, &w, NodeId::new(0)),
            Err(GraphError::WeightsLengthMismatch { .. })
        ));
    }
}
