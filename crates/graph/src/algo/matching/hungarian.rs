//! Hungarian algorithm (Kuhn–Munkres with potentials) for min-cost perfect
//! matching on bipartite components, `O(n^3)`.

use super::BIG;
use crate::{EdgeId, EdgeWeights, GraphError, NodeId, Topology};
use std::collections::HashMap;

/// Matches one bipartite connected component.
///
/// `vertices` are the component's vertices, `color` the component-local
/// 2-coloring aligned with `vertices`, and `edges` the component's edges.
/// Returns the chosen edge ids.
pub(super) fn match_bipartite_component(
    topo: &Topology,
    weights: &EdgeWeights,
    vertices: &[NodeId],
    edges: &[EdgeId],
    color: &[u8],
) -> Result<Vec<EdgeId>, GraphError> {
    let left: Vec<NodeId> = vertices
        .iter()
        .zip(color)
        .filter(|&(_, &c)| c == 0)
        .map(|(&v, _)| v)
        .collect();
    let right: Vec<NodeId> = vertices
        .iter()
        .zip(color)
        .filter(|&(_, &c)| c == 1)
        .map(|(&v, _)| v)
        .collect();
    if left.len() != right.len() {
        return Err(GraphError::NoPerfectMatching);
    }
    let n = left.len();
    let left_idx: HashMap<NodeId, usize> = left.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let right_idx: HashMap<NodeId, usize> =
        right.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Dense cost matrix, keeping the lightest parallel edge per pair.
    let mut cost = vec![BIG; n * n];
    let mut chosen_edge = vec![None; n * n];
    for &e in edges {
        let (u, v) = topo.endpoints(e);
        let (i, j) = if let Some(&i) = left_idx.get(&u) {
            (i, right_idx[&v])
        } else {
            (left_idx[&v], right_idx[&u])
        };
        let w = weights.get(e);
        if w < cost[i * n + j] {
            cost[i * n + j] = w;
            chosen_edge[i * n + j] = Some(e);
        }
    }

    let assignment = solve(n, &cost);
    let mut out = Vec::with_capacity(n);
    for (i, j) in assignment.into_iter().enumerate() {
        match chosen_edge[i * n + j] {
            Some(e) => out.push(e),
            None => return Err(GraphError::NoPerfectMatching),
        }
    }
    Ok(out)
}

/// Solves the square assignment problem; `cost` is `n x n` row-major.
/// Returns `assignment[row] = col`. Missing edges carry the [`BIG`]
/// sentinel; the caller detects infeasibility by the sentinel surviving in
/// the assignment.
pub(crate) fn solve(n: usize, cost: &[f64]) -> Vec<usize> {
    assert_eq!(cost.len(), n * n);
    if n == 0 {
        return Vec::new();
    }
    // 1-based arrays per the classical formulation; p[j] = row matched to
    // column j (0 = virtual unmatched marker).
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![usize::MAX; n];
    for j in 1..=n {
        assignment[p[j] - 1] = j - 1;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(n: usize, cost: &[f64], asg: &[usize]) -> f64 {
        asg.iter().enumerate().map(|(i, &j)| cost[i * n + j]).sum()
    }

    #[test]
    fn identity_matrix_assignment() {
        // Cost favors the diagonal.
        let cost = vec![0.0, 5.0, 5.0, 5.0, 0.0, 5.0, 5.0, 5.0, 0.0];
        let asg = solve(3, &cost);
        assert_eq!(asg, vec![0, 1, 2]);
        assert_eq!(total(3, &cost, &asg), 0.0);
    }

    #[test]
    fn classic_3x3() {
        // Known optimum: rows pick (0->1), (1->0), (2->2) with cost 5.
        #[rustfmt::skip]
        let cost = vec![
            4.0, 1.0, 3.0,
            2.0, 0.0, 5.0,
            3.0, 2.0, 2.0,
        ];
        let asg = solve(3, &cost);
        assert!((total(3, &cost, &asg) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn negative_costs() {
        #[rustfmt::skip]
        let cost = vec![
            -1.0,  2.0,
             2.0, -3.0,
        ];
        let asg = solve(2, &cost);
        assert_eq!(asg, vec![0, 1]);
        assert!((total(2, &cost, &asg) - (-4.0)).abs() < 1e-9);
    }

    #[test]
    fn brute_force_agreement_4x4() {
        // Deterministic pseudo-random costs; compare to brute force over
        // all 24 permutations.
        let n = 4;
        let cost: Vec<f64> = (0..n * n)
            .map(|i| ((i * 31 + 7) % 17) as f64 - 5.0)
            .collect();
        let asg = solve(n, &cost);
        let got = total(n, &cost, &asg);

        let mut best = f64::INFINITY;
        let mut perm = [0, 1, 2, 3];
        permute(&mut perm, 0, &mut |p| {
            let c: f64 = p.iter().enumerate().map(|(i, &j)| cost[i * n + j]).sum();
            if c < best {
                best = c;
            }
        });
        assert!((got - best).abs() < 1e-9, "hungarian {got} != brute {best}");
    }

    fn permute(arr: &mut [usize; 4], k: usize, f: &mut impl FnMut(&[usize; 4])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }

    #[test]
    fn empty_instance() {
        assert!(solve(0, &[]).is_empty());
    }
}
