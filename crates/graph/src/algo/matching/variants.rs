//! Matching variants beyond min-weight perfect: minimum-weight matching
//! *not required to be perfect*, and the maximum-weight counterparts.
//!
//! The paper (Appendix B.2) notes its results hold verbatim for these
//! variants; this module supplies the substrate. The key simplification
//! for the non-perfect minimum: edges of nonnegative weight never help, so
//! the problem restricts to the subgraph of negative edges, whose
//! components are typically far smaller than the host graph's.

use super::hungarian;
use super::{Matching, BIG, MAX_EXACT_COMPONENT};
use crate::algo::union_find::UnionFind;
use crate::{EdgeId, EdgeWeights, GraphError, NodeId, Topology};
use std::collections::HashMap;

/// Minimum-weight matching, **not** required to be perfect (the empty
/// matching is feasible, so the optimum is always `<= 0`).
///
/// Only negative-weight edges can improve on empty, so the search runs on
/// the negative-edge subgraph: bipartite pieces via a padded Hungarian
/// instance with zero-cost "unmatched" slots, small non-bipartite pieces
/// via bitmask DP with a skip transition.
///
/// # Errors
/// * [`GraphError::WeightsLengthMismatch`] on mismatch.
/// * [`GraphError::MatchingComponentTooLarge`] if a non-bipartite
///   negative-edge component exceeds [`MAX_EXACT_COMPONENT`].
pub fn min_weight_matching(topo: &Topology, weights: &EdgeWeights) -> Result<Matching, GraphError> {
    weights.validate_for(topo)?;
    // Collect strictly negative, non-loop edges.
    let neg_edges: Vec<EdgeId> = topo
        .edge_ids()
        .filter(|&e| {
            let (u, v) = topo.endpoints(e);
            u != v && weights.get(e) < 0.0
        })
        .collect();
    if neg_edges.is_empty() {
        return Ok(Matching {
            edges: Vec::new(),
            total_weight: 0.0,
        });
    }

    // Components of the negative subgraph.
    let mut uf = UnionFind::new(topo.num_nodes());
    for &e in &neg_edges {
        let (u, v) = topo.endpoints(e);
        uf.union_nodes(u, v);
    }
    let mut comp_edges: HashMap<usize, Vec<EdgeId>> = HashMap::new();
    for &e in &neg_edges {
        let (u, _) = topo.endpoints(e);
        comp_edges.entry(uf.find(u.index())).or_default().push(e);
    }

    let mut edges = Vec::new();
    let mut total_weight = 0.0;
    for (_, es) in comp_edges {
        // Component vertex list (stable order).
        let mut vs: Vec<NodeId> = Vec::new();
        let mut seen: HashMap<NodeId, ()> = HashMap::new();
        for &e in &es {
            let (u, v) = topo.endpoints(e);
            for x in [u, v] {
                if seen.insert(x, ()).is_none() {
                    vs.push(x);
                }
            }
        }
        vs.sort();

        let chosen = match two_color_subgraph(topo, &vs, &es) {
            Some(color) => match_bipartite_allow_unmatched(topo, weights, &vs, &es, &color),
            None => {
                if vs.len() > MAX_EXACT_COMPONENT {
                    return Err(GraphError::MatchingComponentTooLarge {
                        size: vs.len(),
                        limit: MAX_EXACT_COMPONENT,
                    });
                }
                match_exact_allow_skip(topo, weights, &vs, &es)
            }
        };
        for e in chosen {
            total_weight += weights.get(e);
            edges.push(e);
        }
    }
    Ok(Matching {
        edges,
        total_weight,
    })
}

/// Maximum-weight matching (not required to be perfect): negate weights,
/// take the minimum.
///
/// # Errors
/// Same conditions as [`min_weight_matching`].
pub fn max_weight_matching(topo: &Topology, weights: &EdgeWeights) -> Result<Matching, GraphError> {
    let negated = weights.map(|_, w| -w);
    let m = min_weight_matching(topo, &negated)?;
    let total_weight = m.edges.iter().map(|&e| weights.get(e)).sum();
    Ok(Matching {
        edges: m.edges,
        total_weight,
    })
}

/// Maximum-weight **perfect** matching: negate weights, take the minimum
/// perfect matching.
///
/// # Errors
/// Same conditions as
/// [`min_weight_perfect_matching`](super::min_weight_perfect_matching).
pub fn max_weight_perfect_matching(
    topo: &Topology,
    weights: &EdgeWeights,
) -> Result<Matching, GraphError> {
    let negated = weights.map(|_, w| -w);
    let m = super::min_weight_perfect_matching(topo, &negated)?;
    let total_weight = m.edges.iter().map(|&e| weights.get(e)).sum();
    Ok(Matching {
        edges: m.edges,
        total_weight,
    })
}

/// 2-colors `vertices` using only `edges` (the negative subgraph), or
/// `None` if that subgraph has an odd cycle.
fn two_color_subgraph(topo: &Topology, vertices: &[NodeId], edges: &[EdgeId]) -> Option<Vec<u8>> {
    let local: HashMap<NodeId, usize> = vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut adj = vec![Vec::new(); vertices.len()];
    for &e in edges {
        let (u, v) = topo.endpoints(e);
        let (iu, iv) = (local[&u], local[&v]);
        adj[iu].push(iv);
        adj[iv].push(iu);
    }
    let mut color = vec![u8::MAX; vertices.len()];
    let mut stack = Vec::new();
    for start in 0..vertices.len() {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if color[v] == u8::MAX {
                    color[v] = 1 - color[u];
                    stack.push(v);
                } else if color[v] == color[u] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Bipartite min-weight matching allowing unmatched vertices: a square
/// assignment over `max(|L|, |R|)` slots where missing pairs and dummy
/// slots cost 0 (= leave unmatched) and real pairs cost `min(w, 0)`
/// (a nonnegative edge is never chosen because skipping is free).
fn match_bipartite_allow_unmatched(
    topo: &Topology,
    weights: &EdgeWeights,
    vertices: &[NodeId],
    edges: &[EdgeId],
    color: &[u8],
) -> Vec<EdgeId> {
    let left: Vec<NodeId> = vertices
        .iter()
        .zip(color)
        .filter(|&(_, &c)| c == 0)
        .map(|(&v, _)| v)
        .collect();
    let right: Vec<NodeId> = vertices
        .iter()
        .zip(color)
        .filter(|&(_, &c)| c == 1)
        .map(|(&v, _)| v)
        .collect();
    let left_idx: HashMap<NodeId, usize> = left.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let right_idx: HashMap<NodeId, usize> =
        right.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let m = left.len().max(right.len());
    if m == 0 {
        return Vec::new();
    }
    let mut cost = vec![0.0f64; m * m];
    let mut chosen_edge: Vec<Option<EdgeId>> = vec![None; m * m];
    for &e in edges {
        let (u, v) = topo.endpoints(e);
        let (i, j) = if let Some(&i) = left_idx.get(&u) {
            (i, right_idx[&v])
        } else {
            (left_idx[&v], right_idx[&u])
        };
        let w = weights.get(e).min(0.0);
        if w < cost[i * m + j] {
            cost[i * m + j] = w;
            chosen_edge[i * m + j] = Some(e);
        }
    }
    let assignment = hungarian::solve(m, &cost);
    let mut out = Vec::new();
    for (i, j) in assignment.into_iter().enumerate() {
        if let Some(e) = chosen_edge[i * m + j] {
            if weights.get(e) < 0.0 {
                out.push(e);
            }
        }
    }
    out
}

/// Exact min-weight matching with skips by bitmask DP over the component.
fn match_exact_allow_skip(
    topo: &Topology,
    weights: &EdgeWeights,
    vertices: &[NodeId],
    edges: &[EdgeId],
) -> Vec<EdgeId> {
    let m = vertices.len();
    let local: HashMap<NodeId, usize> = vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut pair_cost = vec![BIG; m * m];
    let mut pair_edge: Vec<Option<EdgeId>> = vec![None; m * m];
    for &e in edges {
        let (u, v) = topo.endpoints(e);
        let (i, j) = (local[&u], local[&v]);
        let w = weights.get(e);
        if w < pair_cost[i * m + j] {
            pair_cost[i * m + j] = w;
            pair_cost[j * m + i] = w;
            pair_edge[i * m + j] = Some(e);
            pair_edge[j * m + i] = Some(e);
        }
    }
    const SKIP: u8 = u8::MAX;
    let full: usize = (1 << m) - 1;
    let mut f = vec![f64::INFINITY; 1 << m];
    let mut choice: Vec<(u8, u8)> = vec![(SKIP, SKIP); 1 << m];
    f[0] = 0.0;
    for mask in 0..full {
        if !f[mask].is_finite() {
            continue;
        }
        let i = (!mask).trailing_zeros() as usize;
        // Skip vertex i.
        let skipped = mask | (1 << i);
        if f[mask] < f[skipped] {
            f[skipped] = f[mask];
            choice[skipped] = (i as u8, SKIP);
        }
        // Match i with some j via a negative edge (nonnegative never
        // beats skipping).
        for j in (i + 1)..m {
            if mask & (1 << j) != 0 {
                continue;
            }
            let c = pair_cost[i * m + j];
            if c >= 0.0 {
                continue;
            }
            let next = mask | (1 << i) | (1 << j);
            let cand = f[mask] + c;
            if cand < f[next] {
                f[next] = cand;
                choice[next] = (i as u8, j as u8);
            }
        }
    }
    let mut out = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let (i, j) = choice[mask];
        let i = i as usize;
        if j == SKIP {
            mask ^= 1 << i;
        } else {
            let j = j as usize;
            // `choice` is only written for pairs with negative `pair_cost`,
            // which is only ever set together with `pair_edge`.
            if let Some(edge) = pair_edge[i * m + j] {
                out.push(edge);
            }
            mask ^= (1 << i) | (1 << j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph};

    /// Brute-force min-weight (possibly empty) matching for tiny graphs.
    fn brute_min(topo: &Topology, w: &EdgeWeights) -> f64 {
        let n = topo.num_nodes();
        fn rec(topo: &Topology, w: &EdgeWeights, used: &mut Vec<bool>, from: usize) -> f64 {
            let mut best = 0.0f64; // empty matching on the rest
            for i in from..used.len() {
                if used[i] {
                    continue;
                }
                for j in (i + 1)..used.len() {
                    if used[j] {
                        continue;
                    }
                    let min_edge = topo
                        .edges_between(NodeId::new(i), NodeId::new(j))
                        .iter()
                        .chain(topo.edges_between(NodeId::new(j), NodeId::new(i)).iter())
                        .map(|&e| w.get(e))
                        .min_by(f64::total_cmp);
                    if let Some(cw) = min_edge {
                        used[i] = true;
                        used[j] = true;
                        let total = cw + rec(topo, w, used, i + 1);
                        if total < best {
                            best = total;
                        }
                        used[i] = false;
                        used[j] = false;
                    }
                }
            }
            best
        }
        let mut used = vec![false; n];
        rec(topo, w, &mut used, 0)
    }

    #[test]
    fn all_positive_weights_give_empty_matching() {
        let topo = complete_graph(6);
        let w = EdgeWeights::constant(topo.num_edges(), 2.0);
        let m = min_weight_matching(&topo, &w).unwrap();
        assert!(m.edges.is_empty());
        assert_eq!(m.total_weight, 0.0);
    }

    #[test]
    fn picks_negative_edges_only() {
        // Path 0-1-2-3 with weights [-5, 1, -3]: optimal {e0, e2} = -8.
        let topo = crate::generators::path_graph(4);
        let w = EdgeWeights::new(vec![-5.0, 1.0, -3.0]).unwrap();
        let m = min_weight_matching(&topo, &w).unwrap();
        assert_eq!(m.edges.len(), 2);
        assert!((m.total_weight - (-8.0)).abs() < 1e-9);
    }

    #[test]
    fn conflict_resolved_optimally() {
        // Path 0-1-2 with weights [-5, -3]: edges share vertex 1; take -5.
        let topo = crate::generators::path_graph(3);
        let w = EdgeWeights::new(vec![-5.0, -3.0]).unwrap();
        let m = min_weight_matching(&topo, &w).unwrap();
        assert_eq!(m.edges.len(), 1);
        assert!((m.total_weight - (-5.0)).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_k6() {
        let topo = complete_graph(6);
        for seed in 0..8u64 {
            let w = EdgeWeights::new(
                (0..topo.num_edges())
                    .map(|i| (((i as u64 * 48271 + seed * 131) % 97) as f64) - 48.0)
                    .collect(),
            )
            .unwrap();
            let m = min_weight_matching(&topo, &w).unwrap();
            let b = brute_min(&topo, &w);
            assert!(
                (m.total_weight - b).abs() < 1e-9,
                "seed {seed}: got {} brute {b}",
                m.total_weight
            );
            // Chosen edges are vertex-disjoint and negative.
            let mut seen = [false; 6];
            for &e in &m.edges {
                assert!(w.get(e) < 0.0);
                let (u, v) = topo.endpoints(e);
                assert!(!seen[u.index()] && !seen[v.index()]);
                seen[u.index()] = true;
                seen[v.index()] = true;
            }
        }
    }

    #[test]
    fn odd_negative_cycle_handled_by_dp() {
        // Triangle with all edges -1: non-bipartite negative subgraph;
        // best = one edge = -1.
        let topo = cycle_graph(3);
        let w = EdgeWeights::constant(3, -1.0);
        let m = min_weight_matching(&topo, &w).unwrap();
        assert_eq!(m.edges.len(), 1);
        assert!((m.total_weight - (-1.0)).abs() < 1e-9);
    }

    #[test]
    fn max_weight_matching_mirrors_min() {
        let topo = crate::generators::path_graph(4);
        let w = EdgeWeights::new(vec![5.0, 1.0, 3.0]).unwrap();
        let m = max_weight_matching(&topo, &w).unwrap();
        assert_eq!(m.edges.len(), 2);
        assert!((m.total_weight - 8.0).abs() < 1e-9);
        // All-negative weights: empty max matching.
        let w = EdgeWeights::constant(3, -1.0);
        let m = max_weight_matching(&topo, &w).unwrap();
        assert!(m.edges.is_empty());
    }

    #[test]
    fn max_weight_perfect_matching_on_cycle() {
        let topo = cycle_graph(4);
        let w = EdgeWeights::new(vec![1.0, 10.0, 1.0, 10.0]).unwrap();
        let m = max_weight_perfect_matching(&topo, &w).unwrap();
        assert!(m.is_perfect(&topo));
        assert!((m.total_weight - 20.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_negative_edges_take_most_negative() {
        let mut b = Topology::builder(2);
        let e0 = b.add_edge(NodeId::new(0), NodeId::new(1));
        let e1 = b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let mut w = EdgeWeights::zeros(2);
        w.set(e0, -1.0);
        w.set(e1, -7.0);
        let m = min_weight_matching(&topo, &w).unwrap();
        assert_eq!(m.edges, vec![e1]);
        assert!((m.total_weight - (-7.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let topo = Topology::builder(0).build();
        let m = min_weight_matching(&topo, &EdgeWeights::zeros(0)).unwrap();
        assert!(m.edges.is_empty());
    }
}
