//! Exact minimum-weight perfect matching by bitmask dynamic programming,
//! for small (possibly non-bipartite) components.

use super::BIG;
use crate::{EdgeId, EdgeWeights, GraphError, NodeId, Topology};
use std::collections::HashMap;

/// Matches one connected component exactly in `O(2^m * m)` where
/// `m = vertices.len()` (caller guarantees `m` is even and at most
/// [`super::MAX_EXACT_COMPONENT`]).
pub(super) fn match_component_exact(
    topo: &Topology,
    weights: &EdgeWeights,
    vertices: &[NodeId],
    edges: &[EdgeId],
) -> Result<Vec<EdgeId>, GraphError> {
    let m = vertices.len();
    debug_assert!(m.is_multiple_of(2));
    debug_assert!(m <= super::MAX_EXACT_COMPONENT);
    let local: HashMap<NodeId, usize> = vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Lightest parallel edge per unordered local pair.
    let mut pair_cost = vec![BIG; m * m];
    let mut pair_edge: Vec<Option<EdgeId>> = vec![None; m * m];
    for &e in edges {
        let (u, v) = topo.endpoints(e);
        let (i, j) = (local[&u], local[&v]);
        let w = weights.get(e);
        if w < pair_cost[i * m + j] {
            pair_cost[i * m + j] = w;
            pair_cost[j * m + i] = w;
            pair_edge[i * m + j] = Some(e);
            pair_edge[j * m + i] = Some(e);
        }
    }

    let full: usize = (1 << m) - 1;
    let mut f = vec![f64::INFINITY; 1 << m];
    // choice[mask] = (i, j) matched in the step that produced `mask`.
    let mut choice: Vec<(u8, u8)> = vec![(u8::MAX, u8::MAX); 1 << m];
    f[0] = 0.0;
    for mask in 0..full {
        if !f[mask].is_finite() {
            continue;
        }
        // Match the lowest unmatched vertex; this canonical order visits
        // each perfect matching exactly once.
        let i = (!mask).trailing_zeros() as usize;
        debug_assert!(i < m);
        for j in (i + 1)..m {
            if mask & (1 << j) != 0 {
                continue;
            }
            let c = pair_cost[i * m + j];
            if c >= BIG {
                continue;
            }
            let next = mask | (1 << i) | (1 << j);
            let cand = f[mask] + c;
            if cand < f[next] {
                f[next] = cand;
                choice[next] = (i as u8, j as u8);
            }
        }
    }
    if !f[full].is_finite() {
        return Err(GraphError::NoPerfectMatching);
    }

    // Unwind the DP.
    let mut out = Vec::with_capacity(m / 2);
    let mut mask = full;
    while mask != 0 {
        let (i, j) = choice[mask];
        let (i, j) = (i as usize, j as usize);
        // `choice` is only written for pairs with `pair_cost < BIG`, which
        // is only ever set together with `pair_edge`.
        let Some(edge) = pair_edge[i * m + j] else {
            return Err(GraphError::NoPerfectMatching);
        };
        out.push(edge);
        mask ^= (1 << i) | (1 << j);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::matching::min_weight_perfect_matching;
    use crate::generators::complete_graph;

    /// Brute-force min perfect matching weight over all pairings for tiny
    /// graphs (n <= 8).
    fn brute(topo: &Topology, w: &EdgeWeights) -> Option<f64> {
        let n = topo.num_nodes();
        fn rec(topo: &Topology, w: &EdgeWeights, used: &mut Vec<bool>) -> Option<f64> {
            let Some(i) = used.iter().position(|&u| !u) else {
                return Some(0.0);
            };
            used[i] = true;
            let mut best: Option<f64> = None;
            for j in (i + 1)..used.len() {
                if used[j] {
                    continue;
                }
                let edges = topo.edges_between(NodeId::new(i), NodeId::new(j));
                let back = topo.edges_between(NodeId::new(j), NodeId::new(i));
                let min_edge = edges
                    .iter()
                    .chain(back.iter())
                    .map(|&e| w.get(e))
                    .min_by(f64::total_cmp);
                if let Some(cw) = min_edge {
                    used[j] = true;
                    if let Some(rest) = rec(topo, w, used) {
                        let total = cw + rest;
                        if best.is_none_or(|b| total < b) {
                            best = Some(total);
                        }
                    }
                    used[j] = false;
                }
            }
            used[i] = false;
            best
        }
        let mut used = vec![false; n];
        rec(topo, w, &mut used)
    }

    #[test]
    fn k6_matches_brute_force() {
        let topo = complete_graph(6);
        for seed in 0..5u64 {
            let w = EdgeWeights::new(
                (0..topo.num_edges())
                    .map(|i| (((i as u64 * 2654435761 + seed * 97) % 101) as f64) - 30.0)
                    .collect(),
            )
            .unwrap();
            let m = min_weight_perfect_matching(&topo, &w).unwrap();
            let b = brute(&topo, &w).unwrap();
            assert!(
                (m.total_weight - b).abs() < 1e-9,
                "seed {seed}: exact {} != brute {b}",
                m.total_weight
            );
        }
    }

    #[test]
    fn odd_component_has_no_matching() {
        // Triangle alone: connected, non-bipartite, odd — caught upstream,
        // but the DP itself must also fail gracefully on an even set with
        // no feasible pairing.
        let mut b = Topology::builder(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        b.add_edge(NodeId::new(2), NodeId::new(0));
        b.add_edge(NodeId::new(2), NodeId::new(3));
        let topo = b.build();
        // Force matching to need (0,1) and (2,3): feasible.
        let w = EdgeWeights::constant(4, 1.0);
        let m = min_weight_perfect_matching(&topo, &w).unwrap();
        assert!(m.is_perfect(&topo));
        assert!((m.total_weight - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_even_component() {
        // Path 0-1-2 with pendant 3 on vertex 1: star-like K_{1,3} plus, er,
        // build exactly: edges (0,1), (1,2), (1,3). Non-bipartite? No —
        // it's a star, bipartite with sides {1} and {0,2,3}, unbalanced,
        // handled by Hungarian path. Make it non-bipartite with a triangle
        // 0-1-2 and an isolated-ish pendant pair that cannot match.
        let mut b = Topology::builder(6);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        b.add_edge(NodeId::new(2), NodeId::new(0));
        b.add_edge(NodeId::new(0), NodeId::new(3));
        b.add_edge(NodeId::new(0), NodeId::new(4));
        b.add_edge(NodeId::new(0), NodeId::new(5));
        let topo = b.build();
        // 3, 4, 5 all hang off 0: only one of them can be matched.
        let w = EdgeWeights::constant(6, 1.0);
        assert_eq!(
            min_weight_perfect_matching(&topo, &w).unwrap_err(),
            GraphError::NoPerfectMatching
        );
    }
}
