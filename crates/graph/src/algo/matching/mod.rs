//! Minimum-weight perfect matching.
//!
//! Appendix B.2 of the paper releases the min-weight perfect matching of a
//! Laplace-noised graph. Its lower-bound gadget (Figure 3, right) is a
//! disjoint union of 4-cycles — bipartite components — and its utility
//! theorem applies to both bipartite and general matching. We implement:
//!
//! * an `O(n^3)` **Hungarian algorithm** for bipartite components,
//! * an exact `O(2^m m)` **bitmask dynamic program** for small
//!   non-bipartite components (`m <= 20`), and
//! * a **greedy maximal matching** baseline.
//!
//! The public entry point [`min_weight_perfect_matching`] decomposes the
//! graph into connected components and dispatches per component. Negative
//! weights are fully supported (Appendix B permits them).

mod exact;
mod hungarian;
mod variants;

pub use variants::{max_weight_matching, max_weight_perfect_matching, min_weight_matching};

use crate::algo::components::connected_components;
use crate::{EdgeId, EdgeWeights, GraphError, NodeId, Topology};
use std::collections::VecDeque;

/// Maximum size of a non-bipartite component handled by the exact bitmask
/// solver.
pub const MAX_EXACT_COMPONENT: usize = 20;

/// Sentinel cost for "no edge" inside the dense solvers. Kept finite so the
/// Hungarian potential arithmetic stays NaN-free.
pub(crate) const BIG: f64 = 1e30;

/// A matching: a set of vertex-disjoint edges.
#[derive(Clone, Debug)]
pub struct Matching {
    /// The chosen edges.
    pub edges: Vec<EdgeId>,
    /// Total weight under the weights used to compute the matching.
    pub total_weight: f64,
}

impl Matching {
    /// Re-evaluates the matching under different weights (the paper's
    /// utility metric: the *true* weight of the matching chosen on *noisy*
    /// weights).
    pub fn weight_under(&self, weights: &EdgeWeights) -> f64 {
        self.edges.iter().map(|&e| weights.get(e)).sum()
    }

    /// Whether this matching is perfect for `topo` (covers every vertex
    /// exactly once).
    pub fn is_perfect(&self, topo: &Topology) -> bool {
        if self.edges.len() * 2 != topo.num_nodes() {
            return false;
        }
        let mut seen = vec![false; topo.num_nodes()];
        for &e in &self.edges {
            let (u, v) = topo.endpoints(e);
            if u == v || seen[u.index()] || seen[v.index()] {
                return false;
            }
            seen[u.index()] = true;
            seen[v.index()] = true;
        }
        true
    }
}

/// Minimum-weight perfect matching.
///
/// Decomposes into connected components; bipartite components are solved by
/// the Hungarian algorithm, non-bipartite components of at most
/// [`MAX_EXACT_COMPONENT`] vertices by exact bitmask DP. Directed topologies
/// are treated as undirected.
///
/// # Errors
/// * [`GraphError::WeightsLengthMismatch`] on weight/topology mismatch.
/// * [`GraphError::NoPerfectMatching`] if no perfect matching exists.
/// * [`GraphError::MatchingComponentTooLarge`] for a large non-bipartite
///   component.
pub fn min_weight_perfect_matching(
    topo: &Topology,
    weights: &EdgeWeights,
) -> Result<Matching, GraphError> {
    weights.validate_for(topo)?;
    if !topo.num_nodes().is_multiple_of(2) {
        return Err(GraphError::NoPerfectMatching);
    }
    let comps = connected_components(topo);
    let groups = comps.groups();

    // Bucket edges by component (self-loops can never be matched; skip).
    let mut comp_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); comps.count];
    for e in topo.edge_ids() {
        let (u, v) = topo.endpoints(e);
        if u != v {
            comp_edges[comps.component_of(u)].push(e);
        }
    }

    let mut edges = Vec::with_capacity(topo.num_nodes() / 2);
    let mut total_weight = 0.0;
    for (comp, vertices) in groups.iter().enumerate() {
        if vertices.len() % 2 != 0 {
            return Err(GraphError::NoPerfectMatching);
        }
        if vertices.is_empty() {
            continue;
        }
        let chosen = match two_color(topo, vertices) {
            Some(color) => hungarian::match_bipartite_component(
                topo,
                weights,
                vertices,
                &comp_edges[comp],
                &color,
            )?,
            None => {
                if vertices.len() > MAX_EXACT_COMPONENT {
                    return Err(GraphError::MatchingComponentTooLarge {
                        size: vertices.len(),
                        limit: MAX_EXACT_COMPONENT,
                    });
                }
                exact::match_component_exact(topo, weights, vertices, &comp_edges[comp])?
            }
        };
        for e in chosen {
            total_weight += weights.get(e);
            edges.push(e);
        }
    }
    Ok(Matching {
        edges,
        total_weight,
    })
}

/// Greedy minimum-weight *maximal* (not necessarily perfect) matching:
/// scans edges in increasing weight order, keeping each edge whose both
/// endpoints are still free. A fast baseline used in experiments.
pub fn greedy_min_weight_maximal_matching(topo: &Topology, weights: &EdgeWeights) -> Matching {
    let mut order: Vec<EdgeId> = topo.edge_ids().collect();
    order.sort_by(|&a, &b| {
        weights
            .get(a)
            .total_cmp(&weights.get(b))
            .then_with(|| a.cmp(&b))
    });
    let mut used = vec![false; topo.num_nodes()];
    let mut edges = Vec::new();
    let mut total_weight = 0.0;
    for e in order {
        let (u, v) = topo.endpoints(e);
        if u != v && !used[u.index()] && !used[v.index()] {
            used[u.index()] = true;
            used[v.index()] = true;
            total_weight += weights.get(e);
            edges.push(e);
        }
    }
    Matching {
        edges,
        total_weight,
    }
}

/// 2-colors a single component, returning `color[local_index]` aligned with
/// `vertices`, or `None` if the component has an odd cycle.
fn two_color(topo: &Topology, vertices: &[NodeId]) -> Option<Vec<u8>> {
    let mut local = std::collections::HashMap::with_capacity(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        local.insert(v, i);
    }
    let mut color = vec![u8::MAX; vertices.len()];
    let mut queue = VecDeque::new();
    color[0] = 0;
    queue.push_back(vertices[0]);
    while let Some(u) = queue.pop_front() {
        let cu = color[local[&u]];
        for (v, _) in topo.neighbors(u) {
            if v == u {
                return None; // self-loop
            }
            let li = local[&v];
            if color[li] == u8::MAX {
                color[li] = 1 - cu;
                queue.push_back(v);
            } else if color[li] == cu {
                return None;
            }
        }
    }
    // For undirected topologies BFS from vertices[0] covers the component.
    // Directed topologies may need extra sweeps (weak connectivity).
    while let Some(start) = color.iter().position(|&c| c == u8::MAX) {
        color[start] = 0;
        queue.push_back(vertices[start]);
        while let Some(u) = queue.pop_front() {
            let cu = color[local[&u]];
            for (v, _) in topo.neighbors(u) {
                if v == u {
                    return None;
                }
                let li = local[&v];
                if color[li] == u8::MAX {
                    color[li] = 1 - cu;
                    queue.push_back(v);
                } else if color[li] == cu {
                    return None;
                }
            }
        }
    }
    Some(color)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph};

    #[test]
    fn four_cycle_picks_cheaper_pairing() {
        // 0-1-2-3-0 with weights; perfect matchings are {01,23} and {12,30}.
        let topo = cycle_graph(4);
        let w = EdgeWeights::new(vec![1.0, 10.0, 1.0, 10.0]).unwrap();
        let m = min_weight_perfect_matching(&topo, &w).unwrap();
        assert!(m.is_perfect(&topo));
        assert!((m.total_weight - 2.0).abs() < 1e-9);
    }

    #[test]
    fn odd_vertex_count_fails() {
        let topo = cycle_graph(5);
        let w = EdgeWeights::constant(5, 1.0);
        assert_eq!(
            min_weight_perfect_matching(&topo, &w).unwrap_err(),
            GraphError::NoPerfectMatching
        );
    }

    #[test]
    fn disconnected_components_each_matched() {
        let mut b = Topology::builder(4);
        let e0 = b.add_edge(NodeId::new(0), NodeId::new(1));
        let e1 = b.add_edge(NodeId::new(2), NodeId::new(3));
        let topo = b.build();
        let w = EdgeWeights::new(vec![3.0, 4.0]).unwrap();
        let m = min_weight_perfect_matching(&topo, &w).unwrap();
        assert!(m.is_perfect(&topo));
        assert_eq!(m.edges.len(), 2);
        assert!(m.edges.contains(&e0) && m.edges.contains(&e1));
        assert!((m.total_weight - 7.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_even_vertices_fail() {
        let topo = Topology::builder(2).build();
        let w = EdgeWeights::zeros(0);
        assert_eq!(
            min_weight_perfect_matching(&topo, &w).unwrap_err(),
            GraphError::NoPerfectMatching
        );
    }

    #[test]
    fn triangle_plus_pendant_uses_exact_solver() {
        // Non-bipartite: triangle 0-1-2 plus pendant 3 attached to 0.
        // Perfect matching must use (0,3) and (1,2).
        let mut b = Topology::builder(4);
        let e01 = b.add_edge(NodeId::new(0), NodeId::new(1));
        let e12 = b.add_edge(NodeId::new(1), NodeId::new(2));
        let e20 = b.add_edge(NodeId::new(2), NodeId::new(0));
        let e03 = b.add_edge(NodeId::new(0), NodeId::new(3));
        let topo = b.build();
        let w = EdgeWeights::new(vec![1.0, 5.0, 1.0, 2.0]).unwrap();
        let m = min_weight_perfect_matching(&topo, &w).unwrap();
        assert!(m.is_perfect(&topo));
        let mut chosen = m.edges.clone();
        chosen.sort();
        assert_eq!(chosen, vec![e12, e03]);
        let _ = (e01, e20);
        assert!((m.total_weight - 7.0).abs() < 1e-9);
    }

    #[test]
    fn negative_weights_preferred() {
        let topo = cycle_graph(4);
        let w = EdgeWeights::new(vec![-5.0, 1.0, -5.0, 1.0]).unwrap();
        let m = min_weight_perfect_matching(&topo, &w).unwrap();
        assert!((m.total_weight - (-10.0)).abs() < 1e-9);
    }

    #[test]
    fn complete_even_graph_has_matching() {
        let topo = complete_graph(6); // K6 is non-bipartite, size 6 <= limit
        let w = EdgeWeights::new(
            (0..topo.num_edges())
                .map(|i| ((i * 7 + 3) % 13) as f64)
                .collect(),
        )
        .unwrap();
        let m = min_weight_perfect_matching(&topo, &w).unwrap();
        assert!(m.is_perfect(&topo));
        assert_eq!(m.edges.len(), 3);
    }

    #[test]
    fn bipartite_unbalanced_sides_fail() {
        // Star K_{1,3}: 4 vertices, bipartite, but sides are 1 and 3.
        let mut b = Topology::builder(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(0), NodeId::new(2));
        b.add_edge(NodeId::new(0), NodeId::new(3));
        let topo = b.build();
        let w = EdgeWeights::constant(3, 1.0);
        assert_eq!(
            min_weight_perfect_matching(&topo, &w).unwrap_err(),
            GraphError::NoPerfectMatching
        );
    }

    #[test]
    fn greedy_is_maximal() {
        let topo = cycle_graph(6);
        let w = EdgeWeights::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let m = greedy_min_weight_maximal_matching(&topo, &w);
        // Greedy picks 1.0, then 3.0, then 5.0: a perfect matching here.
        assert!(m.is_perfect(&topo));
        assert!((m.total_weight - 9.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_on_empty_graph() {
        let topo = Topology::builder(0).build();
        let m = greedy_min_weight_maximal_matching(&topo, &EdgeWeights::zeros(0));
        assert!(m.edges.is_empty());
    }

    #[test]
    fn parallel_edges_pick_lighter() {
        let mut b = Topology::builder(2);
        let heavy = b.add_edge(NodeId::new(0), NodeId::new(1));
        let light = b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let mut w = EdgeWeights::zeros(2);
        w.set(heavy, 9.0);
        w.set(light, 1.0);
        let m = min_weight_perfect_matching(&topo, &w).unwrap();
        assert_eq!(m.edges, vec![light]);
    }
}
