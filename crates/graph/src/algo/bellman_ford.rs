//! Bellman–Ford: single-source shortest paths with negative weights.
//!
//! Used by tests to confirm that clamping Laplace-noised weights at zero
//! (the default post-processing in Algorithm 3's implementation) does not
//! change released paths in the high-probability regime, and available to
//! users who prefer unclamped noisy weights.

use crate::algo::dijkstra::ShortestPathTree;
use crate::{EdgeId, EdgeWeights, GraphError, NodeId, Topology};

/// Single-source shortest paths allowing negative edge weights.
///
/// For **undirected** topologies a negative edge forms a negative cycle
/// (traverse it back and forth), so undirected inputs with any negative
/// weight yield [`GraphError::NegativeCycle`]. Directed inputs are handled
/// with full generality in `O(V * E)`.
///
/// # Errors
/// * [`GraphError::WeightsLengthMismatch`] if `weights` does not match.
/// * [`GraphError::NodeOutOfRange`] if `source` is invalid.
/// * [`GraphError::NegativeCycle`] if a negative cycle is reachable from
///   `source` (including the undirected case described above).
pub fn bellman_ford(
    topo: &Topology,
    weights: &EdgeWeights,
    source: NodeId,
) -> Result<ShortestPathTree, GraphError> {
    weights.validate_for(topo)?;
    topo.check_node(source)?;
    if !topo.is_directed() {
        // An undirected negative edge is a negative cycle if reachable; we
        // reject conservatively without a reachability check for
        // predictability.
        if let Some((e, w)) = weights.iter().find(|&(_, w)| w < 0.0) {
            let _ = (e, w);
            return Err(GraphError::NegativeCycle);
        }
    }

    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    dist[source.index()] = 0.0;

    // Relax repeatedly. Using adjacency (not the raw edge list) respects
    // direction for directed graphs and covers both directions for
    // undirected ones.
    for round in 0..n {
        let mut changed = false;
        for u in topo.nodes() {
            let du = dist[u.index()];
            if !du.is_finite() {
                continue;
            }
            for (v, e) in topo.neighbors(u) {
                let nd = du + weights.get(e);
                if nd < dist[v.index()] - 1e-15 {
                    dist[v.index()] = nd;
                    parent[v.index()] = Some((u, e));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if round == n - 1 {
            return Err(GraphError::NegativeCycle);
        }
    }
    Ok(ShortestPathTree::new(source, dist, parent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra;

    #[test]
    fn matches_dijkstra_on_nonnegative() {
        let mut b = Topology::builder(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        b.add_edge(NodeId::new(0), NodeId::new(2));
        b.add_edge(NodeId::new(2), NodeId::new(3));
        let topo = b.build();
        let w = EdgeWeights::new(vec![1.0, 2.0, 4.0, 0.5]).unwrap();
        let bf = bellman_ford(&topo, &w, NodeId::new(0)).unwrap();
        let dj = dijkstra(&topo, &w, NodeId::new(0)).unwrap();
        for v in topo.nodes() {
            assert_eq!(bf.distance(v), dj.distance(v));
        }
    }

    #[test]
    fn directed_negative_edge_ok() {
        let mut b = Topology::builder_directed(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        let topo = b.build();
        let w = EdgeWeights::new(vec![-1.0, 2.0]).unwrap();
        let bf = bellman_ford(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(bf.distance(NodeId::new(2)), Some(1.0));
        let p = bf.path_to(NodeId::new(2)).unwrap();
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn directed_negative_cycle_detected() {
        let mut b = Topology::builder_directed(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(0));
        let topo = b.build();
        let w = EdgeWeights::new(vec![-1.0, 0.5]).unwrap();
        assert_eq!(
            bellman_ford(&topo, &w, NodeId::new(0)).unwrap_err(),
            GraphError::NegativeCycle
        );
    }

    #[test]
    fn undirected_negative_edge_rejected() {
        let mut b = Topology::builder(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let w = EdgeWeights::new(vec![-0.5]).unwrap();
        assert_eq!(
            bellman_ford(&topo, &w, NodeId::new(0)).unwrap_err(),
            GraphError::NegativeCycle
        );
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut b = Topology::builder_directed(2);
        b.add_edge(NodeId::new(1), NodeId::new(0));
        let topo = b.build();
        let w = EdgeWeights::new(vec![-3.0]).unwrap();
        let bf = bellman_ford(&topo, &w, NodeId::new(0)).unwrap();
        assert_eq!(bf.distance(NodeId::new(1)), None);
    }
}
