//! Kruskal's minimum spanning forest.
//!
//! Appendix B.1 of the paper releases the MST of a Laplace-noised graph, so
//! negative weights must be supported — Kruskal handles them natively.

use crate::algo::union_find::UnionFind;
use crate::{EdgeId, EdgeWeights, GraphError, Topology};

/// A spanning forest: the output of [`minimum_spanning_forest`] and
/// [`prim_spanning_forest`](crate::algo::prim_spanning_forest).
#[derive(Clone, Debug)]
pub struct SpanningForest {
    /// The chosen edges.
    pub edges: Vec<EdgeId>,
    /// Total weight of the chosen edges under the weights used to build the
    /// forest.
    pub total_weight: f64,
    /// Number of connected components (1 for a spanning tree).
    pub num_components: usize,
}

impl SpanningForest {
    /// Whether the forest is a single spanning tree.
    pub fn is_spanning_tree(&self) -> bool {
        self.num_components == 1
    }

    /// Re-evaluates the forest's weight under different weights (the paper's
    /// utility metric: the *true* weight of the tree chosen on *noisy*
    /// weights).
    pub fn weight_under(&self, weights: &EdgeWeights) -> f64 {
        self.edges.iter().map(|&e| weights.get(e)).sum()
    }
}

/// Minimum spanning forest via Kruskal in `O(E log E)`.
///
/// Directed topologies are treated as undirected (spanning trees ignore
/// orientation). Negative weights are allowed. Ties are broken by edge id
/// for determinism.
///
/// # Errors
/// Returns [`GraphError::WeightsLengthMismatch`] if `weights` does not
/// match the topology.
pub fn minimum_spanning_forest(
    topo: &Topology,
    weights: &EdgeWeights,
) -> Result<SpanningForest, GraphError> {
    weights.validate_for(topo)?;
    let mut order: Vec<EdgeId> = topo.edge_ids().collect();
    order.sort_by(|&a, &b| {
        weights
            .get(a)
            .total_cmp(&weights.get(b))
            .then_with(|| a.cmp(&b))
    });
    let mut uf = UnionFind::new(topo.num_nodes());
    let mut edges = Vec::with_capacity(topo.num_nodes().saturating_sub(1));
    let mut total_weight = 0.0;
    for e in order {
        let (u, v) = topo.endpoints(e);
        if u != v && uf.union_nodes(u, v) {
            edges.push(e);
            total_weight += weights.get(e);
            if uf.num_sets() == 1 {
                break;
            }
        }
    }
    Ok(SpanningForest {
        edges,
        total_weight,
        num_components: uf.num_sets(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph};
    use crate::NodeId;

    #[test]
    fn cycle_drops_heaviest_edge() {
        let topo = cycle_graph(4);
        let w = EdgeWeights::new(vec![1.0, 2.0, 9.0, 3.0]).unwrap();
        let f = minimum_spanning_forest(&topo, &w).unwrap();
        assert!(f.is_spanning_tree());
        assert_eq!(f.edges.len(), 3);
        assert!(!f.edges.contains(&EdgeId::new(2)));
        assert!((f.total_weight - 6.0).abs() < 1e-12);
    }

    #[test]
    fn negative_weights_are_fine() {
        let topo = cycle_graph(3);
        let w = EdgeWeights::new(vec![-5.0, -1.0, -3.0]).unwrap();
        let f = minimum_spanning_forest(&topo, &w).unwrap();
        // Keeps the two most negative edges.
        assert!((f.total_weight - (-8.0)).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let mut b = Topology::builder(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(2), NodeId::new(3));
        let topo = b.build();
        let w = EdgeWeights::constant(2, 1.0);
        let f = minimum_spanning_forest(&topo, &w).unwrap();
        assert_eq!(f.num_components, 2);
        assert!(!f.is_spanning_tree());
        assert_eq!(f.edges.len(), 2);
    }

    #[test]
    fn self_loops_and_parallel_edges_handled() {
        let mut b = Topology::builder(2);
        b.add_edge(NodeId::new(0), NodeId::new(0)); // self loop, never chosen
        let heavy = b.add_edge(NodeId::new(0), NodeId::new(1));
        let light = b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let mut w = EdgeWeights::zeros(3);
        w.set(heavy, 5.0);
        w.set(light, 1.0);
        let f = minimum_spanning_forest(&topo, &w).unwrap();
        assert_eq!(f.edges, vec![light]);
    }

    #[test]
    fn complete_graph_mst_weight_under_other_weights() {
        let topo = complete_graph(5);
        let w = EdgeWeights::constant(topo.num_edges(), 2.0);
        let f = minimum_spanning_forest(&topo, &w).unwrap();
        assert_eq!(f.edges.len(), 4);
        assert!((f.total_weight - 8.0).abs() < 1e-12);
        let other = EdgeWeights::constant(topo.num_edges(), 1.0);
        assert!((f.weight_under(&other) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_ok() {
        let topo = Topology::builder(0).build();
        let f = minimum_spanning_forest(&topo, &EdgeWeights::zeros(0)).unwrap();
        assert!(f.edges.is_empty());
        assert_eq!(f.num_components, 0);
    }
}
