//! Disjoint-set union (union–find) with union by rank and path halving.

use crate::NodeId;

/// A union–find structure over `n` elements, used by Kruskal's algorithm
/// and the connectivity helpers.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of the set containing `x`, with path halving.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.rank[ra] < self.rank[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        if self.rank[ra] == self.rank[rb] {
            self.rank[ra] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Convenience wrapper taking node ids.
    pub fn union_nodes(&mut self, a: NodeId, b: NodeId) -> bool {
        self.union(a.index(), b.index())
    }

    /// Convenience wrapper taking node ids.
    pub fn same_nodes(&mut self, a: NodeId, b: NodeId) -> bool {
        self.same(a.index(), b.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_merge() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.same(0, 1));
        assert!(uf.union(0, 1));
        assert!(uf.same(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.num_sets(), 3);
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.same(0, 2));
        assert!(!uf.same(2, 3));
        assert_eq!(uf.num_sets(), 2);
        uf.union(2, 3);
        assert!(uf.same(0, 4));
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn node_id_wrappers() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union_nodes(NodeId::new(0), NodeId::new(2)));
        assert!(uf.same_nodes(NodeId::new(2), NodeId::new(0)));
    }

    #[test]
    fn find_is_idempotent_representative() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        let r = uf.find(0);
        for i in 0..10 {
            assert_eq!(uf.find(i), r);
        }
        assert_eq!(uf.num_sets(), 1);
    }
}
