//! Connected components and bipartiteness (edges treated as undirected).

use crate::{NodeId, Topology};
use std::collections::VecDeque;

/// Vertex labelling by connected component, from [`connected_components`].
#[derive(Clone, Debug)]
pub struct ComponentLabels {
    /// `label[v]` is the component index of vertex `v`, in `0..count`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl ComponentLabels {
    /// Component index of `v`.
    pub fn component_of(&self, v: NodeId) -> usize {
        self.label[v.index()] as usize
    }

    /// Groups vertices by component.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &l) in self.label.iter().enumerate() {
            out[l as usize].push(NodeId::new(i));
        }
        out
    }
}

/// Labels connected components by BFS. Directed topologies are treated as
/// undirected for this purpose (weak connectivity), matching how spanning
/// trees and matchings ignore orientation.
pub fn connected_components(topo: &Topology) -> ComponentLabels {
    let n = topo.num_nodes();
    let undirected_neighbors = build_undirected_adj(topo);
    let mut label = vec![u32::MAX; n];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = count as u32;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in &undirected_neighbors[u] {
                if label[v] == u32::MAX {
                    label[v] = count as u32;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    ComponentLabels { label, count }
}

/// Whether the graph is connected (vacuously true for the empty graph).
pub fn is_connected(topo: &Topology) -> bool {
    connected_components(topo).count <= 1
}

/// Two-colors each component; returns `None` if some component contains an
/// odd cycle (i.e. the graph is not bipartite). Self-loops make a graph
/// non-bipartite. Colors are `0`/`1`, with the smallest vertex of each
/// component colored `0`.
pub fn bipartite_coloring(topo: &Topology) -> Option<Vec<u8>> {
    let n = topo.num_nodes();
    let undirected_neighbors = build_undirected_adj(topo);
    for e in topo.edge_ids() {
        let (u, v) = topo.endpoints(e);
        if u == v {
            return None;
        }
    }
    let mut color = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for s in 0..n {
        if color[s] != u8::MAX {
            continue;
        }
        color[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in &undirected_neighbors[u] {
                if color[v] == u8::MAX {
                    color[v] = 1 - color[u];
                    queue.push_back(v);
                } else if color[v] == color[u] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

fn build_undirected_adj(topo: &Topology) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); topo.num_nodes()];
    for e in topo.edge_ids() {
        let (u, v) = topo.endpoints(e);
        adj[u.index()].push(v.index());
        if u != v {
            adj[v.index()].push(u.index());
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, path_graph};

    #[test]
    fn single_component_path() {
        let topo = path_graph(5);
        let c = connected_components(&topo);
        assert_eq!(c.count, 1);
        assert!(is_connected(&topo));
        assert_eq!(c.groups().len(), 1);
        assert_eq!(c.groups()[0].len(), 5);
    }

    #[test]
    fn two_components() {
        let mut b = Topology::builder(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(2), NodeId::new(3));
        let topo = b.build();
        let c = connected_components(&topo);
        assert_eq!(c.count, 2);
        assert!(!is_connected(&topo));
        assert_eq!(
            c.component_of(NodeId::new(0)),
            c.component_of(NodeId::new(1))
        );
        assert_ne!(
            c.component_of(NodeId::new(0)),
            c.component_of(NodeId::new(2))
        );
    }

    #[test]
    fn even_cycle_bipartite_odd_cycle_not() {
        assert!(bipartite_coloring(&cycle_graph(6)).is_some());
        assert!(bipartite_coloring(&cycle_graph(5)).is_none());
    }

    #[test]
    fn coloring_is_proper() {
        let topo = cycle_graph(8);
        let color = bipartite_coloring(&topo).unwrap();
        for e in topo.edge_ids() {
            let (u, v) = topo.endpoints(e);
            assert_ne!(color[u.index()], color[v.index()]);
        }
    }

    #[test]
    fn self_loop_not_bipartite() {
        let mut b = Topology::builder(2);
        b.add_edge(NodeId::new(0), NodeId::new(0));
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        assert!(bipartite_coloring(&topo).is_none());
    }

    #[test]
    fn parallel_edges_still_bipartite() {
        let mut b = Topology::builder(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        assert!(bipartite_coloring(&topo).is_some());
    }

    #[test]
    fn directed_edges_treated_as_undirected() {
        let mut b = Topology::builder_directed(2);
        b.add_edge(NodeId::new(1), NodeId::new(0));
        let topo = b.build();
        assert!(is_connected(&topo));
    }

    #[test]
    fn isolated_vertices_are_components() {
        let topo = Topology::builder(3).build();
        assert_eq!(connected_components(&topo).count, 3);
    }
}
