//! Prim's minimum spanning forest — the cross-check for Kruskal.

use crate::algo::kruskal::SpanningForest;
use crate::{EdgeId, EdgeWeights, GraphError, NodeId, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct Entry {
    weight: f64,
    edge: EdgeId,
    node: NodeId,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .weight
            .total_cmp(&self.weight)
            .then_with(|| other.edge.cmp(&self.edge))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Minimum spanning forest via Prim with a binary heap, restarted once per
/// connected component. Supports negative weights, parallel edges, and
/// self-loops (ignored). Exists primarily as an independent implementation
/// to property-test Kruskal against.
///
/// # Errors
/// Returns [`GraphError::WeightsLengthMismatch`] if `weights` does not
/// match the topology.
pub fn prim_spanning_forest(
    topo: &Topology,
    weights: &EdgeWeights,
) -> Result<SpanningForest, GraphError> {
    weights.validate_for(topo)?;
    let n = topo.num_nodes();
    let mut in_tree = vec![false; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut total_weight = 0.0;
    let mut num_components = 0;
    let mut heap = BinaryHeap::new();

    for start in topo.nodes() {
        if in_tree[start.index()] {
            continue;
        }
        num_components += 1;
        in_tree[start.index()] = true;
        for (v, e) in topo.neighbors(start) {
            if v != start {
                heap.push(Entry {
                    weight: weights.get(e),
                    edge: e,
                    node: v,
                });
            }
        }
        while let Some(Entry { weight, edge, node }) = heap.pop() {
            if in_tree[node.index()] {
                continue;
            }
            in_tree[node.index()] = true;
            edges.push(edge);
            total_weight += weight;
            for (v, e) in topo.neighbors(node) {
                if !in_tree[v.index()] {
                    heap.push(Entry {
                        weight: weights.get(e),
                        edge: e,
                        node: v,
                    });
                }
            }
        }
    }
    Ok(SpanningForest {
        edges,
        total_weight,
        num_components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::minimum_spanning_forest;
    use crate::generators::{complete_graph, cycle_graph};

    #[test]
    fn agrees_with_kruskal_on_cycle() {
        let topo = cycle_graph(5);
        let w = EdgeWeights::new(vec![2.0, 7.0, 1.0, 5.0, 3.0]).unwrap();
        let p = prim_spanning_forest(&topo, &w).unwrap();
        let k = minimum_spanning_forest(&topo, &w).unwrap();
        assert!((p.total_weight - k.total_weight).abs() < 1e-9);
        assert_eq!(p.edges.len(), k.edges.len());
    }

    #[test]
    fn agrees_with_kruskal_on_complete_graph() {
        let topo = complete_graph(6);
        // Deterministic pseudo-random-ish weights.
        let w = EdgeWeights::new(
            (0..topo.num_edges())
                .map(|i| ((i * 37 + 11) % 101) as f64 / 10.0)
                .collect(),
        )
        .unwrap();
        let p = prim_spanning_forest(&topo, &w).unwrap();
        let k = minimum_spanning_forest(&topo, &w).unwrap();
        assert!((p.total_weight - k.total_weight).abs() < 1e-9);
        assert!(p.is_spanning_tree());
    }

    #[test]
    fn handles_disconnected() {
        let mut b = Topology::builder(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(2), NodeId::new(3));
        let topo = b.build();
        let w = EdgeWeights::constant(2, 1.0);
        let p = prim_spanning_forest(&topo, &w).unwrap();
        assert_eq!(p.num_components, 2);
        assert_eq!(p.edges.len(), 2);
    }

    #[test]
    fn negative_weights_match_kruskal() {
        let topo = cycle_graph(4);
        let w = EdgeWeights::new(vec![-1.0, -2.0, -3.0, 4.0]).unwrap();
        let p = prim_spanning_forest(&topo, &w).unwrap();
        let k = minimum_spanning_forest(&topo, &w).unwrap();
        assert!((p.total_weight - k.total_weight).abs() < 1e-9);
        assert!((p.total_weight - (-6.0)).abs() < 1e-9);
    }
}
