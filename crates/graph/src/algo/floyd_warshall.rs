//! Floyd–Warshall all-pairs distances: the dense test oracle.

use crate::{EdgeWeights, GraphError, NodeId, Topology};

/// A dense all-pairs distance matrix.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Distance from `u` to `v`, `None` if unreachable.
    ///
    /// # Panics
    /// Panics if either id is out of range.
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let d = self.d[u.index() * self.n + v.index()];
        d.is_finite().then_some(d)
    }

    /// Raw entry including the `f64::INFINITY` unreachable sentinel.
    pub fn get_raw(&self, u: NodeId, v: NodeId) -> f64 {
        self.d[u.index() * self.n + v.index()]
    }
}

/// All-pairs shortest distances in `O(V^3)`.
///
/// Intended as a correctness oracle for tests and for small instances;
/// the mechanisms themselves use repeated Dijkstra. Negative weights are
/// allowed for directed graphs; undirected graphs with a negative edge are
/// rejected (negative cycle).
///
/// # Errors
/// * [`GraphError::WeightsLengthMismatch`] on weight/topology mismatch.
/// * [`GraphError::NegativeCycle`] if any cycle has negative total weight.
pub fn floyd_warshall(
    topo: &Topology,
    weights: &EdgeWeights,
) -> Result<DistanceMatrix, GraphError> {
    weights.validate_for(topo)?;
    let n = topo.num_nodes();
    if !topo.is_directed() && weights.iter().any(|(_, w)| w < 0.0) {
        return Err(GraphError::NegativeCycle);
    }
    let mut d = vec![f64::INFINITY; n * n];
    for i in 0..n {
        d[i * n + i] = 0.0;
    }
    for e in topo.edge_ids() {
        let (u, v) = topo.endpoints(e);
        let w = weights.get(e);
        let slot = &mut d[u.index() * n + v.index()];
        if w < *slot {
            *slot = w;
        }
        if !topo.is_directed() {
            let slot = &mut d[v.index() * n + u.index()];
            if w < *slot {
                *slot = w;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            if !dik.is_finite() {
                continue;
            }
            for j in 0..n {
                let alt = dik + d[k * n + j];
                if alt < d[i * n + j] {
                    d[i * n + j] = alt;
                }
            }
        }
    }
    for i in 0..n {
        if d[i * n + i] < 0.0 {
            return Err(GraphError::NegativeCycle);
        }
    }
    Ok(DistanceMatrix { n, d })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra;
    use crate::generators::cycle_graph;

    #[test]
    fn agrees_with_dijkstra_on_cycle() {
        let topo = cycle_graph(6);
        let w = EdgeWeights::new(vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]).unwrap();
        let fw = floyd_warshall(&topo, &w).unwrap();
        for s in topo.nodes() {
            let spt = dijkstra(&topo, &w, s).unwrap();
            for t in topo.nodes() {
                let a = fw.get(s, t);
                let b = spt.distance(t);
                match (a, b) {
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn diagonal_is_zero() {
        let topo = cycle_graph(4);
        let w = EdgeWeights::constant(4, 1.0);
        let fw = floyd_warshall(&topo, &w).unwrap();
        for v in topo.nodes() {
            assert_eq!(fw.get(v, v), Some(0.0));
        }
    }

    #[test]
    fn disconnected_pair_is_none() {
        let mut b = Topology::builder(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let w = EdgeWeights::zeros(1);
        let fw = floyd_warshall(&topo, &w).unwrap();
        assert_eq!(fw.get(NodeId::new(0), NodeId::new(2)), None);
        assert_eq!(fw.get_raw(NodeId::new(0), NodeId::new(2)), f64::INFINITY);
    }

    #[test]
    fn directed_negative_ok_but_cycle_detected() {
        let mut b = Topology::builder_directed(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        let topo = b.build();
        let w = EdgeWeights::new(vec![-2.0, 1.0]).unwrap();
        let fw = floyd_warshall(&topo, &w).unwrap();
        assert_eq!(fw.get(NodeId::new(0), NodeId::new(2)), Some(-1.0));

        let mut b = Topology::builder_directed(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(0));
        let topo = b.build();
        let w = EdgeWeights::new(vec![-2.0, 1.0]).unwrap();
        assert_eq!(
            floyd_warshall(&topo, &w).unwrap_err(),
            GraphError::NegativeCycle
        );
    }

    #[test]
    fn undirected_negative_rejected() {
        let topo = cycle_graph(3);
        let w = EdgeWeights::new(vec![1.0, -1.0, 1.0]).unwrap();
        assert_eq!(
            floyd_warshall(&topo, &w).unwrap_err(),
            GraphError::NegativeCycle
        );
    }

    #[test]
    fn parallel_edges_use_minimum() {
        let mut b = Topology::builder(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let w = EdgeWeights::new(vec![5.0, 2.0]).unwrap();
        let fw = floyd_warshall(&topo, &w).unwrap();
        assert_eq!(fw.get(NodeId::new(0), NodeId::new(1)), Some(2.0));
    }
}
