//! Breadth-first search: hop distances `h(x, y)` and multi-source cover
//! assignment.
//!
//! The paper's bounded-weight algorithm (Algorithm 2) measures nearness to a
//! k-covering in *hop* distance, so everything here is unweighted.

use crate::{GraphError, NodeId, Topology};
use std::collections::VecDeque;

/// Sentinel for "unreachable" in hop-distance arrays.
pub(crate) const UNREACHED: u32 = u32::MAX;

/// Hop distances (`h(source, ·)` in the paper's notation) from a single
/// source; `u32::MAX` marks unreachable vertices.
///
/// # Errors
/// Returns [`GraphError::NodeOutOfRange`] if `source` is invalid.
pub fn hop_distances(topo: &Topology, source: NodeId) -> Result<Vec<u32>, GraphError> {
    topo.check_node(source)?;
    Ok(bfs_from(topo, std::iter::once(source)).0)
}

/// The assignment of every vertex to its nearest center, produced by
/// [`multi_source_hop_assignment`].
#[derive(Clone, Debug)]
pub struct CoverAssignment {
    /// Hop distance to the nearest center (`u32::MAX` if none reachable).
    pub dist: Vec<u32>,
    /// The nearest center `z(v)` itself, `None` if none reachable.
    pub center: Vec<Option<NodeId>>,
}

impl CoverAssignment {
    /// The nearest center of `v`, i.e. the paper's `z(v)`.
    pub fn center_of(&self, v: NodeId) -> Option<NodeId> {
        self.center[v.index()]
    }

    /// Hop distance from `v` to its nearest center.
    pub fn dist_of(&self, v: NodeId) -> Option<u32> {
        let d = self.dist[v.index()];
        (d != UNREACHED).then_some(d)
    }

    /// The covering radius: the maximum over vertices of the distance to the
    /// nearest center. `None` if some vertex is unreachable from every
    /// center.
    pub fn radius(&self) -> Option<u32> {
        let mut r = 0;
        for &d in &self.dist {
            if d == UNREACHED {
                return None;
            }
            r = r.max(d);
        }
        Some(r)
    }
}

/// Multi-source BFS: for every vertex, the hop distance to the nearest of
/// `centers` and which center that is. This realizes the paper's map
/// `v -> z(v)` for a k-covering `Z` (Algorithm 2, step 2).
///
/// # Errors
/// Returns [`GraphError::NodeOutOfRange`] for an invalid center and
/// [`GraphError::EmptyGraph`] if `centers` is empty.
pub fn multi_source_hop_assignment(
    topo: &Topology,
    centers: &[NodeId],
) -> Result<CoverAssignment, GraphError> {
    if centers.is_empty() {
        return Err(GraphError::EmptyGraph);
    }
    for &c in centers {
        topo.check_node(c)?;
    }
    let (dist, origin) = bfs_from(topo, centers.iter().copied());
    Ok(CoverAssignment {
        dist,
        center: origin,
    })
}

/// BFS from a set of sources; returns `(dist, origin)` where `origin[v]` is
/// the source whose BFS reached `v` first.
fn bfs_from(
    topo: &Topology,
    sources: impl Iterator<Item = NodeId>,
) -> (Vec<u32>, Vec<Option<NodeId>>) {
    let n = topo.num_nodes();
    let mut dist = vec![UNREACHED; n];
    let mut origin: Vec<Option<NodeId>> = vec![None; n];
    let mut queue = VecDeque::new();
    for s in sources {
        if dist[s.index()] != 0 || origin[s.index()].is_none() {
            dist[s.index()] = 0;
            origin[s.index()] = Some(s);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for (v, _) in topo.neighbors(u) {
            if dist[v.index()] == UNREACHED {
                dist[v.index()] = du + 1;
                origin[v.index()] = origin[u.index()];
                queue.push_back(v);
            }
        }
    }
    (dist, origin)
}

/// The farthest vertex from `start` (in hops) and its distance. Ties break
/// toward the smallest node id for determinism.
///
/// Two applications of this ("double sweep") find an endpoint of a longest
/// path when the graph is a tree — exactly the vertex `x` required by the
/// Meir–Moon covering construction (Lemma 4.4).
///
/// # Errors
/// Returns [`GraphError::NodeOutOfRange`] if `start` is invalid.
pub fn double_sweep_farthest(topo: &Topology, start: NodeId) -> Result<(NodeId, u32), GraphError> {
    let d = hop_distances(topo, start)?;
    let mut best = (start, 0u32);
    for v in topo.nodes() {
        let dv = d[v.index()];
        if dv != UNREACHED && dv > best.1 {
            best = (v, dv);
        }
    }
    Ok(best)
}

/// The hop eccentricity of `v`: the largest hop distance from `v` to any
/// vertex reachable from it.
///
/// # Errors
/// Returns [`GraphError::NodeOutOfRange`] if `v` is invalid.
pub fn hop_eccentricity(topo: &Topology, v: NodeId) -> Result<u32, GraphError> {
    let d = hop_distances(topo, v)?;
    Ok(d.iter()
        .copied()
        .filter(|&x| x != UNREACHED)
        .max()
        .unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::path_graph;

    #[test]
    fn path_hop_distances() {
        let topo = path_graph(5);
        let d = hop_distances(&topo, NodeId::new(0)).unwrap();
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_is_sentinel() {
        let mut b = Topology::builder(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let d = hop_distances(&topo, NodeId::new(0)).unwrap();
        assert_eq!(d[2], UNREACHED);
    }

    #[test]
    fn multi_source_assignment_picks_nearest() {
        let topo = path_graph(7);
        let centers = [NodeId::new(0), NodeId::new(6)];
        let a = multi_source_hop_assignment(&topo, &centers).unwrap();
        assert_eq!(a.center_of(NodeId::new(1)), Some(NodeId::new(0)));
        assert_eq!(a.center_of(NodeId::new(5)), Some(NodeId::new(6)));
        assert_eq!(a.dist_of(NodeId::new(3)), Some(3));
        assert_eq!(a.radius(), Some(3));
    }

    #[test]
    fn empty_centers_rejected() {
        let topo = path_graph(3);
        assert!(matches!(
            multi_source_hop_assignment(&topo, &[]),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn radius_none_when_uncovered() {
        let mut b = Topology::builder(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let a = multi_source_hop_assignment(&topo, &[NodeId::new(0)]).unwrap();
        assert_eq!(a.radius(), None);
        assert_eq!(a.dist_of(NodeId::new(2)), None);
    }

    #[test]
    fn double_sweep_on_path_finds_endpoint() {
        let topo = path_graph(9);
        let (far, d) = double_sweep_farthest(&topo, NodeId::new(4)).unwrap();
        assert_eq!(d, 4);
        assert!(far == NodeId::new(0) || far == NodeId::new(8));
        let (end, diam) = double_sweep_farthest(&topo, far).unwrap();
        assert_eq!(diam, 8);
        assert!(end == NodeId::new(0) || end == NodeId::new(8));
    }

    #[test]
    fn eccentricity_of_path_center() {
        let topo = path_graph(9);
        assert_eq!(hop_eccentricity(&topo, NodeId::new(4)).unwrap(), 4);
        assert_eq!(hop_eccentricity(&topo, NodeId::new(0)).unwrap(), 8);
    }
}
