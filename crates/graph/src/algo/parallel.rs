//! Deterministic multi-source Dijkstra over `std::thread::scope`.
//!
//! The vendor tree is offline, so there is no rayon: the driver is a plain
//! scoped-thread pool with an atomic work-stealing cursor. Each worker owns
//! a private [`DijkstraWorkspace`], claims source indices with a
//! `fetch_add`, and tags every result with its index; the results are then
//! sorted back into source order. Because every single-source run is fully
//! deterministic on its own (the heap tie-breaks on node id), the scheduling
//! order cannot leak into the outputs: **the returned vectors are
//! bit-for-bit identical for any thread count**. That is a privacy
//! requirement, not just a nicety — releases must replay identically from
//! pinned seeds no matter what machine serves them.
//!
//! This module is inside `privpath-lint`'s panic-freedom scope.

use super::dijkstra::{validate_dijkstra_inputs, ShortestPathTree};
use super::workspace::DijkstraWorkspace;
use crate::{EdgeWeights, GraphError, NodeId, Topology};
use privpath_obs::MetricRegistry;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Records the per-driver fan-out shape: how many sources were searched
/// and how evenly the work-stealing cursor spread them over workers.
/// Both are functions of the public topology and request shape only.
fn record_fanout(total_sources: usize, per_worker: &[usize]) {
    if !privpath_obs::enabled() || total_sources == 0 {
        return;
    }
    let reg = MetricRegistry::global();
    reg.counter("search_sources_total")
        .inc_by(total_sources as u64);
    let spread = reg.histogram("search_sources_per_worker");
    for &claimed in per_worker {
        // The shared ladder is in seconds, but the spread histogram
        // reuses it as a dimensionless doubling ladder: a worker that
        // claimed k sources lands in the bucket for k microseconds.
        spread.observe(claimed as f64 * 1e-6);
    }
}

/// Process-wide default for `threads == 0` callers; 0 means "ask the OS".
static DEFAULT_SEARCH_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default search parallelism used when a driver is
/// called with `threads == 0`.
///
/// `privpath release --threads N` and `privpath serve --threads N` route
/// here. Passing 0 restores the initial behavior of using
/// [`std::thread::available_parallelism`].
pub fn set_default_search_threads(n: usize) {
    DEFAULT_SEARCH_THREADS.store(n, Ordering::Relaxed);
}

/// The process-wide default search parallelism: the last value given to
/// [`set_default_search_threads`], or the OS-reported available parallelism
/// (falling back to 1) if none was set.
pub fn default_search_threads() -> usize {
    match DEFAULT_SEARCH_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        n => n,
    }
}

/// Resolves a caller-supplied thread count against the default and the
/// amount of work available.
fn effective_threads(threads: usize, num_sources: usize) -> usize {
    let requested = if threads == 0 {
        default_search_threads()
    } else {
        threads
    };
    requested.clamp(1, num_sources.max(1))
}

/// Runs `f` over the workspace state of one Dijkstra per source, in
/// parallel, returning results in source order.
///
/// Precondition: inputs already validated (weights match + nonnegative,
/// sources in range).
fn run_multi_source<T, F>(
    topo: &Topology,
    weights: &EdgeWeights,
    sources: &[NodeId],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&DijkstraWorkspace) -> T + Sync,
{
    let threads = effective_threads(threads, sources.len());
    if threads <= 1 {
        let mut ws = DijkstraWorkspace::new();
        let out: Vec<T> = sources
            .iter()
            .map(|&s| {
                ws.run_unchecked(topo, weights, s);
                f(&ws)
            })
            .collect();
        record_fanout(sources.len(), &[sources.len()]);
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let mut per_worker = vec![0usize; threads];
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = DijkstraWorkspace::new();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&s) = sources.get(i) else { break };
                        ws.run_unchecked(topo, weights, s);
                        local.push((i, f(&ws)));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::with_capacity(sources.len());
        for (w, h) in per_worker.iter_mut().zip(handles) {
            match h.join() {
                Ok(local) => {
                    *w = local.len();
                    all.extend(local);
                }
                // A worker can only panic if `f` panics; re-raise on the
                // caller's thread rather than swallowing it.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    record_fanout(sources.len(), &per_worker);
    // fetch_add hands out each index exactly once, so after sorting the
    // output order is the source order regardless of which worker ran what.
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Shortest-path trees for a batch of sources, computed in parallel.
///
/// `threads == 0` uses the process default (see
/// [`set_default_search_threads`]); any value is clamped to the number of
/// sources. Inputs are validated **once** up front — including when
/// `sources` is empty — so a negative weight is rejected before any
/// per-source work starts, and never re-scanned per source.
///
/// # Errors
/// * [`GraphError::WeightsLengthMismatch`] / [`GraphError::NegativeWeight`]
///   from validation.
/// * [`GraphError::NodeOutOfRange`] if any source is invalid.
pub fn multi_source_dijkstra(
    topo: &Topology,
    weights: &EdgeWeights,
    sources: &[NodeId],
    threads: usize,
) -> Result<Vec<ShortestPathTree>, GraphError> {
    validate_dijkstra_inputs(topo, weights)?;
    for &s in sources {
        topo.check_node(s)?;
    }
    Ok(run_multi_source(topo, weights, sources, threads, |ws| {
        ws.tree()
    }))
}

/// Distance rows for a batch of sources, computed in parallel.
///
/// Row `i` is the full distance vector from `sources[i]`
/// (`f64::INFINITY` marks unreachable vertices). Same validation, threading,
/// and determinism contract as [`multi_source_dijkstra`], but skips
/// materializing parent arrays — the right shape for distance-only callers
/// like `DistanceRelease::distance_batch`.
///
/// # Errors
/// Same as [`multi_source_dijkstra`].
pub fn multi_source_distances(
    topo: &Topology,
    weights: &EdgeWeights,
    sources: &[NodeId],
    threads: usize,
) -> Result<Vec<Vec<f64>>, GraphError> {
    validate_dijkstra_inputs(topo, weights)?;
    for &s in sources {
        topo.check_node(s)?;
    }
    Ok(run_multi_source(topo, weights, sources, threads, |ws| {
        ws.distances()
    }))
}

/// [`multi_source_dijkstra`] without precondition checks.
///
/// The caller must have already run
/// [`validate_dijkstra_inputs`](super::validate_dijkstra_inputs) (or hold an
/// equivalent invariant, e.g. weights clamped nonnegative at construction)
/// and checked every source. Batch loops that process sources in chunks use
/// this so the `O(E)` weight scan happens exactly once, not once per chunk.
pub fn multi_source_dijkstra_unchecked(
    topo: &Topology,
    weights: &EdgeWeights,
    sources: &[NodeId],
    threads: usize,
) -> Vec<ShortestPathTree> {
    run_multi_source(topo, weights, sources, threads, |ws| ws.tree())
}

/// [`multi_source_distances`] without precondition checks; see
/// [`multi_source_dijkstra_unchecked`] for the caller contract.
pub fn multi_source_distances_unchecked(
    topo: &Topology,
    weights: &EdgeWeights,
    sources: &[NodeId],
    threads: usize,
) -> Vec<Vec<f64>> {
    run_multi_source(topo, weights, sources, threads, |ws| ws.distances())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra;

    fn grid(side: usize) -> (Topology, EdgeWeights) {
        let n = side * side;
        let mut b = Topology::builder(n);
        let mut weights = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_edge(NodeId::new(v), NodeId::new(v + 1));
                    weights.push(1.0 + ((v * 7 + 3) % 11) as f64);
                }
                if r + 1 < side {
                    b.add_edge(NodeId::new(v), NodeId::new(v + side));
                    weights.push(1.0 + ((v * 13 + 5) % 7) as f64);
                }
            }
        }
        let topo = b.build();
        let w = EdgeWeights::new(weights).unwrap();
        (topo, w)
    }

    #[test]
    fn parallel_output_is_bit_identical_to_sequential() {
        let (topo, w) = grid(7);
        let sources: Vec<NodeId> = topo.nodes().collect();
        let seq: Vec<Vec<f64>> = sources
            .iter()
            .map(|&s| dijkstra(&topo, &w, s).unwrap().distances().to_vec())
            .collect();
        for threads in [1, 2, 4, 8] {
            let par = multi_source_distances(&topo, &w, &sources, threads).unwrap();
            for (a, b) in seq.iter().zip(&par) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn trees_carry_correct_sources_in_order() {
        let (topo, w) = grid(4);
        let sources = vec![NodeId::new(5), NodeId::new(0), NodeId::new(15)];
        let trees = multi_source_dijkstra(&topo, &w, &sources, 3).unwrap();
        assert_eq!(trees.len(), 3);
        for (t, &s) in trees.iter().zip(&sources) {
            assert_eq!(t.source(), s);
            assert_eq!(t.distance(s), Some(0.0));
        }
    }

    #[test]
    fn negative_weight_rejected_up_front_even_with_no_sources() {
        let mut b = Topology::builder(2);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let topo = b.build();
        let w = EdgeWeights::new(vec![-1.0]).unwrap();
        // Validation happens once, before (and independent of) the
        // per-source fan-out: an empty batch still reports the bad weight.
        assert!(matches!(
            multi_source_distances(&topo, &w, &[], 4),
            Err(GraphError::NegativeWeight { .. })
        ));
        assert!(matches!(
            multi_source_dijkstra(&topo, &w, &[NodeId::new(0)], 2),
            Err(GraphError::NegativeWeight { .. })
        ));
    }

    #[test]
    fn out_of_range_source_rejected() {
        let (topo, w) = grid(2);
        assert!(matches!(
            multi_source_dijkstra(&topo, &w, &[NodeId::new(99)], 2),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let (topo, w) = grid(3);
        let sources = vec![NodeId::new(0), NodeId::new(8)];
        let rows = multi_source_distances(&topo, &w, &sources, 64).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], 0.0);
        assert_eq!(rows[1][8], 0.0);
    }

    #[test]
    fn default_threads_knob_round_trips() {
        // Don't leave a global set: restore 0 (auto) afterwards.
        set_default_search_threads(3);
        assert_eq!(default_search_threads(), 3);
        set_default_search_threads(0);
        assert!(default_search_threads() >= 1);
    }

    #[test]
    fn empty_sources_yield_empty_output() {
        let (topo, w) = grid(2);
        assert!(multi_source_dijkstra(&topo, &w, &[], 0).unwrap().is_empty());
    }
}
