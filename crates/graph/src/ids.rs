//! Typed node and edge identifiers.
//!
//! Both identifiers are thin `u32` newtypes: graphs in this crate are bounded
//! by `u32::MAX` nodes/edges, which halves index memory relative to `usize`
//! on 64-bit targets (a deliberate type-size choice for the dense arrays used
//! throughout the substrate).

use std::fmt;

/// Identifier of a vertex in a [`Topology`](crate::Topology).
///
/// Node ids are dense: a topology with `n` nodes has ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

/// Identifier of an edge in a [`Topology`](crate::Topology).
///
/// Edge ids are dense and assigned in insertion order by
/// [`TopologyBuilder::add_edge`](crate::TopologyBuilder::add_edge); generators
/// document their edge-id layout so that weight vectors can be constructed
/// positionally.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(u32);

macro_rules! impl_id {
    ($t:ident, $label:literal) => {
        impl $t {
            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(
                    index <= u32::MAX as usize,
                    concat!($label, " index {} exceeds u32::MAX"),
                    index
                );
                Self(index as u32)
            }

            /// Returns the id as a `usize` index suitable for array indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Creates an id directly from a raw `u32`.
            #[inline]
            pub fn from_raw(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "({})"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_id!(NodeId, "NodeId");
impl_id!(EdgeId, "EdgeId");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(NodeId::from_raw(42), v);
        assert_eq!(format!("{v}"), "42");
        assert_eq!(format!("{v:?}"), "NodeId(42)");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::new(7);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e:?}"), "EdgeId(7)");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(10));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }
}
