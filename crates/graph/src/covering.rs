//! k-coverings (k-dominating sets): Lemma 4.4 and friends.
//!
//! A set `Z ⊆ V` is a *k-covering* if every vertex is within `k` hops of
//! some member of `Z` (Definition 4.1, after Meir–Moon 1975). Algorithm 2
//! releases noisy distances only between covering vertices, so small
//! coverings mean little noise; the `2kM` detour cost is the other side of
//! the trade.

use crate::algo::{
    double_sweep_farthest, hop_distances, minimum_spanning_forest, multi_source_hop_assignment,
};
use crate::{EdgeWeights, GraphError, NodeId, Topology};

/// The Meir–Moon construction of Lemma 4.4: a k-covering of size at most
/// `floor(V / (k+1))` for any connected graph with `V >= k + 1`.
///
/// Construction: take a spanning tree `T`, let `x` be an endpoint of a
/// longest path of `T` (found by double sweep), classify vertices by tree
/// distance from `x` modulo `k + 1`, and return the smallest class — each
/// class is a k-covering of `T` and hence of `G`.
///
/// If `V <= k`, the singleton `{x}` is returned (any vertex has
/// eccentricity at most `V - 1 <= k` in a connected graph).
///
/// # Errors
/// * [`GraphError::EmptyGraph`] for an empty graph.
/// * [`GraphError::InvalidParameter`] if `k == 0` (the only 0-covering is
///   all of `V`; asking for it is almost certainly a bug) or if the graph
///   is disconnected.
pub fn meir_moon_covering(topo: &Topology, k: usize) -> Result<Vec<NodeId>, GraphError> {
    if topo.num_nodes() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if k == 0 {
        return Err(GraphError::InvalidParameter(
            "k must be >= 1; the only 0-covering is V itself".into(),
        ));
    }
    // Spanning tree: unit-weight MST == BFS-ish spanning tree.
    let unit = EdgeWeights::constant(topo.num_edges(), 1.0);
    let forest = minimum_spanning_forest(topo, &unit)?;
    if !forest.is_spanning_tree() && topo.num_nodes() > 1 {
        return Err(GraphError::InvalidParameter(
            "meir_moon_covering requires a connected graph".into(),
        ));
    }

    // Build the tree topology to measure tree distances.
    let mut tb = Topology::builder(topo.num_nodes());
    for &e in &forest.edges {
        let (u, v) = topo.endpoints(e);
        tb.add_edge(u, v);
    }
    let tree = tb.build();

    // Double sweep on the tree finds an exact longest-path endpoint.
    let (mid, _) = double_sweep_farthest(&tree, NodeId::new(0))?;
    let (x, _) = double_sweep_farthest(&tree, mid)?;

    let dist = hop_distances(&tree, x)?;
    if topo.num_nodes() <= k {
        return Ok(vec![x]);
    }

    // Classes by distance mod (k + 1); return the smallest class that
    // verifies as a covering (Lemma 4.4 proves all of them do for a
    // longest-path endpoint; the verification is a cheap defensive check).
    let mut classes: Vec<Vec<NodeId>> = vec![Vec::new(); k + 1];
    for v in topo.nodes() {
        classes[dist[v.index()] as usize % (k + 1)].push(v);
    }
    let mut order: Vec<usize> = (0..=k).collect();
    order.sort_by_key(|&i| classes[i].len());
    for i in order {
        if classes[i].is_empty() {
            continue;
        }
        if verify_covering(&tree, &classes[i], k)? {
            return Ok(std::mem::take(&mut classes[i]));
        }
    }
    unreachable!("Lemma 4.4 guarantees some class is a covering");
}

/// Greedy k-covering: repeatedly pick the uncovered vertex with the most
/// uncovered vertices in its k-ball. No size guarantee comparable to
/// Lemma 4.4 in theory, but often smaller in practice — used as an
/// ablation against the Meir–Moon construction. Unlike
/// [`meir_moon_covering`] this also handles disconnected graphs (each
/// component receives its own centers).
///
/// # Errors
/// * [`GraphError::EmptyGraph`] for an empty graph.
/// * [`GraphError::InvalidParameter`] if `k == 0`.
pub fn greedy_covering(topo: &Topology, k: usize) -> Result<Vec<NodeId>, GraphError> {
    if topo.num_nodes() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if k == 0 {
        return Err(GraphError::InvalidParameter("k must be >= 1".into()));
    }
    let mut covered = vec![false; topo.num_nodes()];
    let mut centers = Vec::new();
    loop {
        // Pick the uncovered vertex covering the most uncovered vertices.
        let mut best: Option<(NodeId, usize)> = None;
        for v in topo.nodes() {
            if covered[v.index()] {
                continue;
            }
            let dist = hop_distances(topo, v)?;
            let gain = dist
                .iter()
                .enumerate()
                .filter(|&(u, &d)| !covered[u] && d as usize <= k)
                .count();
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((v, gain));
            }
        }
        let Some((center, _)) = best else { break };
        centers.push(center);
        let dist = hop_distances(topo, center)?;
        for u in 0..covered.len() {
            if dist[u] as usize <= k {
                covered[u] = true;
            }
        }
        if covered.iter().all(|&c| c) {
            break;
        }
    }
    Ok(centers)
}

/// Checks whether `centers` is a k-covering of `topo` (every vertex within
/// `k` hops of some center).
///
/// # Errors
/// Returns [`GraphError::NodeOutOfRange`] for invalid centers and
/// [`GraphError::EmptyGraph`] for an empty center set on a non-empty graph.
pub fn verify_covering(topo: &Topology, centers: &[NodeId], k: usize) -> Result<bool, GraphError> {
    if topo.num_nodes() == 0 {
        return Ok(true);
    }
    let assignment = multi_source_hop_assignment(topo, centers)?;
    Ok(assignment.radius().is_some_and(|r| r as usize <= k))
}

/// The covering radius of `centers`: the maximum hop distance from any
/// vertex to its nearest center, or `None` if some vertex is unreachable.
///
/// # Errors
/// Same conditions as [`verify_covering`].
pub fn covering_radius(topo: &Topology, centers: &[NodeId]) -> Result<Option<u32>, GraphError> {
    let assignment = multi_source_hop_assignment(topo, centers)?;
    Ok(assignment.radius())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn meir_moon_on_path_respects_size_bound() {
        for (n, k) in [(10usize, 1usize), (10, 2), (10, 3), (100, 5), (33, 4)] {
            let topo = path_graph(n);
            let z = meir_moon_covering(&topo, k).unwrap();
            assert!(verify_covering(&topo, &z, k).unwrap(), "n={n} k={k}");
            assert!(
                z.len() <= n / (k + 1) + usize::from(n < k + 1),
                "n={n} k={k}: |Z|={} > floor(n/(k+1))={}",
                z.len(),
                n / (k + 1)
            );
        }
    }

    #[test]
    fn meir_moon_on_star_and_cycle() {
        let star = star_graph(20);
        let z = meir_moon_covering(&star, 2).unwrap();
        assert!(verify_covering(&star, &z, 2).unwrap());
        assert!(z.len() <= 20 / 3);

        let cycle = cycle_graph(12);
        let z = meir_moon_covering(&cycle, 2).unwrap();
        assert!(verify_covering(&cycle, &z, 2).unwrap());
        assert!(z.len() <= 4);
    }

    #[test]
    fn small_graph_single_center() {
        let topo = path_graph(3);
        let z = meir_moon_covering(&topo, 5).unwrap();
        assert_eq!(z.len(), 1);
        assert!(verify_covering(&topo, &z, 5).unwrap());
    }

    #[test]
    fn k_zero_rejected() {
        let topo = path_graph(3);
        assert!(matches!(
            meir_moon_covering(&topo, 0),
            Err(GraphError::InvalidParameter(_))
        ));
        assert!(matches!(
            greedy_covering(&topo, 0),
            Err(GraphError::InvalidParameter(_))
        ));
    }

    #[test]
    fn disconnected_meir_moon_rejected_greedy_covers_per_component() {
        let mut b = Topology::builder(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(2), NodeId::new(3));
        let topo = b.build();
        assert!(meir_moon_covering(&topo, 1).is_err());
        let z = greedy_covering(&topo, 1).unwrap();
        assert_eq!(z.len(), 2);
        assert!(verify_covering(&topo, &z, 1).unwrap());
    }

    #[test]
    fn greedy_produces_valid_covering() {
        for (n, k) in [(15usize, 2usize), (30, 3)] {
            let topo = path_graph(n);
            let z = greedy_covering(&topo, k).unwrap();
            assert!(verify_covering(&topo, &z, k).unwrap(), "n={n} k={k}");
        }
        let topo = complete_graph(8);
        let z = greedy_covering(&topo, 1).unwrap();
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn verify_covering_rejects_insufficient() {
        let topo = path_graph(10);
        // A single endpoint cannot 2-cover a 10-path.
        assert!(!verify_covering(&topo, &[NodeId::new(0)], 2).unwrap());
        assert!(verify_covering(&topo, &[NodeId::new(0)], 9).unwrap());
    }

    #[test]
    fn covering_radius_reports_max() {
        let topo = path_graph(9);
        let r = covering_radius(&topo, &[NodeId::new(4)]).unwrap();
        assert_eq!(r, Some(4));
        let r = covering_radius(&topo, &[NodeId::new(0), NodeId::new(8)]).unwrap();
        assert_eq!(r, Some(4));
    }

    #[test]
    fn whole_vertex_set_is_0_like_covering() {
        let topo = cycle_graph(6);
        let all: Vec<NodeId> = topo.nodes().collect();
        assert_eq!(covering_radius(&topo, &all).unwrap(), Some(0));
    }
}
