//! # privpath-store — the live release store
//!
//! Sealfon's model fixes the topology as public and the weights as
//! private, which makes *re-release under changing weights* a natural,
//! budget-metered operation: when conditions shift (traffic moves, a
//! fleet re-routes), the curator pays fresh privacy budget to re-run a
//! mechanism over the new weights, and every query thereafter is free
//! post-processing again. This crate turns that lifecycle into a serving
//! system — the fifth layer, above the engine and beside the network
//! serve path:
//!
//! * [`ReleaseStore`] — concurrent and **multi-tenant**: named
//!   namespaces, each with its own topology, private weights, and
//!   [`Accountant`](privpath_dp::Accountant) budget.
//! * **Epoch-versioned snapshots** — every committed mutation (publish,
//!   update-weights, drop) bumps the namespace epoch and installs a
//!   fresh immutable [`NamespaceSnapshot`] as one pointer swap; readers
//!   clone the current `Arc` and then run lock-free, never observing a
//!   half-applied mutation.
//! * [`ReleaseSpec`] — the re-runnable description of a release
//!   (mechanism + knobs) the store persists so `update-weights` can
//!   re-run every live release against fresh weights, debiting the
//!   namespace budget through the engine's check-before-noise
//!   accounting.
//! * **Crash-safe persistence** — per-namespace manifest plus `v3`
//!   release files, written temp-then-rename with fsync;
//!   [`ReleaseStore::open`] replays the manifest (ledger first, then
//!   releases) and discards unreferenced crash leftovers.
//! * **Read-path source cache** — each snapshot carries a sharded
//!   `(release, source)` → distance-vector cache, so repeated-source
//!   workloads skip recomputation; epoch bumps invalidate structurally
//!   (a new snapshot starts with an empty cache).
//! * **Geo namespaces** — [`ReleaseStore::create_namespace_geo`]
//!   attaches one public lat/lon coordinate per node, builds a
//!   [`SpatialIndex`] (quad tree) once, persists it crash-safely next
//!   to the manifest, and exposes it on every snapshot via
//!   [`NamespaceSnapshot::geo`] so the serve layer can snap query
//!   coordinates to nodes for free (public-data preprocessing, no
//!   budget).
//! * **Continual-release namespaces** —
//!   [`ReleaseStore::create_namespace_continual`] fixes an update
//!   horizon `T` and routes every weight update through a binary-tree
//!   composer (Chan–Shi–Song over Sealfon's neighboring weightings):
//!   Gaussian noise on `O(log T)` dyadic partial sums, a zCDP rho
//!   allowance split across tree levels, and an eps ledger debited only
//!   when the stream crosses a power of two — polylog total spend over
//!   the stream where naive re-release pays per update. Releases on such
//!   a namespace are exact post-processing of the tree estimate and
//!   carry a `ContinualRelease` accuracy contract.
//!
//! ## Example
//!
//! ```
//! use privpath_dp::Epsilon;
//! use privpath_engine::{ReleaseKind, ReleaseId};
//! use privpath_graph::generators::{path_graph, uniform_weights};
//! use privpath_graph::{EdgeWeights, NodeId};
//! use privpath_store::{ReleaseSpec, ReleaseStore};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let dir = std::env::temp_dir().join(format!("privpath-store-doc-{}", std::process::id()));
//! let store = ReleaseStore::open(&dir)?.with_seed(7);
//!
//! // A tenant: public topology, private weights, its own budget.
//! let mut rng = StdRng::seed_from_u64(1);
//! let topo = path_graph(16);
//! let weights = uniform_weights(topo.num_edges(), 1.0, 5.0, &mut rng);
//! store.create_namespace("metro", topo.clone(), weights, None)?;
//!
//! // Publish, query, update the weights, query again: the second answer
//! // comes from a new epoch and freshly re-noised data.
//! let spec = ReleaseSpec::new(ReleaseKind::ShortestPath, Epsilon::new(2.0)?)?;
//! let receipt = store.publish("metro", &spec)?;
//! let (u, v) = (NodeId::new(0), NodeId::new(15));
//! let before = store.snapshot("metro")?;
//! let d1 = before.distance(receipt.id, u, v)?;
//!
//! let update = store.update_weights("metro", EdgeWeights::constant(15, 9.0))?;
//! let after = store.snapshot("metro")?;
//! assert_eq!(after.epoch(), before.epoch() + 1);
//! let d2 = after.distance(receipt.id, u, v)?;
//! assert!(d1.is_finite() && d2.is_finite());
//!
//! // Both generations were paid for.
//! let stats = store.stats_for("metro")?;
//! assert_eq!(stats.spent_eps, 4.0);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod continual;
mod error;
mod manifest;
mod spec;
mod store;

pub use continual::ContinualStatus;
pub use error::StoreError;
pub use spec::{is_continual_servable, is_storable, ReleaseSpec};
pub use store::{
    is_valid_namespace, NamespaceSnapshot, NamespaceStats, PublishReceipt, ReleaseStore,
    UpdateReceipt,
};
// Re-exported so the serve layer (and embedders) can snap and type geo
// results without a direct dependency on the geo crate.
pub use privpath_geo::{GeoBounds, GeoPoint, SnapError, Snapped, SpatialIndex};
