//! Continual-mode namespace state: the tree composer plus the budget
//! arithmetic that turns a store-level `(eps, delta)` budget into a
//! polylog stream spend.
//!
//! A continual namespace fixes a horizon `T` at init. The composer's
//! capacity is `T + 1`: stream item 1 is the base weight vector itself
//! (pushed at init, so every later prefix sum *is* the current weights)
//! and items `2 ..= T + 1` are the update deltas. The namespace's rho
//! allowance — derived from its `(eps, delta)` budget through the tight
//! zCDP inverse — is split evenly over the `floor(log2(T + 1)) + 1` tree
//! levels, and the eps ledger is debited by *telescoping increments*:
//! after `n` items the stream's cumulative cost is
//! `eps(rho_node * levels_used(n))`, which steps only when `n` crosses a
//! power of two — the sublinearity the whole subsystem exists for.
//!
//! The composer's full state (per-level raw and noisy vectors) persists
//! to an epoch-suffixed `continual.e<epoch>.state` file written before
//! the manifest rename, so the rename atomically commits the stream
//! position together with the ledger and release files.

use crate::error::StoreError;
use crate::manifest::atomic_write;
use privpath_core::bounds::AccuracyContract;
use privpath_dp::continual::{levels_used, TreeComposer};
use privpath_dp::zcdp::zcdp_epsilon;
use privpath_graph::EdgeWeights;
use std::fs::File;
use std::io::Read;
use std::path::Path;

const STATE_HEADER: &str = "privpath-continual-state v1";

/// The tree-state file name at one epoch (write-once, like release
/// files: a crash mid-generation leaves the old state referenced).
pub(crate) fn state_file_name(epoch: u64) -> String {
    format!("continual.e{epoch}.state")
}

/// Read-only continual status, published on every snapshot so `stats`
/// can report it without touching the writer lock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContinualStatus {
    /// Updates absorbed so far (the base release does not count).
    pub position: u64,
    /// The declared horizon `T`.
    pub horizon: u64,
    /// Cumulative rho consumed by the stream.
    pub rho_spent: f64,
    /// The namespace's total rho allowance.
    pub rho_total: f64,
}

/// The writer-side state of a continual namespace.
#[derive(Clone, Debug)]
pub(crate) struct ContinualState {
    /// The declared horizon `T` (maximum weight updates).
    pub horizon: u64,
    /// Total rho allowance over the whole stream.
    pub rho_total: f64,
    /// The delta at which rho converts back into the eps ledger.
    pub delta: f64,
    /// The binary-tree composer over `(base, delta_1, ..., delta_T)`.
    pub composer: TreeComposer,
}

impl ContinualState {
    /// A fresh stream over `dim` edges: capacity `horizon + 1` (base
    /// weights plus `horizon` deltas), rho split evenly over the tree
    /// levels.
    pub fn new(horizon: u64, rho_total: f64, delta: f64, dim: usize) -> Result<Self, StoreError> {
        let capacity = horizon
            .checked_add(1)
            .ok_or_else(|| StoreError::ContinualAccountant("horizon overflow".into()))?;
        let levels = privpath_dp::continual::levels_for(capacity);
        if levels == 0 || !(rho_total.is_finite() && rho_total > 0.0) {
            return Err(StoreError::ContinualAccountant(format!(
                "cannot split rho {rho_total} over {levels} tree levels"
            )));
        }
        let rho_node = rho_total / levels as f64;
        // Per-item L2 sensitivity 1 (Sealfon's neighboring weightings):
        // sigma_node = 1 / sqrt(2 rho_node).
        let sigma_node = 1.0 / (2.0 * rho_node).sqrt();
        let composer = TreeComposer::new(dim, capacity, sigma_node)
            .map_err(|e| StoreError::ContinualAccountant(e.to_string()))?;
        Ok(ContinualState {
            horizon,
            rho_total,
            delta,
            composer,
        })
    }

    /// rho per tree node.
    pub fn rho_node(&self) -> f64 {
        self.rho_total / self.composer.levels() as f64
    }

    /// Cumulative rho consumed after the items pushed so far.
    pub fn rho_spent(&self) -> f64 {
        self.rho_node() * levels_used(self.composer.items()) as f64
    }

    /// Updates absorbed so far (excluding the base item).
    pub fn position(&self) -> u64 {
        self.composer.items().saturating_sub(1)
    }

    /// The composed per-edge noise after any prefix:
    /// `sqrt(levels) * sigma_node`.
    pub fn sigma_edge(&self) -> f64 {
        (self.composer.levels() as f64).sqrt() * self.composer.sigma_node()
    }

    /// The `(eps, delta)` ledger increment the **next** push will cost:
    /// the telescoping difference of the tight conversion, plus the full
    /// namespace delta on the very first item (delta is paid once for
    /// the whole Gaussian stream).
    pub fn prospective_debit(&self) -> Result<(f64, f64), StoreError> {
        let n = self.composer.items();
        let eps_at = |items: u64| {
            zcdp_epsilon(self.rho_node() * levels_used(items) as f64, self.delta)
                .map_err(|e| StoreError::ContinualAccountant(e.to_string()))
        };
        let inc_eps = (eps_at(n + 1)? - eps_at(n)?).max(0.0);
        let inc_delta = if n == 0 { self.delta } else { 0.0 };
        Ok((inc_eps, inc_delta))
    }

    /// The read-only status for snapshots.
    pub fn status(&self) -> ContinualStatus {
        ContinualStatus {
            position: self.position(),
            horizon: self.horizon,
            rho_spent: self.rho_spent(),
            rho_total: self.rho_total,
        }
    }

    /// The accuracy contract continual releases carry.
    pub fn contract(&self, v: usize, num_edges: usize) -> AccuracyContract {
        AccuracyContract::ContinualRelease {
            v,
            num_edges,
            horizon: self.horizon,
            levels: self.composer.levels(),
            sigma_edge: self.sigma_edge(),
        }
    }

    /// The current weight estimate, clamped nonnegative so every exact
    /// mechanism (Dijkstra included) accepts it.
    #[allow(clippy::disallowed_methods)] // justified: see the privlint allow below
    pub fn estimate_weights(&self) -> EdgeWeights {
        let est: Vec<f64> = self
            .composer
            .estimate()
            .into_iter()
            .map(|v| v.max(0.0))
            .collect();
        // privlint: allow(panic-freedom, "estimates are max(0.0)-clamped sums of finite tree-node values, so the finiteness check cannot reject")
        EdgeWeights::new(est).expect("composer estimates are finite")
    }

    /// Renders the state file.
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(STATE_HEADER);
        out.push('\n');
        out.push_str(&format!("horizon {}\n", self.horizon));
        out.push_str(&format!("rho-total {:?}\n", self.rho_total));
        out.push_str(&format!("delta {:?}\n", self.delta));
        out.push_str(&format!("dim {}\n", self.composer.dim()));
        out.push_str(&format!("items {}\n", self.composer.items()));
        out.push_str(&format!("levels {}\n", self.composer.levels()));
        for j in 0..self.composer.levels() {
            match self.composer.level_state(j) {
                None => out.push_str(&format!("level {j} empty\n")),
                Some((raw, noisy)) => {
                    out.push_str(&format!("level {j}"));
                    for v in raw.iter().chain(noisy) {
                        out.push_str(&format!(" {v:?}"));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Writes the state file atomically at `dir/file`.
    pub fn write_state(&self, dir: &Path, file: &str) -> Result<(), StoreError> {
        atomic_write(&dir.join(file), self.render().as_bytes())
    }

    /// Reads a state file back; `dim` cross-checks the namespace's edge
    /// count so a mismatched file is rejected rather than served.
    pub fn read_state(dir: &Path, file: &str, dim: usize) -> Result<Self, StoreError> {
        let path = dir.join(file);
        let mut text = String::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| StoreError::io(&path, e))?;
        Self::parse(&text, dim).map_err(|msg| StoreError::manifest(&path, msg))
    }

    fn parse(text: &str, expect_dim: usize) -> Result<Self, String> {
        let mut lines = text.lines();
        let mut next = |what: &str| -> Result<&str, String> {
            lines
                .next()
                .ok_or_else(|| format!("unexpected end of state file, expected {what}"))
        };
        if next("header")? != STATE_HEADER {
            return Err(format!("bad header (expected {STATE_HEADER:?})"));
        }
        let field = |line: &str, key: &str| -> Result<String, String> {
            line.strip_prefix(key)
                .and_then(|s| s.strip_prefix(' '))
                .map(|s| s.trim().to_string())
                .ok_or_else(|| format!("expected `{key} <value>`"))
        };
        let horizon: u64 = field(next("horizon")?, "horizon")?
            .parse()
            .map_err(|_| "invalid horizon")?;
        let rho_total: f64 = field(next("rho-total")?, "rho-total")?
            .parse()
            .map_err(|_| "invalid rho-total")?;
        let delta: f64 = field(next("delta")?, "delta")?
            .parse()
            .map_err(|_| "invalid delta")?;
        let dim: usize = field(next("dim")?, "dim")?
            .parse()
            .map_err(|_| "invalid dim")?;
        if dim != expect_dim {
            return Err(format!(
                "state dimension {dim} does not match namespace edge count {expect_dim}"
            ));
        }
        let items: u64 = field(next("items")?, "items")?
            .parse()
            .map_err(|_| "invalid items")?;
        let levels: u32 = field(next("levels")?, "levels")?
            .parse()
            .map_err(|_| "invalid levels")?;
        let mut slots: Vec<Option<(Vec<f64>, Vec<f64>)>> = Vec::with_capacity(levels as usize);
        for j in 0..levels {
            let line = next("level")?;
            let rest = line
                .strip_prefix(&format!("level {j}"))
                .ok_or_else(|| format!("expected `level {j} ...`"))?;
            let rest = rest.trim();
            if rest == "empty" {
                slots.push(None);
                continue;
            }
            let values: Vec<f64> = rest
                .split_whitespace()
                .map(|t| t.parse::<f64>().map_err(|_| format!("bad float {t:?}")))
                .collect::<Result<_, _>>()?;
            if values.len() != 2 * dim {
                return Err(format!(
                    "level {j} has {} values, expected {}",
                    values.len(),
                    2 * dim
                ));
            }
            let (raw, noisy) = values.split_at(dim);
            slots.push(Some((raw.to_vec(), noisy.to_vec())));
        }
        if let Some(extra) = lines.next() {
            if !extra.trim().is_empty() {
                return Err(format!("unexpected trailing line {extra:?}"));
            }
        }
        // Re-derive the composer invariants through the same constructor
        // path as a fresh stream, then install the persisted slots.
        let template =
            ContinualState::new(horizon, rho_total, delta, dim).map_err(|e| e.to_string())?;
        if template.composer.levels() != levels {
            return Err(format!(
                "state has {levels} levels, horizon {horizon} implies {}",
                template.composer.levels()
            ));
        }
        let composer = TreeComposer::restore(
            dim,
            horizon + 1,
            template.composer.sigma_node(),
            items,
            slots,
        )
        .map_err(|e| e.to_string())?;
        Ok(ContinualState {
            horizon,
            rho_total,
            delta,
            composer,
        })
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pushed(state: &mut ContinualState, n: u64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = state.composer.dim();
        for t in 0..n {
            let delta: Vec<f64> = (0..dim).map(|c| (t + c as u64) as f64 * 0.25).collect();
            state.composer.push(&delta, &mut rng).unwrap();
        }
    }

    #[test]
    fn telescoping_debits_step_at_powers_of_two() {
        let mut state = ContinualState::new(16, 0.5, 1e-6, 2).unwrap();
        // First push pays delta and a positive eps increment.
        let (e1, d1) = state.prospective_debit().unwrap();
        assert!(e1 > 0.0);
        assert_eq!(d1, 1e-6);
        pushed(&mut state, 1, 1);
        // Second item crosses 2 = 2^1: another eps step, no more delta.
        let (e2, d2) = state.prospective_debit().unwrap();
        assert!(e2 > 0.0);
        assert_eq!(d2, 0.0);
        pushed(&mut state, 1, 2);
        // Third item stays at 2 levels: free.
        let (e3, _) = state.prospective_debit().unwrap();
        assert_eq!(e3, 0.0);
        pushed(&mut state, 1, 3);
        // Fourth item crosses 4 = 2^2: a step again.
        let (e4, _) = state.prospective_debit().unwrap();
        assert!(e4 > 0.0);
    }

    #[test]
    fn rho_spend_is_polylog_in_position() {
        let mut state = ContinualState::new(256, 1.0, 1e-6, 1).unwrap();
        pushed(&mut state, 257, 4);
        // All 257 items consumed: exactly levels * rho_node = rho_total.
        assert!((state.rho_spent() - 1.0).abs() < 1e-12);
        assert_eq!(state.position(), 256);
        let status = state.status();
        assert_eq!(status.horizon, 256);
        assert_eq!(status.position, 256);
        assert!((status.rho_total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn state_file_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "privpath-continual-state-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut state = ContinualState::new(20, 0.3, 1e-7, 3).unwrap();
        pushed(&mut state, 11, 9);
        state.write_state(&dir, "continual.e5.state").unwrap();
        let back = ContinualState::read_state(&dir, "continual.e5.state", 3).unwrap();
        assert_eq!(back.composer, state.composer);
        assert_eq!(back.horizon, 20);
        assert_eq!(back.rho_total, 0.3);
        assert_eq!(back.delta, 1e-7);
        // Wrong dimension is refused.
        assert!(ContinualState::read_state(&dir, "continual.e5.state", 4).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn estimate_weights_clamps_negatives() {
        let mut state = ContinualState::new(4, 1e-4, 1e-6, 2).unwrap();
        // Tiny rho means huge sigma: some coordinates will go negative.
        pushed(&mut state, 3, 13);
        let w = state.estimate_weights();
        for i in 0..w.len() {
            assert!(w.get(privpath_graph::EdgeId::new(i)) >= 0.0);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ContinualState::new(16, 0.0, 1e-6, 2).is_err());
        assert!(ContinualState::new(16, f64::NAN, 1e-6, 2).is_err());
        assert!(ContinualState::new(u64::MAX, 1.0, 1e-6, 2).is_err());
    }
}
