//! The read-path source cache: released distance vectors keyed by
//! `(release, source)`.
//!
//! Serving workloads reuse sources heavily (a navigation frontend asks
//! many destinations per origin), and for graph-replaying releases every
//! distinct source costs a Dijkstra. The cache stores the whole
//! [`source_distances`](privpath_engine::DistanceRelease::source_distances)
//! vector per `(release, source)` — one computation answers every target
//! — behind a small fixed array of sharded locks, so concurrent readers
//! on different sources rarely contend.
//!
//! **Invalidation is structural, not tracked**: a cache instance belongs
//! to exactly one [`NamespaceSnapshot`](crate::NamespaceSnapshot), and
//! every epoch bump installs a fresh snapshot with a fresh, empty cache.
//! A stale answer cannot survive an `update-weights` because nothing
//! carries cached values across the swap. Hit/miss counters live in the
//! process-wide `privpath-obs` registry (`store_cache_hits_total{ns}` /
//! `store_cache_misses_total{ns}`), shared across a namespace's
//! snapshots so both `stats` and the `metrics` exposition report
//! cumulative totals from the same cells.

use privpath_engine::EngineError;
use privpath_obs::{Counter, MetricRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Number of lock shards (a fixed power of two; the key hash picks one).
const NUM_SHARDS: usize = 16;

/// Cumulative cache counters for one namespace, across snapshots —
/// handles into the global metric registry. `Default` yields detached
/// (unexported) counters for tests and transient snapshots.
#[derive(Clone, Debug)]
pub(crate) struct CacheCounters {
    hits: Counter,
    misses: Counter,
}

impl Default for CacheCounters {
    fn default() -> Self {
        CacheCounters {
            hits: Counter::detached(),
            misses: Counter::detached(),
        }
    }
}

impl CacheCounters {
    /// Registry-backed counters for namespace `ns`, exported as
    /// `store_cache_hits_total{ns}` / `store_cache_misses_total{ns}`.
    /// The namespace name is operator-chosen public metadata, never
    /// request- or weight-derived, so it is safe as a label value.
    pub(crate) fn for_namespace(ns: &str) -> Self {
        let reg = MetricRegistry::global();
        CacheCounters {
            hits: reg.counter_with("store_cache_hits_total", &[("ns", ns)]),
            misses: reg.counter_with("store_cache_misses_total", &[("ns", ns)]),
        }
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.value()
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.value()
    }
}

/// One lock shard: `(release, source)` → released distance vector.
type Shard = Mutex<HashMap<(u64, usize), Arc<Vec<f64>>>>;

/// One snapshot's source-vector cache.
#[derive(Debug)]
pub(crate) struct SourceCache {
    shards: Vec<Shard>,
    per_shard_capacity: usize,
    counters: CacheCounters,
}

impl SourceCache {
    /// A cache bounded at roughly `capacity` source vectors, reporting
    /// into `counters`.
    pub(crate) fn new(capacity: usize, counters: CacheCounters) -> Self {
        let per_shard_capacity = capacity.div_ceil(NUM_SHARDS).max(1);
        SourceCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            per_shard_capacity,
            counters,
        }
    }

    fn shard(&self, release: u64, source: usize) -> &Shard {
        // A cheap mix of the two key halves; NUM_SHARDS is a power of two.
        let h = release
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(source as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        &self.shards[(h >> 32) as usize % NUM_SHARDS]
    }

    /// The cached vector for `(release, source)` if present, counting a
    /// hit; `None` counts nothing (the caller is expected to follow up
    /// with [`insert`](Self::insert), which counts the miss). Batch reads
    /// use peek/insert so all their misses can be computed in one
    /// parallel fan-out instead of one Dijkstra at a time.
    pub(crate) fn peek(&self, release: u64, source: usize) -> Option<Arc<Vec<f64>>> {
        let hit = self
            .shard(release, source)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(release, source))
            .map(Arc::clone);
        if hit.is_some() {
            self.counters.hits.inc();
        }
        hit
    }

    /// Stores a computed vector for `(release, source)`, counting a miss
    /// and evicting if the shard is at capacity; returns the shared
    /// handle. A racing insert of the same key is harmless: both vectors
    /// are identical post-processing of the same release.
    pub(crate) fn insert(&self, release: u64, source: usize, vector: Vec<f64>) -> Arc<Vec<f64>> {
        let vector = Arc::new(vector);
        self.counters.misses.inc();
        let mut guard = self
            .shard(release, source)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if guard.len() >= self.per_shard_capacity {
            if let Some(&victim) = guard.keys().next() {
                guard.remove(&victim);
            }
        }
        guard.insert((release, source), Arc::clone(&vector));
        vector
    }

    /// The cached distance vector for `(release, source)`, computing and
    /// inserting it on a miss. The computation runs **outside** the shard
    /// lock so concurrent misses on different sources overlap; two racing
    /// readers of the same cold key may both compute (the second insert
    /// wins, both results are identical post-processing of the same
    /// release).
    ///
    /// # Errors
    /// Whatever `compute` reports; errors are never cached.
    pub(crate) fn get_or_compute(
        &self,
        release: u64,
        source: usize,
        compute: impl FnOnce() -> Result<Vec<f64>, EngineError>,
    ) -> Result<Arc<Vec<f64>>, EngineError> {
        let shard = self.shard(release, source);
        // A shard guards a plain map of `Arc`s: a reader that panicked
        // mid-lookup cannot corrupt it, so recover from poisoning — a
        // cache must never take down the read path.
        if let Some(hit) = shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(release, source))
        {
            self.counters.hits.inc();
            return Ok(Arc::clone(hit));
        }
        let vector = Arc::new(compute()?);
        self.counters.misses.inc();
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.len() >= self.per_shard_capacity {
            // Bounded memory beats recency here: evict an arbitrary
            // entry (HashMap order) rather than tracking LRU on the hot
            // path.
            if let Some(&victim) = guard.keys().next() {
                guard.remove(&victim);
            }
        }
        guard.insert((release, source), Arc::clone(&vector));
        Ok(vector)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss_and_counters() {
        let counters = CacheCounters::default();
        let cache = SourceCache::new(8, counters.clone());
        let v1 = cache.get_or_compute(0, 3, || Ok(vec![1.0, 2.0])).unwrap();
        let v2 = cache
            .get_or_compute(0, 3, || panic!("must be served from cache"))
            .unwrap();
        assert!(Arc::ptr_eq(&v1, &v2));
        assert_eq!(counters.hits(), 1);
        assert_eq!(counters.misses(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SourceCache::new(8, CacheCounters::default());
        let err = cache
            .get_or_compute(1, 1, || Err(EngineError::UnknownRelease(1)))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownRelease(1)));
        let ok = cache.get_or_compute(1, 1, || Ok(vec![0.5])).unwrap();
        assert_eq!(*ok, vec![0.5]);
    }

    #[test]
    fn capacity_is_bounded() {
        let cache = SourceCache::new(4, CacheCounters::default());
        for s in 0..1000 {
            cache.get_or_compute(0, s, || Ok(vec![s as f64])).unwrap();
        }
        let total: usize = cache.shards.iter().map(|s| s.lock().unwrap().len()).sum();
        assert!(total <= NUM_SHARDS, "cache grew past its bound: {total}");
    }
}
