//! The per-namespace manifest: the store's crash-safe source of truth.
//!
//! Every mutation rewrites the manifest via **temp-write + fsync +
//! rename**, so a reader of the directory always sees either the old or
//! the new manifest, never a torn one. Opening a store replays each
//! manifest: the budget and the full spend ledger come back first (they
//! are the privacy source of truth — they cover spends on records since
//! replaced by `update-weights` or dropped, which the release files alone
//! cannot reconstruct), then the referenced release files are attached
//! without re-debiting. Files in the directory that the manifest does not
//! reference (a crash between a release-file rename and the manifest
//! rename) are deleted on open — the noise they hold is never served.
//!
//! ```text
//! privpath-store-manifest v1
//! namespace <name>
//! epoch <u64>
//! budget eps <f64> delta <f64>   |   budget unbounded
//! continual horizon <u64> rho-total <f64> delta <f64> file <name>   (optional)
//! geo file <name>                                                   (optional)
//! spends <count>
//! spend <eps> <delta> <label to end of line>     (count times)
//! releases <count>
//! release <id> <filename> <spec tokens>          (count times)
//! ```
//!
//! The `continual` line (absent for standard namespaces, so v1 manifests
//! parse unchanged) pins the stream's privacy configuration and names the
//! epoch-suffixed tree-state file; the state file itself is written
//! before the manifest rename, so the rename atomically commits both.
//! The `geo` line (absent for non-geo namespaces, same compatibility
//! argument) names the spatial-index artifact built from the public node
//! coordinates; the index is epoch-invariant (coordinates never change),
//! written once at namespace creation before the first manifest rename.

use crate::error::StoreError;
use crate::spec::ReleaseSpec;
use std::fs::{self, File};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const HEADER: &str = "privpath-store-manifest v1";

/// The manifest file name inside a namespace directory.
pub(crate) const MANIFEST_FILE: &str = "manifest";
/// The public-topology file name inside a namespace directory.
pub(crate) const TOPOLOGY_FILE: &str = "topology";
/// The private-weights file name inside a namespace directory.
pub(crate) const WEIGHTS_FILE: &str = "weights";
/// The spatial-index file name inside a geo namespace directory. The
/// index covers public coordinates only and never changes after
/// creation, so (unlike release files) it needs no epoch suffix.
pub(crate) const GEO_INDEX_FILE: &str = "geo.index";

/// The release file name for a registry id at one epoch. The epoch
/// suffix makes release files **write-once**: an `update-weights` pass
/// writes the new generation under new names and the manifest rename is
/// the single commit point — a crash mid-generation leaves the old
/// files untouched and still referenced, never a half-overwritten mix.
pub(crate) fn release_file_name(id: u64, epoch: u64) -> String {
    format!("r{id}.e{epoch}.release")
}

/// The continual-mode configuration a manifest pins for a namespace.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct ContinualManifest {
    /// The declared stream horizon `T` (maximum weight updates).
    pub horizon: u64,
    /// The total zCDP budget the tree composer may consume.
    pub rho_total: f64,
    /// The delta at which rho converts back to the eps ledger.
    pub delta: f64,
    /// The epoch-suffixed tree-state file this manifest references.
    pub file: String,
}

/// Everything the manifest records for one namespace.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct ManifestData {
    pub namespace: String,
    pub epoch: u64,
    /// The namespace's total `(eps, delta)` budget, or `None` when
    /// unbounded.
    pub budget: Option<(f64, f64)>,
    /// Continual-mode configuration, or `None` for a standard namespace.
    pub continual: Option<ContinualManifest>,
    /// The spatial-index file this namespace owns, or `None` when the
    /// namespace has no coordinates.
    pub geo: Option<String>,
    /// The full spend ledger: `(label, eps, delta)` in spend order.
    pub spends: Vec<(String, f64, f64)>,
    /// The live releases: `(id, file name, re-run spec)` in id order.
    pub releases: Vec<(u64, String, ReleaseSpec)>,
}

/// Writes `content` to `path` atomically: temp file in the same
/// directory, fsync, rename over the target.
pub(crate) fn atomic_write(path: &Path, content: &[u8]) -> Result<(), StoreError> {
    let tmp = tmp_path(path);
    let write = |tmp: &Path| -> std::io::Result<()> {
        let mut f = BufWriter::new(File::create(tmp)?);
        f.write_all(content)?;
        let f = f.into_inner().map_err(|e| e.into_error())?;
        let sync_started = std::time::Instant::now();
        f.sync_all()?;
        privpath_obs::MetricRegistry::global()
            .histogram("store_fsync_seconds")
            .observe(sync_started.elapsed().as_secs_f64());
        fs::rename(tmp, path)
    };
    write(&tmp).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        StoreError::io(path, e)
    })
}

/// The temp-file path a crash may leave next to `path`.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".tmp");
    path.with_file_name(name)
}

fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Renders the manifest text.
fn render(data: &ManifestData) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("namespace {}\n", data.namespace));
    out.push_str(&format!("epoch {}\n", data.epoch));
    match data.budget {
        Some((e, d)) => out.push_str(&format!("budget eps {} delta {}\n", fmt_f64(e), fmt_f64(d))),
        None => out.push_str("budget unbounded\n"),
    }
    if let Some(c) = &data.continual {
        out.push_str(&format!(
            "continual horizon {} rho-total {} delta {} file {}\n",
            c.horizon,
            fmt_f64(c.rho_total),
            fmt_f64(c.delta),
            c.file
        ));
    }
    if let Some(g) = &data.geo {
        out.push_str(&format!("geo file {g}\n"));
    }
    out.push_str(&format!("spends {}\n", data.spends.len()));
    for (label, eps, delta) in &data.spends {
        out.push_str(&format!(
            "spend {} {} {label}\n",
            fmt_f64(*eps),
            fmt_f64(*delta)
        ));
    }
    out.push_str(&format!("releases {}\n", data.releases.len()));
    for (id, file, spec) in &data.releases {
        out.push_str(&format!("release {id} {file} {}\n", spec.to_line()));
    }
    out
}

/// Writes the manifest for a namespace directory atomically.
pub(crate) fn write_manifest(dir: &Path, data: &ManifestData) -> Result<(), StoreError> {
    atomic_write(&dir.join(MANIFEST_FILE), render(data).as_bytes())
}

/// Reads and parses a namespace directory's manifest.
pub(crate) fn read_manifest(dir: &Path) -> Result<ManifestData, StoreError> {
    let path = dir.join(MANIFEST_FILE);
    let mut text = String::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| StoreError::io(&path, e))?;
    parse(&text).map_err(|msg| StoreError::manifest(&path, msg))
}

fn parse(text: &str) -> Result<ManifestData, String> {
    let mut lines = text.lines();
    let mut next = |expect: &str| -> Result<&str, String> {
        lines
            .next()
            .ok_or_else(|| format!("unexpected end of manifest, expected {expect}"))
    };

    if next("header")? != HEADER {
        return Err(format!("bad header (expected {HEADER:?})"));
    }
    let namespace = next("namespace")?
        .strip_prefix("namespace ")
        .ok_or("expected `namespace <name>`")?
        .to_string();
    let epoch: u64 = next("epoch")?
        .strip_prefix("epoch ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or("expected `epoch <u64>`")?;
    let budget_line = next("budget")?;
    let budget = if budget_line == "budget unbounded" {
        None
    } else {
        let rest = budget_line
            .strip_prefix("budget eps ")
            .ok_or("expected `budget eps <f64> delta <f64>` or `budget unbounded`")?;
        let (eps_tok, delta_part) = rest
            .split_once(" delta ")
            .ok_or("expected `budget eps <f64> delta <f64>`")?;
        let eps: f64 = eps_tok.trim().parse().map_err(|_| "invalid budget eps")?;
        let delta: f64 = delta_part
            .trim()
            .parse()
            .map_err(|_| "invalid budget delta")?;
        Some((eps, delta))
    };

    let mut spends_line = next("spends")?;
    let continual = if let Some(rest) = spends_line.strip_prefix("continual ") {
        let rest = rest
            .strip_prefix("horizon ")
            .ok_or("expected `continual horizon <u64> rho-total <f64> delta <f64> file <name>`")?;
        let (horizon_tok, rest) = rest
            .split_once(" rho-total ")
            .ok_or("expected `rho-total` in continual line")?;
        let (rho_tok, rest) = rest
            .split_once(" delta ")
            .ok_or("expected `delta` in continual line")?;
        let (delta_tok, file) = rest
            .split_once(" file ")
            .ok_or("expected `file` in continual line")?;
        let horizon: u64 = horizon_tok
            .trim()
            .parse()
            .map_err(|_| "invalid continual horizon")?;
        let rho_total: f64 = rho_tok
            .trim()
            .parse()
            .map_err(|_| "invalid continual rho-total")?;
        let delta: f64 = delta_tok
            .trim()
            .parse()
            .map_err(|_| "invalid continual delta")?;
        if file.trim().is_empty() {
            return Err("missing continual state file".into());
        }
        spends_line = next("spends")?;
        Some(ContinualManifest {
            horizon,
            rho_total,
            delta,
            file: file.trim().to_string(),
        })
    } else {
        None
    };
    let geo = if let Some(rest) = spends_line.strip_prefix("geo ") {
        let file = rest
            .strip_prefix("file ")
            .ok_or("expected `geo file <name>`")?;
        if file.trim().is_empty() {
            return Err("missing geo index file".into());
        }
        spends_line = next("spends")?;
        Some(file.trim().to_string())
    } else {
        None
    };
    let num_spends: usize = spends_line
        .strip_prefix("spends ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or("expected `spends <count>`")?;
    let mut spends = Vec::with_capacity(num_spends);
    for _ in 0..num_spends {
        let line = next("spend")?
            .strip_prefix("spend ")
            .ok_or("expected `spend <eps> <delta> <label>`")?;
        let mut parts = line.splitn(3, ' ');
        let eps: f64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or("invalid spend eps")?;
        let delta: f64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or("invalid spend delta")?;
        let label = parts.next().ok_or("missing spend label")?.to_string();
        spends.push((label, eps, delta));
    }

    let num_releases: usize = next("releases")?
        .strip_prefix("releases ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or("expected `releases <count>`")?;
    let mut releases = Vec::with_capacity(num_releases);
    for _ in 0..num_releases {
        let line = next("release")?
            .strip_prefix("release ")
            .ok_or("expected `release <id> <file> <spec>`")?;
        let mut parts = line.splitn(3, ' ');
        let id: u64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or("invalid release id")?;
        let file = parts.next().ok_or("missing release file")?.to_string();
        let spec_line = parts.next().ok_or("missing release spec")?;
        let spec = ReleaseSpec::parse_line(spec_line).map_err(|e| e.to_string())?;
        if releases.iter().any(|(other, _, _)| *other == id) {
            return Err(format!("release id {id} listed twice"));
        }
        releases.push((id, file, spec));
    }
    if let Some(extra) = lines.next() {
        if !extra.trim().is_empty() {
            return Err(format!("unexpected trailing line {extra:?}"));
        }
    }
    Ok(ManifestData {
        namespace,
        epoch,
        budget,
        continual,
        geo,
        spends,
        releases,
    })
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use privpath_dp::Epsilon;
    use privpath_engine::ReleaseKind;

    fn sample() -> ManifestData {
        ManifestData {
            namespace: "metro".into(),
            epoch: 7,
            budget: Some((4.0, 1e-6)),
            continual: None,
            geo: None,
            spends: vec![
                ("shortest-path#0".into(), 1.0, 0.0),
                ("shortest-path#0@u2".into(), 1.0, 0.0),
            ],
            releases: vec![(
                0,
                release_file_name(0, 7),
                ReleaseSpec::new(ReleaseKind::ShortestPath, Epsilon::new(1.0).unwrap()).unwrap(),
            )],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let data = sample();
        assert_eq!(parse(&render(&data)).unwrap(), data);
        let unbounded = ManifestData {
            budget: None,
            spends: vec![],
            releases: vec![],
            ..data
        };
        assert_eq!(parse(&render(&unbounded)).unwrap(), unbounded);
    }

    #[test]
    fn continual_line_round_trips() {
        let mut data = sample();
        data.continual = Some(ContinualManifest {
            horizon: 256,
            rho_total: 0.09533,
            delta: 1e-6,
            file: "continual.e7.state".into(),
        });
        assert_eq!(parse(&render(&data)).unwrap(), data);
        // A namespace literally named "continual" must not trip the
        // optional-line detection (the keyword is line-initial and the
        // spends header follows unambiguously).
        data.namespace = "continual".into();
        assert_eq!(parse(&render(&data)).unwrap(), data);
        // Malformed continual lines are rejected, not skipped.
        let good = render(&data);
        let bad = good.replace(" rho-total ", " rho ");
        assert!(parse(&bad).is_err());
    }

    #[test]
    fn geo_line_round_trips() {
        let mut data = sample();
        data.geo = Some(GEO_INDEX_FILE.into());
        assert_eq!(parse(&render(&data)).unwrap(), data);
        // Both optional lines together, in their fixed order.
        data.continual = Some(ContinualManifest {
            horizon: 16,
            rho_total: 0.01,
            delta: 1e-6,
            file: "continual.e7.state".into(),
        });
        assert_eq!(parse(&render(&data)).unwrap(), data);
        // A namespace literally named "geo" must not trip detection.
        data.namespace = "geo".into();
        assert_eq!(parse(&render(&data)).unwrap(), data);
        // Malformed geo lines are rejected, not skipped.
        let good = render(&data);
        let bad = good.replace("geo file ", "geo file\n");
        assert!(parse(&bad).is_err());
    }

    #[test]
    fn labels_with_spaces_survive() {
        let mut data = sample();
        data.spends.push(("a label with spaces".into(), 0.5, 0.0));
        assert_eq!(parse(&render(&data)).unwrap(), data);
    }

    #[test]
    fn duplicate_ids_and_truncation_are_rejected() {
        let mut data = sample();
        data.releases.push(data.releases[0].clone());
        assert!(parse(&render(&data)).is_err());
        let text = render(&sample());
        let truncated = &text[..text.len() - 10];
        assert!(parse(truncated).is_err());
    }
}
