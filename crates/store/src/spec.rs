//! [`ReleaseSpec`]: a compact, re-runnable description of one release —
//! which mechanism and which knobs — that the store persists next to
//! every release so `update-weights` can re-run it against fresh weights.
//!
//! The spec is the store's unit of *reproducibility of intent*: a release
//! file records what came out, the spec records what to run again. It has
//! one token form shared by the manifest and the wire protocol:
//!
//! ```text
//! spec := <mechanism> "eps" <f64> ["delta" <f64>] ["gamma" <f64>]
//!         ["max-weight" <f64>]
//! ```
//!
//! Knobs are mechanism-checked: `gamma` belongs to `shortest-path` only,
//! `delta` to the composition-based kinds (`bounded-weight`,
//! `shortcut-apsp`, `all-pairs-baseline`), and `max-weight` is required
//! by exactly the bounded-weight kinds (`bounded-weight`,
//! `shortcut-apsp`). Structure-releasing kinds (`mst`, `matching`) and
//! `hld-tree` have no persistence/serve surface and are rejected at spec
//! construction, so a store can never hold a release it cannot replay.

use crate::error::StoreError;
use privpath_core::bounded::BoundedWeightParams;
use privpath_core::bounds::AccuracyContract;
use privpath_core::shortcut::ShortcutApspParams;
use privpath_core::shortest_path::ShortestPathParams;
use privpath_core::tree_distance::TreeDistanceParams;
use privpath_dp::{Delta, Epsilon, NoiseSource};
use privpath_engine::{mechanisms, AnyRelease, EngineError, Mechanism, ReleaseKind};
use privpath_graph::{EdgeWeights, Topology};

/// The default confidence knob for `shortest-path` specs (matches
/// [`privpath_engine::DEFAULT_GAMMA`]).
const DEFAULT_SPEC_GAMMA: f64 = 0.05;

/// A re-runnable release request: mechanism plus every knob needed to
/// run it again on the same topology with different weights.
#[derive(Clone, Debug, PartialEq)]
pub struct ReleaseSpec {
    kind: ReleaseKind,
    eps: Epsilon,
    delta: Delta,
    gamma: f64,
    max_weight: Option<f64>,
}

/// The parameter object a spec builds, one variant per servable kind.
enum BuiltParams {
    ShortestPath(ShortestPathParams),
    Tree(TreeDistanceParams),
    Bounded(BoundedWeightParams),
    Shortcut(ShortcutApspParams),
    Synthetic(mechanisms::SyntheticGraphParams),
    AllPairs(mechanisms::AllPairsBaselineParams),
}

fn invalid(msg: impl Into<String>) -> StoreError {
    StoreError::InvalidSpec(msg.into())
}

/// Whether a release kind can live in the store: it must have a distance
/// surface *and* a persistence format, so the store can both serve it
/// and replay it from disk.
pub fn is_storable(kind: ReleaseKind) -> bool {
    matches!(
        kind,
        ReleaseKind::ShortestPath
            | ReleaseKind::Tree
            | ReleaseKind::BoundedWeight
            | ReleaseKind::SyntheticGraph
            | ReleaseKind::AllPairsBaseline
            | ReleaseKind::ShortcutApsp
    )
}

/// Whether a release kind can be served from a **continual** namespace.
/// Continual serving re-runs the spec with zero mechanism noise over the
/// tree composer's already-noisy weight estimate — pure post-processing —
/// so the mechanism must be *exact* given its input weights. The
/// bounded-weight kinds (`bounded-weight`, `shortcut-apsp`) carry a
/// structural detour error of their own on top of the noise, which the
/// `ContinualRelease` contract cannot absorb; they are refused.
pub fn is_continual_servable(kind: ReleaseKind) -> bool {
    matches!(
        kind,
        ReleaseKind::ShortestPath
            | ReleaseKind::Tree
            | ReleaseKind::SyntheticGraph
            | ReleaseKind::AllPairsBaseline
    )
}

impl ReleaseSpec {
    /// A spec for `kind` at privacy `eps` (pure DP, default knobs).
    ///
    /// # Errors
    /// [`StoreError::InvalidSpec`] for kinds without a live-store surface
    /// (`mst`, `matching`, `hld-tree`).
    pub fn new(kind: ReleaseKind, eps: Epsilon) -> Result<Self, StoreError> {
        if !is_storable(kind) {
            return Err(invalid(format!(
                "mechanism `{kind}` has no live-store surface (no persistence \
                 format or no distance queries)"
            )));
        }
        Ok(ReleaseSpec {
            kind,
            eps,
            delta: Delta::zero(),
            gamma: DEFAULT_SPEC_GAMMA,
            max_weight: None,
        })
    }

    /// Selects approximate DP (`delta > 0`) for the composition-based
    /// kinds.
    ///
    /// # Errors
    /// [`StoreError::InvalidSpec`] for kinds whose mechanism is pure-DP
    /// only.
    pub fn with_delta(mut self, delta: Delta) -> Result<Self, StoreError> {
        if !delta.is_pure()
            && !matches!(
                self.kind,
                ReleaseKind::BoundedWeight
                    | ReleaseKind::ShortcutApsp
                    | ReleaseKind::AllPairsBaseline
            )
        {
            return Err(invalid(format!(
                "mechanism `{}` is pure-DP; `delta` does not apply",
                self.kind
            )));
        }
        self.delta = delta;
        Ok(self)
    }

    /// Sets the `shortest-path` confidence knob.
    ///
    /// # Errors
    /// [`StoreError::InvalidSpec`] for other kinds (the knob would be
    /// silently ignored, which a typed spec refuses to do).
    pub fn with_gamma(mut self, gamma: f64) -> Result<Self, StoreError> {
        if self.kind != ReleaseKind::ShortestPath {
            return Err(invalid(format!(
                "`gamma` is a shortest-path knob; mechanism is `{}`",
                self.kind
            )));
        }
        self.gamma = gamma;
        Ok(self)
    }

    /// Sets the bounded-weight promise `M` (required by `bounded-weight`
    /// and `shortcut-apsp`).
    ///
    /// # Errors
    /// [`StoreError::InvalidSpec`] for kinds without a weight bound.
    pub fn with_max_weight(mut self, max_weight: f64) -> Result<Self, StoreError> {
        if !matches!(
            self.kind,
            ReleaseKind::BoundedWeight | ReleaseKind::ShortcutApsp
        ) {
            return Err(invalid(format!(
                "`max-weight` applies to bounded-weight kinds only; mechanism is `{}`",
                self.kind
            )));
        }
        self.max_weight = Some(max_weight);
        Ok(self)
    }

    /// The mechanism this spec runs.
    pub fn kind(&self) -> ReleaseKind {
        self.kind
    }

    /// The epsilon one run of this spec costs.
    pub fn eps(&self) -> Epsilon {
        self.eps
    }

    /// The delta one run of this spec costs.
    pub fn delta(&self) -> Delta {
        self.delta
    }

    /// The `(eps, delta)` one run debits — every storable mechanism's
    /// declared [`privacy_cost`](privpath_engine::Mechanism::privacy_cost)
    /// equals its parameter budget, so the spec knows its cost without
    /// building params. Used to pre-check a whole `update-weights` pass
    /// against the budget before any noise is drawn.
    pub fn cost(&self) -> (f64, f64) {
        (self.eps.value(), self.delta.value())
    }

    /// The canonical token form (also valid inside a longer wire line).
    pub fn to_line(&self) -> String {
        let mut line = format!("{} eps {:?}", self.kind, self.eps.value());
        if !self.delta.is_pure() {
            line.push_str(&format!(" delta {:?}", self.delta.value()));
        }
        if self.kind == ReleaseKind::ShortestPath && self.gamma != DEFAULT_SPEC_GAMMA {
            line.push_str(&format!(" gamma {:?}", self.gamma));
        }
        if let Some(m) = self.max_weight {
            line.push_str(&format!(" max-weight {m:?}"));
        }
        line
    }

    /// Parses the canonical token form from a whole line.
    ///
    /// # Errors
    /// [`StoreError::InvalidSpec`] on unknown mechanisms, malformed
    /// numbers, misplaced knobs, or trailing tokens.
    pub fn parse_line(line: &str) -> Result<Self, StoreError> {
        let mut tokens = line.split_whitespace();
        let spec = Self::parse_tokens(&mut tokens)?;
        if let Some(extra) = tokens.next() {
            return Err(invalid(format!("unexpected trailing token {extra:?}")));
        }
        Ok(spec)
    }

    /// Parses the token form from an iterator, consuming exactly the
    /// spec's tokens (for embedding in wire lines).
    ///
    /// # Errors
    /// [`StoreError::InvalidSpec`] on unknown mechanisms, malformed
    /// numbers, or misplaced knobs. Note a knob keyword is only consumed
    /// when recognized, so a caller can append its own trailing fields.
    pub fn parse_tokens<'a>(
        tokens: &mut impl Iterator<Item = &'a str>,
    ) -> Result<Self, StoreError> {
        let kind_tok = tokens.next().ok_or_else(|| invalid("missing mechanism"))?;
        let kind = ReleaseKind::parse(kind_tok)
            .ok_or_else(|| invalid(format!("unknown mechanism {kind_tok:?}")))?;
        let mut eps = None;
        let mut delta = None;
        let mut gamma = None;
        let mut max_weight = None;
        // Peekable so an unrecognized token is left for the caller.
        let mut tokens = tokens.peekable();
        while let Some(&key) = tokens.peek() {
            let slot: &mut Option<f64> = match key {
                "eps" => &mut eps,
                "delta" => &mut delta,
                "gamma" => &mut gamma,
                "max-weight" => &mut max_weight,
                _ => break,
            };
            if slot.is_some() {
                return Err(invalid(format!("duplicate `{key}`")));
            }
            tokens.next();
            let val = tokens
                .next()
                .ok_or_else(|| invalid(format!("`{key}` needs a value")))?;
            *slot = Some(
                val.parse::<f64>()
                    .map_err(|_| invalid(format!("invalid `{key}` value {val:?}")))?,
            );
        }
        let eps = eps.ok_or_else(|| invalid("missing `eps`"))?;
        let mut spec = Self::new(kind, Epsilon::new(eps).map_err(|e| invalid(e.to_string()))?)?;
        if let Some(d) = delta {
            spec = spec.with_delta(Delta::new(d).map_err(|e| invalid(e.to_string()))?)?;
        }
        if let Some(g) = gamma {
            spec = spec.with_gamma(g)?;
        }
        if let Some(m) = max_weight {
            spec = spec.with_max_weight(m)?;
        }
        Ok(spec)
    }

    /// Builds the mechanism's parameter object.
    fn build_params(&self) -> Result<BuiltParams, StoreError> {
        let require_max_weight = || {
            self.max_weight
                .ok_or_else(|| invalid(format!("mechanism `{}` needs `max-weight`", self.kind)))
        };
        Ok(match self.kind {
            ReleaseKind::ShortestPath => BuiltParams::ShortestPath(
                ShortestPathParams::new(self.eps, self.gamma).map_err(EngineError::from)?,
            ),
            ReleaseKind::Tree => BuiltParams::Tree(TreeDistanceParams::new(self.eps)),
            ReleaseKind::BoundedWeight => {
                let m = require_max_weight()?;
                BuiltParams::Bounded(
                    if self.delta.is_pure() {
                        BoundedWeightParams::pure(self.eps, m)
                    } else {
                        BoundedWeightParams::approx(self.eps, self.delta, m)
                    }
                    .map_err(EngineError::from)?,
                )
            }
            ReleaseKind::ShortcutApsp => {
                let m = require_max_weight()?;
                BuiltParams::Shortcut(
                    if self.delta.is_pure() {
                        ShortcutApspParams::pure(self.eps, m)
                    } else {
                        ShortcutApspParams::approx(self.eps, self.delta, m)
                    }
                    .map_err(EngineError::from)?,
                )
            }
            ReleaseKind::SyntheticGraph => {
                BuiltParams::Synthetic(mechanisms::SyntheticGraphParams::new(self.eps))
            }
            ReleaseKind::AllPairsBaseline => BuiltParams::AllPairs(if self.delta.is_pure() {
                mechanisms::AllPairsBaselineParams::basic(self.eps)
            } else {
                mechanisms::AllPairsBaselineParams::advanced(self.eps, self.delta)?
            }),
            ReleaseKind::Mst | ReleaseKind::Matching | ReleaseKind::HldTree => {
                // privlint: allow(panic-freedom, "ReleaseSpec constructors refuse these kinds, so build() never sees them")
                unreachable!("rejected at construction")
            }
        })
    }

    /// Runs the spec's mechanism over `(topo, weights)` **without
    /// touching any registry** — the staging half of the store's
    /// two-phase commit. The caller (under its write lock) installs the
    /// result via [`ReleaseEngine::adopt`] /
    /// [`ReleaseEngine::replace_release`] only after the whole
    /// generation staged successfully, so a mid-generation failure
    /// publishes nothing and debits nothing (noise that is discarded
    /// unobserved costs no privacy).
    ///
    /// # Errors
    /// [`StoreError::InvalidSpec`] for missing knobs; otherwise the
    /// mechanism's own errors.
    pub fn run(
        &self,
        topo: &Topology,
        weights: &EdgeWeights,
        noise: &mut impl NoiseSource,
    ) -> Result<StagedRelease, StoreError> {
        fn stage<M: Mechanism>(
            mechanism: &M,
            params: &M::Params,
            topo: &Topology,
            weights: &EdgeWeights,
            noise: &mut impl NoiseSource,
        ) -> Result<StagedRelease, StoreError>
        where
            AnyRelease: From<M::Release>,
        {
            let cost = mechanism.privacy_cost(params);
            Ok(StagedRelease {
                eps: cost.eps().value(),
                delta: cost.delta().value(),
                accuracy: mechanism.accuracy_contract(topo, params),
                release: AnyRelease::from(mechanism.release_with(topo, weights, params, noise)?),
            })
        }
        match self.build_params()? {
            BuiltParams::ShortestPath(p) => {
                stage(&mechanisms::ShortestPaths, &p, topo, weights, noise)
            }
            BuiltParams::Tree(p) => stage(&mechanisms::TreeAllPairs, &p, topo, weights, noise),
            BuiltParams::Bounded(p) => stage(&mechanisms::BoundedWeight, &p, topo, weights, noise),
            BuiltParams::Shortcut(p) => stage(&mechanisms::ShortcutApsp, &p, topo, weights, noise),
            BuiltParams::Synthetic(p) => {
                stage(&mechanisms::SyntheticGraph, &p, topo, weights, noise)
            }
            BuiltParams::AllPairs(p) => {
                stage(&mechanisms::AllPairsBaseline, &p, topo, weights, noise)
            }
        }
    }
}

/// A release run by a [`ReleaseSpec`] but not yet installed anywhere:
/// the staging unit of the store's two-phase commit.
#[derive(Clone, Debug)]
pub struct StagedRelease {
    /// The epsilon installing this release will debit.
    pub eps: f64,
    /// The delta installing this release will debit.
    pub delta: f64,
    /// The contract the mechanism declared (from the public topology).
    pub accuracy: Option<AccuracyContract>,
    /// The release object.
    pub release: AnyRelease,
}

impl std::fmt::Display for ReleaseSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_line())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn spec_line_round_trips() {
        let specs = [
            ReleaseSpec::new(ReleaseKind::ShortestPath, eps(1.5))
                .unwrap()
                .with_gamma(0.1)
                .unwrap(),
            ReleaseSpec::new(ReleaseKind::Tree, eps(0.25)).unwrap(),
            ReleaseSpec::new(ReleaseKind::BoundedWeight, eps(2.0))
                .unwrap()
                .with_delta(Delta::new(1e-6).unwrap())
                .unwrap()
                .with_max_weight(3.0)
                .unwrap(),
            ReleaseSpec::new(ReleaseKind::ShortcutApsp, eps(1.0))
                .unwrap()
                .with_max_weight(1.0)
                .unwrap(),
            ReleaseSpec::new(ReleaseKind::SyntheticGraph, eps(0.5)).unwrap(),
            ReleaseSpec::new(ReleaseKind::AllPairsBaseline, eps(4.0)).unwrap(),
        ];
        for spec in specs {
            let line = spec.to_line();
            assert_eq!(ReleaseSpec::parse_line(&line).unwrap(), spec, "{line}");
        }
    }

    #[test]
    fn unstorable_kinds_are_rejected() {
        for kind in [
            ReleaseKind::Mst,
            ReleaseKind::Matching,
            ReleaseKind::HldTree,
        ] {
            assert!(matches!(
                ReleaseSpec::new(kind, eps(1.0)),
                Err(StoreError::InvalidSpec(_))
            ));
        }
    }

    #[test]
    fn misplaced_knobs_are_rejected() {
        assert!(ReleaseSpec::new(ReleaseKind::Tree, eps(1.0))
            .unwrap()
            .with_gamma(0.1)
            .is_err());
        assert!(ReleaseSpec::new(ReleaseKind::Tree, eps(1.0))
            .unwrap()
            .with_delta(Delta::new(1e-6).unwrap())
            .is_err());
        assert!(ReleaseSpec::new(ReleaseKind::SyntheticGraph, eps(1.0))
            .unwrap()
            .with_max_weight(1.0)
            .is_err());
        assert!(ReleaseSpec::parse_line("tree eps 1.0 gamma 0.1").is_err());
        assert!(ReleaseSpec::parse_line("mst eps 1.0").is_err());
        assert!(ReleaseSpec::parse_line("shortest-path eps 1.0 eps 2.0").is_err());
        assert!(ReleaseSpec::parse_line("shortest-path").is_err());
    }
}
