//! [`ReleaseStore`]: the concurrent, multi-tenant write-and-serve path.
//!
//! One store owns any number of named **namespaces** (tenants). Each
//! namespace owns its private weight database, its own
//! [`Accountant`](privpath_dp::Accountant) budget, and an
//! **epoch-versioned** set of releases:
//!
//! * The **write path** (publish / update-weights / drop) serializes on a
//!   per-namespace mutex around a [`ReleaseEngine`], debits the
//!   namespace budget through the engine's check-before-noise
//!   accounting, persists crash-safe state (temp-write + fsync + rename;
//!   manifest replay on [`open`](ReleaseStore::open)), and finishes by
//!   swapping in a fresh immutable [`NamespaceSnapshot`] under a brief
//!   write lock.
//! * The **read path** clones the current snapshot `Arc` under a brief
//!   read lock and then runs entirely lock-free on immutable data:
//!   readers never observe a half-applied mutation, because the snapshot
//!   is replaced as one pointer swap after the mutation fully committed.
//!   Each snapshot carries its own [`source cache`](crate::cache), so an
//!   epoch bump structurally invalidates every cached answer.
//!
//! Epochs count committed mutations: publish, update-weights, and drop
//! each bump the namespace epoch by exactly one.

use crate::cache::{CacheCounters, SourceCache};
use crate::continual::{state_file_name, ContinualState, ContinualStatus};
use crate::error::StoreError;
use crate::manifest::{
    atomic_write, read_manifest, release_file_name, write_manifest, ContinualManifest,
    ManifestData, GEO_INDEX_FILE, MANIFEST_FILE, TOPOLOGY_FILE, WEIGHTS_FILE,
};
use crate::spec::{is_continual_servable, ReleaseSpec, StagedRelease};
use privpath_core::model::WeightUpdate;
use privpath_dp::zcdp::max_rho_for_epsilon;
use privpath_dp::{Accountant, Delta, Epsilon, RngNoise, ZeroNoise};
use privpath_engine::{EngineError, QueryService, ReleaseEngine, ReleaseId};
use privpath_geo::{GeoPoint, SpatialIndex};
use privpath_graph::io::{read_topology, read_weights, write_topology, write_weights};
use privpath_graph::{EdgeId, EdgeWeights, NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Records one committed write-path operation's wall time. Only the
/// operator-chosen namespace name and the elapsed time are exported.
fn record_commit_timing(metric: &str, ns: &str, seconds: f64) {
    if !privpath_obs::enabled() {
        return;
    }
    privpath_obs::MetricRegistry::global()
        .histogram_with(metric, &[("ns", ns)])
        .observe(seconds);
}

/// A noise-seed base that differs across processes and across opens:
/// OS-randomized hasher state mixed with the clock and the pid. The
/// store's noise stream **must not** repeat between runs — re-drawing
/// the same Laplace noise for a re-release would let an observer of two
/// generations cancel it out and recover the private weight change
/// exactly.
fn entropy_seed() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut h = RandomState::new().build_hasher();
    h.write_u64(u64::from(std::process::id()));
    if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        h.write_u128(d.as_nanos());
    }
    h.finish()
}

/// Default bound on cached source vectors per namespace snapshot.
const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Whether `name` is a valid namespace name: 1–64 characters from
/// `[A-Za-z0-9_-]`. Valid names are filesystem- and wire-safe (they name
/// the namespace directory and prefix release refs as `name/r0`).
pub fn is_valid_namespace(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// An immutable, epoch-stamped view of one namespace's releases.
///
/// Obtained from [`ReleaseStore::snapshot`]; shared by `Arc`, so holding
/// one is free and it keeps answering (from its own epoch's data) even
/// after the store moves on. Distance queries go through the snapshot's
/// source cache when the store has caching enabled.
#[derive(Debug)]
pub struct NamespaceSnapshot {
    namespace: String,
    epoch: u64,
    service: QueryService,
    cache: Option<SourceCache>,
    continual: Option<ContinualStatus>,
    /// Public spatial index over the node coordinates, for geo
    /// namespaces. Epoch-invariant (coordinates are public topology
    /// metadata), so every snapshot shares one `Arc`.
    geo: Option<Arc<SpatialIndex>>,
}

impl NamespaceSnapshot {
    /// The namespace this snapshot belongs to.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// The epoch this snapshot was published at (counts committed
    /// mutations: publish, update-weights, drop).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying release registry view (list / accuracy / path /
    /// budget queries go through this).
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Continual-mode stream status at this epoch, or `None` for a
    /// standard namespace. Copied onto the snapshot at swap time so
    /// readers (and `stats`) never touch the writer lock.
    pub fn continual(&self) -> Option<ContinualStatus> {
        self.continual
    }

    /// The namespace's spatial index over its (public) node
    /// coordinates, or `None` for a namespace created without
    /// coordinates. Snapping a lat/lon query through this index is
    /// data-independent preprocessing — it reads only public geometry,
    /// so it costs no privacy budget.
    pub fn geo(&self) -> Option<&SpatialIndex> {
        self.geo.as_deref()
    }

    /// The released estimate of `d(u, v)`, via the source cache when
    /// enabled.
    ///
    /// # Errors
    /// As [`QueryService::query`] /
    /// [`privpath_engine::DistanceRelease::distance`].
    pub fn distance(&self, id: ReleaseId, u: NodeId, v: NodeId) -> Result<f64, EngineError> {
        let oracle = self.service.query(id)?;
        let Some(cache) = &self.cache else {
            return oracle.distance(u, v);
        };
        let n = oracle.num_nodes();
        check_node(u, n)?;
        check_node(v, n)?;
        let vector = cache.get_or_compute(id.value(), u.index(), || oracle.source_distances(u))?;
        Ok(vector[v.index()])
    }

    /// Released estimates for many pairs, sharing one cached source
    /// vector per distinct source.
    ///
    /// # Errors
    /// As [`distance`](Self::distance); reports the first failing pair.
    pub fn distance_batch(
        &self,
        id: ReleaseId,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<f64>, EngineError> {
        let oracle = self.service.query(id)?;
        let Some(cache) = &self.cache else {
            return oracle.distance_batch(pairs);
        };
        let n = oracle.num_nodes();
        let mut by_source: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            check_node(u, n)?;
            check_node(v, n)?;
            by_source.entry(u.index()).or_default().push(i);
        }
        let mut out = vec![0.0; pairs.len()];
        let mut sources: Vec<usize> = by_source.keys().copied().collect();
        sources.sort_unstable();
        // Serve what the cache already has, then compute every remaining
        // source in one batched oracle call — graph-replaying kinds fan
        // those Dijkstras over the search thread pool, and the rows are
        // bit-identical to one-at-a-time computation.
        let mut missing: Vec<usize> = Vec::new();
        for &s in &sources {
            match cache.peek(id.value(), s) {
                Some(vector) => {
                    for &i in &by_source[&s] {
                        out[i] = vector[pairs[i].1.index()];
                    }
                }
                None => missing.push(s),
            }
        }
        if !missing.is_empty() {
            let miss_nodes: Vec<NodeId> = missing.iter().map(|&s| NodeId::new(s)).collect();
            let rows = oracle.source_distance_rows(&miss_nodes)?;
            for (&s, row) in missing.iter().zip(rows) {
                let vector = cache.insert(id.value(), s, row);
                for &i in &by_source[&s] {
                    out[i] = vector[pairs[i].1.index()];
                }
            }
        }
        Ok(out)
    }
}

fn check_node(node: NodeId, num_nodes: usize) -> Result<(), EngineError> {
    if node.index() >= num_nodes {
        return Err(EngineError::NodeOutOfRange {
            index: node.index(),
            num_nodes,
        });
    }
    Ok(())
}

/// The receipt a successful [`ReleaseStore::publish`] returns.
#[derive(Clone, Debug, PartialEq)]
pub struct PublishReceipt {
    /// The namespace published into.
    pub namespace: String,
    /// The new release's id within the namespace.
    pub id: ReleaseId,
    /// The namespace epoch after the publish.
    pub epoch: u64,
    /// The epsilon debited.
    pub eps: f64,
    /// The delta debited.
    pub delta: f64,
}

/// The receipt a successful [`ReleaseStore::update_weights`] returns.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateReceipt {
    /// The namespace updated.
    pub namespace: String,
    /// The namespace epoch after the update.
    pub epoch: u64,
    /// How many releases were re-run against the new weights.
    pub rereleased: usize,
    /// Total epsilon debited by the re-releases.
    pub eps: f64,
    /// Total delta debited by the re-releases.
    pub delta: f64,
    /// `||new - old||_1`: the update's size in the neighboring metric.
    /// **Private** (a function of the weights) — write-path logs only,
    /// never served.
    pub l1_shift: f64,
    /// How many edges changed weight. Private, as above.
    pub changed_edges: usize,
}

/// One namespace's public counters, as reported by
/// [`ReleaseStore::stats`]. Everything here is already public: epochs
/// and ledger totals are DP post-processing metadata, cache counters are
/// server-side performance state.
#[derive(Clone, Debug, PartialEq)]
pub struct NamespaceStats {
    /// The namespace name.
    pub namespace: String,
    /// The current epoch.
    pub epoch: u64,
    /// Number of live releases.
    pub releases: usize,
    /// Total epsilon spent (including spends on replaced/dropped
    /// releases).
    pub spent_eps: f64,
    /// Total delta spent.
    pub spent_delta: f64,
    /// Remaining `(eps, delta)`, or `None` for an unbounded namespace.
    pub remaining: Option<(f64, f64)>,
    /// Cumulative read-path cache hits.
    pub cache_hits: u64,
    /// Cumulative read-path cache misses.
    pub cache_misses: u64,
    /// Continual-mode stream status, or `None` for a standard namespace.
    pub continual: Option<ContinualStatus>,
}

/// One live release's bookkeeping: its re-run spec and the (write-once,
/// generation-suffixed) file currently holding it.
#[derive(Clone)]
struct SpecEntry {
    spec: ReleaseSpec,
    file: String,
}

/// The serialized write-path state of one namespace.
struct NamespaceWriter {
    name: String,
    dir: PathBuf,
    engine: ReleaseEngine,
    /// The spec + file for every live release, by id.
    specs: BTreeMap<u64, SpecEntry>,
    epoch: u64,
    budget: Option<(f64, f64)>,
    /// Continual mode: the tree-composer state plus the name of the
    /// state file the on-disk manifest currently references.
    continual: Option<(ContinualState, String)>,
    /// The namespace's spatial index, if it was created with
    /// coordinates. Written once at creation (the coordinates are as
    /// immutable as the topology) and shared with every snapshot.
    geo: Option<Arc<SpatialIndex>>,
}

impl NamespaceWriter {
    fn manifest_data(&self) -> ManifestData {
        ManifestData {
            namespace: self.name.clone(),
            epoch: self.epoch,
            budget: self.budget,
            continual: self
                .continual
                .as_ref()
                .map(|(state, file)| ContinualManifest {
                    horizon: state.horizon,
                    rho_total: state.rho_total,
                    delta: state.delta,
                    file: file.clone(),
                }),
            geo: self.geo.as_ref().map(|_| GEO_INDEX_FILE.to_string()),
            spends: self
                .engine
                .accountant()
                .spends()
                .iter()
                .map(|s| (s.label.clone(), s.eps, s.delta))
                .collect(),
            releases: self
                .specs
                .iter()
                .map(|(&id, entry)| (id, entry.file.clone(), entry.spec.clone()))
                .collect(),
        }
    }

    /// Writes the engine's record at `id` to `file` (temp+fsync+rename).
    fn write_record_file(&self, id: ReleaseId, file: &str) -> Result<(), StoreError> {
        let mut bytes = Vec::new();
        self.engine.save(id, &mut bytes)?;
        atomic_write(&self.dir.join(file), &bytes)
    }

    /// Pre-checks a prospective total spend against the budget so no
    /// noise is ever drawn for a request that cannot be afforded.
    fn check_budget(&self, total_eps: f64, total_delta: f64) -> Result<(), StoreError> {
        let eps = Epsilon::new(total_eps).map_err(EngineError::Dp)?;
        let delta = Delta::new(total_delta).map_err(EngineError::Dp)?;
        if self.engine.accountant().check(eps, delta).is_err() {
            let (remaining_eps, remaining_delta) = self
                .engine
                .remaining()
                .unwrap_or((f64::INFINITY, f64::INFINITY));
            return Err(StoreError::Engine(EngineError::BudgetExhausted {
                requested_eps: total_eps,
                requested_delta: total_delta,
                remaining_eps,
                remaining_delta,
            }));
        }
        Ok(())
    }

    fn persist_manifest(&self) -> Result<(), StoreError> {
        write_manifest(&self.dir, &self.manifest_data())
    }
}

/// Writes a staged release to a (new, generation-suffixed) file.
fn write_staged(
    dir: &Path,
    file: &str,
    label: &str,
    staged: &StagedRelease,
) -> Result<(), StoreError> {
    let mut bytes = Vec::new();
    privpath_engine::write_release(
        &mut bytes,
        label,
        staged.eps,
        staged.delta,
        staged.accuracy.as_ref(),
        &staged.release,
    )?;
    atomic_write(&dir.join(file), &bytes)
}

/// One namespace: the serialized writer plus the hot-swapped snapshot.
struct Namespace {
    writer: Mutex<NamespaceWriter>,
    current: RwLock<Arc<NamespaceSnapshot>>,
    counters: CacheCounters,
}

impl Namespace {
    /// Locks the writer, refusing the operation when an earlier write
    /// panicked while holding the lock: the in-memory write state may
    /// sit between two-phase-commit steps, so writes on this namespace
    /// are rejected rather than risked. Readers are unaffected — they
    /// keep serving the last published snapshot.
    fn lock_writer(&self, name: &str) -> Result<MutexGuard<'_, NamespaceWriter>, StoreError> {
        self.writer
            .lock()
            .map_err(|_| StoreError::WriterPoisoned(name.to_string()))
    }

    /// The published snapshot. The lock only guards an `Arc` pointer
    /// swap, so even a poisoned lock still holds the last fully
    /// committed snapshot; recover it rather than cascade a writer
    /// panic into every reader.
    fn current_snapshot(&self) -> Arc<NamespaceSnapshot> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Publishes a new snapshot (same poisoning argument as
    /// [`current_snapshot`](Self::current_snapshot)).
    fn publish_snapshot(&self, snapshot: Arc<NamespaceSnapshot>) {
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = snapshot;
    }
}

/// The concurrent, multi-tenant, epoch-versioned release store.
///
/// See the [module docs](self) for the write/read split. All methods
/// take `&self`: per-namespace writer mutexes serialize mutations, and
/// readers only ever touch immutable snapshots.
pub struct ReleaseStore {
    root: PathBuf,
    cache_enabled: bool,
    cache_capacity: usize,
    seed: AtomicU64,
    namespaces: RwLock<BTreeMap<String, Arc<Namespace>>>,
}

impl ReleaseStore {
    /// Opens (or creates) a store rooted at `root`, replaying every
    /// namespace manifest found under it. Release files a manifest does
    /// not reference (crash leftovers) are deleted — their noise is
    /// never served.
    ///
    /// # Errors
    /// [`StoreError::Io`] / [`StoreError::Manifest`] on unreadable or
    /// corrupt state (a corrupt namespace fails the whole open: serving
    /// a subset silently would misreport the store's privacy ledger).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StoreError::io(&root, e))?;
        let store = ReleaseStore {
            root: root.clone(),
            cache_enabled: true,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            // Entropy by default: the noise stream must differ across
            // opens (see `entropy_seed`); `with_seed` pins it for tests.
            seed: AtomicU64::new(entropy_seed()),
            namespaces: RwLock::new(BTreeMap::new()),
        };
        let entries = fs::read_dir(&root).map_err(|e| StoreError::io(&root, e))?;
        let mut loaded = BTreeMap::new();
        for entry in entries {
            let path = entry.map_err(|e| StoreError::io(&root, e))?.path();
            if path.is_dir() && path.join(MANIFEST_FILE).is_file() {
                let (name, ns) = store.load_namespace(&path)?;
                loaded.insert(name, Arc::new(ns));
            }
        }
        *store.map_write() = loaded;
        Ok(store)
    }

    /// Disables or re-enables the read-path source cache (applies to
    /// snapshots taken after the call; builder-style, call before
    /// serving).
    #[must_use]
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Bounds the number of cached source vectors per namespace
    /// snapshot.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Pins the base of the store's internal noise-seed sequence (each
    /// write operation draws the next seed; same base + same operation
    /// order = same releases). **Testing/benchmarking only**: a pinned
    /// base replays the identical noise stream on every open, which
    /// breaks differential privacy the moment two generations built from
    /// the same stream are both observable (their shared noise cancels).
    /// Production stores keep the default entropy seed.
    #[must_use]
    pub fn with_seed(self, base: u64) -> Self {
        self.seed.store(base, Ordering::Relaxed);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether the read-path cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// The namespace names, sorted.
    pub fn namespaces(&self) -> Vec<String> {
        self.map_read().keys().cloned().collect()
    }

    /// Number of namespaces.
    pub fn len(&self) -> usize {
        self.map_read().len()
    }

    /// Whether the store holds no namespaces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates a namespace: its own topology, private weights, and
    /// budget (`None` = unbounded, tracking only). Persists the
    /// namespace directory before it becomes visible.
    ///
    /// # Errors
    /// [`StoreError::InvalidNamespace`] / [`StoreError::NamespaceExists`]
    /// on bad names; [`StoreError::Engine`] on weight/topology mismatch;
    /// [`StoreError::Io`] on persistence failure.
    pub fn create_namespace(
        &self,
        name: &str,
        topo: Topology,
        weights: EdgeWeights,
        budget: Option<(Epsilon, Delta)>,
    ) -> Result<(), StoreError> {
        self.create_namespace_inner(name, topo, weights, budget, None)
    }

    /// Creates a **geo** namespace: like
    /// [`create_namespace`](Self::create_namespace), plus one public
    /// lat/lon coordinate per node. The coordinates are indexed into a
    /// quad tree once, persisted crash-safely next to the manifest
    /// (`geo.index`, temp-write + fsync + rename, referenced by a
    /// `geo file` manifest line), and replayed with full structural
    /// validation on [`open`](Self::open). The index is epoch-invariant:
    /// weight updates never touch it, because coordinates — like the
    /// topology — are public data.
    ///
    /// # Errors
    /// [`StoreError::Geo`] when `coords` and the topology disagree on
    /// the node count or a coordinate is non-finite; otherwise as
    /// [`create_namespace`](Self::create_namespace).
    pub fn create_namespace_geo(
        &self,
        name: &str,
        topo: Topology,
        weights: EdgeWeights,
        coords: Vec<GeoPoint>,
        budget: Option<(Epsilon, Delta)>,
    ) -> Result<(), StoreError> {
        if coords.len() != topo.num_nodes() {
            return Err(privpath_geo::GeoError::CoordTopologyMismatch {
                nodes: topo.num_nodes(),
                coords: coords.len(),
            }
            .into());
        }
        let index = SpatialIndex::build(coords)?;
        self.create_namespace_inner(name, topo, weights, budget, Some(Arc::new(index)))
    }

    fn create_namespace_inner(
        &self,
        name: &str,
        topo: Topology,
        weights: EdgeWeights,
        budget: Option<(Epsilon, Delta)>,
        geo: Option<Arc<SpatialIndex>>,
    ) -> Result<(), StoreError> {
        if !is_valid_namespace(name) {
            return Err(StoreError::InvalidNamespace(name.into()));
        }
        let mut map = self.map_write();
        if map.contains_key(name) {
            return Err(StoreError::NamespaceExists(name.into()));
        }
        let dir = self.root.join(name);
        if dir.join(MANIFEST_FILE).is_file() {
            return Err(StoreError::NamespaceExists(name.into()));
        }
        let accountant = match budget {
            Some((e, d)) => Accountant::with_budget(e, d),
            None => Accountant::unbounded(),
        };
        let engine = ReleaseEngine::with_accountant(topo, weights, accountant)?;
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        let writer = NamespaceWriter {
            name: name.to_string(),
            dir: dir.clone(),
            engine,
            specs: BTreeMap::new(),
            epoch: 0,
            budget: budget.map(|(e, d)| (e.value(), d.value())),
            continual: None,
            geo,
        };
        let mut topo_bytes = Vec::new();
        write_topology(&mut topo_bytes, writer.engine.topology())
            .map_err(|e| StoreError::io(&dir.join(TOPOLOGY_FILE), e))?;
        atomic_write(&dir.join(TOPOLOGY_FILE), &topo_bytes)?;
        let mut weight_bytes = Vec::new();
        write_weights(&mut weight_bytes, writer.engine.weights())
            .map_err(|e| StoreError::io(&dir.join(WEIGHTS_FILE), e))?;
        atomic_write(&dir.join(WEIGHTS_FILE), &weight_bytes)?;
        // The index before the manifest that references it: a crash
        // between the two leaves an unreferenced file for GC, never a
        // manifest pointing at nothing.
        if let Some(index) = &writer.geo {
            atomic_write(&dir.join(GEO_INDEX_FILE), index.to_text().as_bytes())?;
        }
        writer.persist_manifest()?;
        let ns = self.namespace_from_writer(writer);
        map.insert(name.to_string(), Arc::new(ns));
        Ok(())
    }

    /// Creates a **continual-release** namespace: a fixed update horizon
    /// `T`, a mandatory `(eps, delta)` budget converted through the
    /// tight zCDP inverse into a rho allowance, and a binary-tree
    /// composer whose capacity is `T + 1` (the base weights are stream
    /// item 1, so every later prefix sum *is* the current weights).
    /// Weight updates on this namespace route through the composer and
    /// debit the ledger only when the stream crosses a power of two —
    /// polylog total spend over the whole stream instead of a fresh full
    /// debit per update.
    ///
    /// # Errors
    /// [`StoreError::ContinualAccountant`] when `delta == 0` (a pure-DP
    /// ledger admits no Gaussian tree noise to compose) or `horizon` is
    /// zero; otherwise as [`create_namespace`](Self::create_namespace).
    pub fn create_namespace_continual(
        &self,
        name: &str,
        topo: Topology,
        weights: EdgeWeights,
        budget: (Epsilon, Delta),
        horizon: u64,
    ) -> Result<(), StoreError> {
        let (eps, delta) = budget;
        if delta.value() <= 0.0 {
            return Err(StoreError::ContinualAccountant(
                "continual mode needs an approximate-DP budget (delta > 0): a pure-DP \
                 ledger admits no Gaussian tree noise to compose"
                    .into(),
            ));
        }
        if horizon == 0 {
            return Err(StoreError::ContinualAccountant(
                "continual horizon must be at least 1".into(),
            ));
        }
        if !is_valid_namespace(name) {
            return Err(StoreError::InvalidNamespace(name.into()));
        }
        let mut map = self.map_write();
        if map.contains_key(name) {
            return Err(StoreError::NamespaceExists(name.into()));
        }
        let dir = self.root.join(name);
        if dir.join(MANIFEST_FILE).is_file() {
            return Err(StoreError::NamespaceExists(name.into()));
        }
        let rho_total = max_rho_for_epsilon(eps.value(), delta.value())
            .map_err(|e| StoreError::ContinualAccountant(e.to_string()))?;
        let mut state = ContinualState::new(horizon, rho_total, delta.value(), weights.len())?;
        let accountant = Accountant::with_budget(eps, delta);
        let mut engine = ReleaseEngine::with_accountant(topo, weights, accountant)?;
        // Stream item 1 is the base weight vector itself. Debit the
        // telescoped increment (plus the one-time delta) before any
        // noise is drawn — check-before-noise, as everywhere else.
        let (inc_eps, inc_delta) = state.prospective_debit()?;
        engine.debit(
            "continual@1",
            Epsilon::new(inc_eps).map_err(EngineError::Dp)?,
            Delta::new(inc_delta).map_err(EngineError::Dp)?,
        )?;
        let base = engine.weights().as_slice().to_vec();
        let mut rng = self.next_rng();
        state
            .composer
            .push(&base, &mut rng)
            .map_err(|e| StoreError::ContinualAccountant(e.to_string()))?;
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        let state_file = state_file_name(0);
        state.write_state(&dir, &state_file)?;
        let writer = NamespaceWriter {
            name: name.to_string(),
            dir: dir.clone(),
            engine,
            specs: BTreeMap::new(),
            epoch: 0,
            budget: Some((eps.value(), delta.value())),
            continual: Some((state, state_file)),
            geo: None,
        };
        let mut topo_bytes = Vec::new();
        write_topology(&mut topo_bytes, writer.engine.topology())
            .map_err(|e| StoreError::io(&dir.join(TOPOLOGY_FILE), e))?;
        atomic_write(&dir.join(TOPOLOGY_FILE), &topo_bytes)?;
        let mut weight_bytes = Vec::new();
        write_weights(&mut weight_bytes, writer.engine.weights())
            .map_err(|e| StoreError::io(&dir.join(WEIGHTS_FILE), e))?;
        atomic_write(&dir.join(WEIGHTS_FILE), &weight_bytes)?;
        writer.persist_manifest()?;
        let ns = self.namespace_from_writer(writer);
        map.insert(name.to_string(), Arc::new(ns));
        Ok(())
    }

    /// Runs `spec` as a new release in `namespace`: budget pre-checked,
    /// staged, installed, persisted, then published to readers via an
    /// epoch bump.
    ///
    /// # Errors
    /// [`StoreError::UnknownNamespace`]; the engine's budget/mechanism
    /// errors; [`StoreError::Io`] when persistence fails (the registry is
    /// rolled back so memory matches the on-disk manifest; the in-memory
    /// spend of the discarded noise is kept conservatively but, like the
    /// noise, never published).
    pub fn publish(
        &self,
        namespace: &str,
        spec: &ReleaseSpec,
    ) -> Result<PublishReceipt, StoreError> {
        let started = Instant::now();
        let ns = self.get(namespace)?;
        let mut rng = self.next_rng();
        let mut w = ns.lock_writer(namespace)?;
        // Stage first: a mechanism failure touches nothing. A continual
        // namespace serves releases as **post-processing** of the tree
        // composer's estimate — exact mechanisms over already-noised
        // weights, zero marginal ledger cost — so only kinds whose
        // mechanism is exact under `ZeroNoise` are admissible.
        let staged = if let Some((state, _)) = &w.continual {
            if !is_continual_servable(spec.kind()) {
                return Err(StoreError::InvalidSpec(format!(
                    "{} releases cannot be served continually: the mechanism perturbs \
                     per-release structure instead of post-processing the tree estimate",
                    spec.kind()
                )));
            }
            // The record keeps the spec's *nominal* eps (it doubles as
            // the persisted mechanism parameter); the actual ledger
            // debit is zero and the receipt reports that.
            let mut s = spec.run(
                w.engine.topology(),
                &state.estimate_weights(),
                // privlint: allow(budget-discipline, "continual serving is exact post-processing of the already-debited tree estimate; ZeroNoise draws nothing")
                &mut ZeroNoise,
            )?;
            s.accuracy =
                Some(state.contract(w.engine.topology().num_nodes(), w.engine.weights().len()));
            s
        } else {
            let (cost_eps, cost_delta) = spec.cost();
            w.check_budget(cost_eps, cost_delta)?;
            spec.run(
                w.engine.topology(),
                w.engine.weights(),
                // privlint: allow(budget-discipline, "check_budget pre-approved the full spec cost just above, so this draw is the debited one")
                &mut RngNoise::new(&mut rng),
            )?
        };
        let continual = w.continual.is_some();
        let new_epoch = w.epoch + 1;
        let (eps, delta) = if continual {
            (0.0, 0.0)
        } else {
            (staged.eps, staged.delta)
        };
        let label = format!("{}#e{new_epoch}", staged.release.kind());
        let id = if continual {
            w.engine.adopt_unspent(
                label,
                staged.eps,
                staged.delta,
                staged.accuracy,
                staged.release,
            )
        } else {
            w.engine.adopt(
                label,
                staged.eps,
                staged.delta,
                staged.accuracy,
                staged.release,
            )?
        };
        let file = release_file_name(id.value(), new_epoch);
        if let Err(e) = w.write_record_file(id, &file) {
            w.engine.remove(id);
            return Err(e);
        }
        w.specs.insert(
            id.value(),
            SpecEntry {
                spec: spec.clone(),
                file: file.clone(),
            },
        );
        w.epoch = new_epoch;
        if let Err(e) = w.persist_manifest() {
            // Roll back so memory matches the (old) manifest on disk; the
            // unreferenced file is deleted, never served.
            w.engine.remove(id);
            w.specs.remove(&id.value());
            w.epoch = new_epoch - 1;
            let _ = fs::remove_file(w.dir.join(&file));
            return Err(e);
        }
        let receipt = PublishReceipt {
            namespace: namespace.to_string(),
            id,
            epoch: w.epoch,
            eps,
            delta,
        };
        self.swap_snapshot(&ns, &w);
        record_commit_timing(
            "store_publish_seconds",
            namespace,
            started.elapsed().as_secs_f64(),
        );
        Ok(receipt)
    }

    /// Replaces `namespace`'s private weights and re-runs **every** live
    /// release against them, each under a fresh debit, then publishes
    /// the whole new generation to readers as one epoch bump (readers
    /// never see a mix of old- and new-weight releases).
    ///
    /// The pass is a two-phase commit. The total cost is checked against
    /// the budget **before any noise is drawn**; the whole generation is
    /// then *staged* — every mechanism run against the new weights with
    /// the registry untouched, so a mid-generation failure publishes and
    /// debits nothing — and written to fresh generation-suffixed files.
    /// Only then is the registry updated and the manifest renamed over
    /// (the commit point); the previous generation's files are deleted
    /// after the commit, so a crash at any step replays either entirely
    /// the old state or entirely the new one.
    ///
    /// # Errors
    /// [`StoreError::UnknownNamespace`]; [`StoreError::Engine`] on
    /// length-mismatched weights, weights a mechanism rejects (e.g.
    /// above a bounded-weight promise), or budget exhaustion;
    /// [`StoreError::Io`] on persistence failure. On any of these the
    /// old generation keeps serving.
    pub fn update_weights(
        &self,
        namespace: &str,
        new_weights: EdgeWeights,
    ) -> Result<UpdateReceipt, StoreError> {
        let started = Instant::now();
        let ns = self.get(namespace)?;
        let mut rng = self.next_rng();
        let mut w = ns.lock_writer(namespace)?;
        let update = WeightUpdate::measure(w.engine.weights(), &new_weights)?;

        if w.continual.is_some() {
            let result = self.update_weights_continual(
                namespace,
                &ns,
                &mut w,
                new_weights,
                &update,
                &mut rng,
            );
            if result.is_ok() {
                record_commit_timing(
                    "store_update_seconds",
                    namespace,
                    started.elapsed().as_secs_f64(),
                );
            }
            return result;
        }

        // Pre-check the whole pass so a partial re-release generation is
        // never even staged for budget reasons.
        let (total_eps, total_delta) = w.specs.values().fold((0.0, 0.0), |(e, d), entry| {
            (e + entry.spec.cost().0, d + entry.spec.cost().1)
        });
        if !w.specs.is_empty() {
            w.check_budget(total_eps, total_delta)?;
        }

        // Phase 1 — stage: run every mechanism against the new weights;
        // nothing (registry, ledger, disk) moves yet.
        let new_epoch = w.epoch + 1;
        let mut staged: Vec<(u64, String, String, StagedRelease)> = Vec::new();
        for (&id, entry) in &w.specs {
            let s = entry.spec.run(
                w.engine.topology(),
                &new_weights,
                // privlint: allow(budget-discipline, "the whole generation cost was pre-checked via check_budget before staging began")
                &mut RngNoise::new(&mut rng),
            )?;
            let label = format!("{}#{id}@e{new_epoch}", s.release.kind());
            staged.push((id, release_file_name(id, new_epoch), label, s));
        }

        // Phase 2 — persist the new generation under write-once names
        // (old files untouched), then the weights. An abort here deletes
        // the shadows and leaves memory and the manifest as they were.
        let abort_files = |w: &NamespaceWriter, upto: &[(u64, String, String, StagedRelease)]| {
            for (_, file, _, _) in upto {
                let _ = fs::remove_file(w.dir.join(file));
            }
        };
        for i in 0..staged.len() {
            let (_, file, label, s) = &staged[i];
            if let Err(e) = write_staged(&w.dir, file, label, s) {
                abort_files(&w, &staged[..=i]);
                return Err(e);
            }
        }
        let mut weight_bytes = Vec::new();
        write_weights(&mut weight_bytes, &new_weights)
            .map_err(|e| StoreError::io(&w.dir.join(WEIGHTS_FILE), e))?;
        if let Err(e) = atomic_write(&w.dir.join(WEIGHTS_FILE), &weight_bytes) {
            abort_files(&w, &staged);
            return Err(e);
        }

        // Phase 3 — install and commit: registry + ledger, then the
        // manifest rename (the commit point), then GC the old files.
        w.engine.update_weights(new_weights)?;
        let (mut eps_spent, mut delta_spent) = (0.0, 0.0);
        let mut old_files = Vec::with_capacity(staged.len());
        for (id, file, label, s) in staged {
            eps_spent += s.eps;
            delta_spent += s.delta;
            w.engine.replace_release(
                ReleaseId::new(id),
                label,
                s.eps,
                s.delta,
                s.accuracy,
                s.release,
            )?;
            // privlint: allow(panic-freedom, "id iterates w.specs keys above; get_mut on the same untouched map cannot miss")
            #[allow(clippy::disallowed_methods)]
            let entry = w.specs.get_mut(&id).expect("staged from the spec map");
            old_files.push(std::mem::replace(&mut entry.file, file));
        }
        w.epoch = new_epoch;
        w.persist_manifest()?;
        for file in old_files {
            let _ = fs::remove_file(w.dir.join(file));
        }
        let receipt = UpdateReceipt {
            namespace: namespace.to_string(),
            epoch: w.epoch,
            rereleased: w.specs.len(),
            eps: eps_spent,
            delta: delta_spent,
            l1_shift: update.l1_shift(),
            changed_edges: update.changed_edges(),
        };
        self.swap_snapshot(&ns, &w);
        record_commit_timing(
            "store_update_seconds",
            namespace,
            started.elapsed().as_secs_f64(),
        );
        Ok(receipt)
    }

    /// The continual-mode weight update: the delta against the current
    /// private weights becomes the next binary-tree stream item, every
    /// live release is re-staged as exact post-processing of the new
    /// tree estimate, and the ledger is debited only by the telescoped
    /// increment (zero except when the stream crosses a power of two).
    /// The tree state persists to a write-once epoch-suffixed file
    /// before the manifest rename, so the rename atomically commits
    /// stream position, ledger, and releases together.
    fn update_weights_continual(
        &self,
        namespace: &str,
        ns: &Namespace,
        w: &mut NamespaceWriter,
        new_weights: EdgeWeights,
        update: &WeightUpdate,
        rng: &mut StdRng,
    ) -> Result<UpdateReceipt, StoreError> {
        // privlint: allow(panic-freedom, "update_weights dispatches here only when w.continual is Some, under the same writer lock")
        #[allow(clippy::disallowed_methods)]
        let state = w.continual.as_ref().expect("checked by caller").0.clone();
        if state.position() >= state.horizon {
            return Err(StoreError::ContinualHorizon {
                namespace: w.name.clone(),
                horizon: state.horizon,
            });
        }
        let (inc_eps, inc_delta) = state.prospective_debit()?;
        if inc_eps > 0.0 || inc_delta > 0.0 {
            w.check_budget(inc_eps, inc_delta)?;
        }

        // Phase 1 — stage on a clone: the stream item is the true
        // per-edge delta; a failure anywhere below touches nothing.
        let mut new_state = state;
        let item = new_state.composer.items() + 1;
        let delta_vec: Vec<f64> = new_weights
            .as_slice()
            .iter()
            .zip(w.engine.weights().as_slice())
            .map(|(new, old)| new - old)
            .collect();
        new_state
            .composer
            .push(&delta_vec, rng)
            .map_err(|e| StoreError::ContinualAccountant(e.to_string()))?;
        let estimate = new_state.estimate_weights();
        let new_epoch = w.epoch + 1;
        let contract =
            new_state.contract(w.engine.topology().num_nodes(), w.engine.weights().len());
        let mut staged: Vec<(u64, String, String, StagedRelease)> = Vec::new();
        for (&id, entry) in &w.specs {
            let mut s = entry
                .spec
                // privlint: allow(budget-discipline, "re-staging is exact post-processing of the debited tree estimate; ZeroNoise draws nothing")
                .run(w.engine.topology(), &estimate, &mut ZeroNoise)?;
            s.accuracy = Some(contract);
            let label = format!("{}#{id}@e{new_epoch}", s.release.kind());
            staged.push((id, release_file_name(id, new_epoch), label, s));
        }

        // Phase 2 — persist the shadows, the new true weights, and the
        // new tree state under write-once names (old files untouched).
        let abort_files = |w: &NamespaceWriter, upto: &[(u64, String, String, StagedRelease)]| {
            for (_, file, _, _) in upto {
                let _ = fs::remove_file(w.dir.join(file));
            }
        };
        for i in 0..staged.len() {
            let (_, file, label, s) = &staged[i];
            if let Err(e) = write_staged(&w.dir, file, label, s) {
                abort_files(w, &staged[..=i]);
                return Err(e);
            }
        }
        let mut weight_bytes = Vec::new();
        write_weights(&mut weight_bytes, &new_weights)
            .map_err(|e| StoreError::io(&w.dir.join(WEIGHTS_FILE), e))?;
        if let Err(e) = atomic_write(&w.dir.join(WEIGHTS_FILE), &weight_bytes) {
            abort_files(w, &staged);
            return Err(e);
        }
        let state_file = state_file_name(new_epoch);
        if let Err(e) = new_state.write_state(&w.dir, &state_file) {
            abort_files(w, &staged);
            let _ = fs::remove_file(w.dir.join(&state_file));
            return Err(e);
        }

        // Phase 3 — install and commit: true weights, the telescoped
        // debit (skipped when zero: the ledger records only crossings),
        // the post-processed releases, then the manifest rename.
        w.engine.update_weights(new_weights)?;
        if inc_eps > 0.0 || inc_delta > 0.0 {
            w.engine.debit(
                format!("continual@{item}"),
                Epsilon::new(inc_eps).map_err(EngineError::Dp)?,
                Delta::new(inc_delta).map_err(EngineError::Dp)?,
            )?;
        }
        let mut old_files = Vec::with_capacity(staged.len());
        for (id, file, label, s) in staged {
            w.engine.replace_release_unspent(
                ReleaseId::new(id),
                label,
                s.eps,
                s.delta,
                s.accuracy,
                s.release,
            )?;
            // privlint: allow(panic-freedom, "id iterates w.specs keys above; get_mut on the same untouched map cannot miss")
            #[allow(clippy::disallowed_methods)]
            let entry = w.specs.get_mut(&id).expect("staged from the spec map");
            old_files.push(std::mem::replace(&mut entry.file, file));
        }
        let old_state_file = {
            // privlint: allow(panic-freedom, "guarded by the is_some dispatch in update_weights; the writer lock is held throughout")
            #[allow(clippy::disallowed_methods)]
            let slot = w.continual.as_mut().expect("checked by caller");
            slot.0 = new_state;
            std::mem::replace(&mut slot.1, state_file)
        };
        w.epoch = new_epoch;
        w.persist_manifest()?;
        for file in old_files {
            let _ = fs::remove_file(w.dir.join(file));
        }
        let _ = fs::remove_file(w.dir.join(&old_state_file));
        let receipt = UpdateReceipt {
            namespace: namespace.to_string(),
            epoch: w.epoch,
            rereleased: w.specs.len(),
            eps: inc_eps,
            delta: inc_delta,
            l1_shift: update.l1_shift(),
            changed_edges: update.changed_edges(),
        };
        self.swap_snapshot(ns, w);
        Ok(receipt)
    }

    /// [`update_weights`](Self::update_weights) from a sparse set of
    /// `(edge, new weight)` updates applied to the current weights.
    ///
    /// # Errors
    /// As [`update_weights`](Self::update_weights), plus
    /// [`StoreError::Engine`] for out-of-range edges or non-finite
    /// values.
    pub fn update_weights_sparse(
        &self,
        namespace: &str,
        updates: &[(EdgeId, f64)],
    ) -> Result<UpdateReceipt, StoreError> {
        let new_weights = {
            let ns = self.get(namespace)?;
            let w = ns.lock_writer(namespace)?;
            w.engine.weights().with_updates(updates)?
        };
        // The writer lock is released and retaken: a racing full update
        // between the two would make this one's base stale, which is the
        // same outcome as the two arriving in the other order.
        self.update_weights(namespace, new_weights)
    }

    /// [`update_weights`](Self::update_weights) from pairs declared to be
    /// a **full replacement**: exactly one weight per edge of the
    /// namespace, no silent partial updates. A pair list that is too
    /// short, too long, out of range, or carries duplicate edges is
    /// refused before anything runs — this is the wire form of "replace
    /// the whole weight vector" (the sparse form is
    /// [`update_weights_sparse`](Self::update_weights_sparse)).
    ///
    /// # Errors
    /// [`StoreError::InvalidUpdate`] when the pairs are not exactly one
    /// per edge; otherwise as [`update_weights`](Self::update_weights).
    pub fn update_weights_full(
        &self,
        namespace: &str,
        updates: &[(EdgeId, f64)],
    ) -> Result<UpdateReceipt, StoreError> {
        let num_edges = {
            let ns = self.get(namespace)?;
            let w = ns.lock_writer(namespace)?;
            w.engine.weights().len()
        };
        if updates.len() != num_edges {
            return Err(StoreError::InvalidUpdate(format!(
                "full replacement carries {} weights but the namespace has {} edges",
                updates.len(),
                num_edges
            )));
        }
        let mut values: Vec<Option<f64>> = vec![None; num_edges];
        for &(e, v) in updates {
            if e.index() >= num_edges {
                return Err(StoreError::from(
                    privpath_graph::GraphError::EdgeOutOfRange { edge: e, num_edges },
                ));
            }
            if values[e.index()].replace(v).is_some() {
                return Err(StoreError::InvalidUpdate(format!(
                    "edge {} specified twice in a full replacement",
                    e.index()
                )));
            }
        }
        // Length matches and every index is distinct and in range, so
        // every slot is filled.
        #[allow(clippy::disallowed_methods)]
        let new_weights = EdgeWeights::new(
            values
                .into_iter()
                // privlint: allow(panic-freedom, "length equals num_edges and indices are distinct and in range, so every slot was filled")
                .map(|v| v.expect("every slot filled"))
                .collect(),
        )?;
        self.update_weights(namespace, new_weights)
    }

    /// Unregisters one release. The manifest commits first and the file
    /// is deleted after (a crash between the two leaves an unreferenced
    /// file that [`open`](Self::open) garbage-collects — never a
    /// manifest pointing at a missing file). The ledger keeps every
    /// spend that produced the release.
    ///
    /// # Errors
    /// [`StoreError::UnknownNamespace`];
    /// [`StoreError::Engine`]([`EngineError::UnknownRelease`]) for an
    /// unknown id; [`StoreError::Io`] on persistence failure (rolled
    /// back: the release keeps serving).
    pub fn drop_release(&self, namespace: &str, id: ReleaseId) -> Result<u64, StoreError> {
        let ns = self.get(namespace)?;
        let mut w = ns.lock_writer(namespace)?;
        let Some(entry) = w.specs.get(&id.value()).cloned() else {
            return Err(StoreError::Engine(EngineError::UnknownRelease(id.value())));
        };
        #[allow(clippy::disallowed_methods)]
        let removed = w
            .engine
            .remove(id)
            // privlint: allow(panic-freedom, "entry was just found in w.specs; spec map and registry insert and remove together under the writer lock")
            .expect("spec map and registry agree on live ids");
        w.specs.remove(&id.value());
        w.epoch += 1;
        if let Err(e) = w.persist_manifest() {
            // Restore memory to match the manifest still on disk.
            w.epoch -= 1;
            w.specs.insert(id.value(), entry);
            let _ = w.engine.adopt_spent(
                id,
                removed.label().to_string(),
                removed.eps(),
                removed.delta(),
                removed.accuracy().cloned(),
                removed.release().clone(),
            );
            return Err(e);
        }
        let _ = fs::remove_file(w.dir.join(&entry.file));
        let epoch = w.epoch;
        self.swap_snapshot(&ns, &w);
        Ok(epoch)
    }

    /// Removes a whole namespace from the store and deletes its
    /// directory (releases, weights, manifest). Readers holding a
    /// snapshot keep answering from it.
    ///
    /// # Errors
    /// [`StoreError::UnknownNamespace`]; [`StoreError::Io`] if the
    /// directory cannot be removed (the namespace is already gone from
    /// serving at that point).
    pub fn drop_namespace(&self, namespace: &str) -> Result<(), StoreError> {
        let removed = self
            .map_write()
            .remove(namespace)
            .ok_or_else(|| StoreError::UnknownNamespace(namespace.into()))?;
        // `dir` never mutates after construction, so it survives even a
        // poisoned writer — and the directory must still be deleted.
        let dir = removed
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dir
            .clone();
        fs::remove_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))
    }

    /// The current epoch of a namespace.
    ///
    /// # Errors
    /// [`StoreError::UnknownNamespace`].
    pub fn epoch(&self, namespace: &str) -> Result<u64, StoreError> {
        Ok(self.snapshot(namespace)?.epoch())
    }

    /// The current snapshot of a namespace: two brief shared-lock reads,
    /// then entirely lock-free.
    ///
    /// # Errors
    /// [`StoreError::UnknownNamespace`].
    pub fn snapshot(&self, namespace: &str) -> Result<Arc<NamespaceSnapshot>, StoreError> {
        let ns = self.get(namespace)?;
        Ok(ns.current_snapshot())
    }

    /// Per-namespace counters, sorted by name.
    pub fn stats(&self) -> Vec<NamespaceStats> {
        let map = self.map_read();
        map.values()
            .map(|ns| {
                let snap = ns.current_snapshot();
                let (spent_eps, spent_delta) = snap.service().spent();
                NamespaceStats {
                    namespace: snap.namespace().to_string(),
                    epoch: snap.epoch(),
                    releases: snap.service().len(),
                    spent_eps,
                    spent_delta,
                    remaining: snap.service().remaining(),
                    cache_hits: ns.counters.hits(),
                    cache_misses: ns.counters.misses(),
                    continual: snap.continual(),
                }
            })
            .collect()
    }

    /// [`stats`](Self::stats) for one namespace.
    ///
    /// # Errors
    /// [`StoreError::UnknownNamespace`].
    pub fn stats_for(&self, namespace: &str) -> Result<NamespaceStats, StoreError> {
        self.stats()
            .into_iter()
            .find(|s| s.namespace == namespace)
            .ok_or_else(|| StoreError::UnknownNamespace(namespace.into()))
    }

    /// Namespace-map access. The map only ever holds fully constructed
    /// `Arc<Namespace>` entries (values are built before insertion and
    /// removed whole), so even a poisoned lock guards a structurally
    /// valid map; recover it rather than cascade an unrelated panic.
    fn map_read(&self) -> RwLockReadGuard<'_, BTreeMap<String, Arc<Namespace>>> {
        self.namespaces
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Write access to the namespace map (see
    /// [`map_read`](Self::map_read) for the poisoning argument).
    fn map_write(&self) -> RwLockWriteGuard<'_, BTreeMap<String, Arc<Namespace>>> {
        self.namespaces
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn get(&self, namespace: &str) -> Result<Arc<Namespace>, StoreError> {
        self.map_read()
            .get(namespace)
            .cloned()
            .ok_or_else(|| StoreError::UnknownNamespace(namespace.into()))
    }

    fn next_rng(&self) -> StdRng {
        let n = self.seed.fetch_add(1, Ordering::Relaxed);
        StdRng::seed_from_u64(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn build_snapshot(
        &self,
        writer: &NamespaceWriter,
        counters: &CacheCounters,
    ) -> NamespaceSnapshot {
        NamespaceSnapshot {
            namespace: writer.name.clone(),
            epoch: writer.epoch,
            service: writer.engine.snapshot(),
            cache: self
                .cache_enabled
                .then(|| SourceCache::new(self.cache_capacity, counters.clone())),
            continual: writer.continual.as_ref().map(|(s, _)| s.status()),
            geo: writer.geo.clone(),
        }
    }

    fn namespace_from_writer(&self, writer: NamespaceWriter) -> Namespace {
        let counters = CacheCounters::for_namespace(&writer.name);
        let snapshot = Arc::new(self.build_snapshot(&writer, &counters));
        Namespace {
            writer: Mutex::new(writer),
            current: RwLock::new(snapshot),
            counters,
        }
    }

    /// Publishes the writer's state to readers: one pointer swap under a
    /// brief write lock, after the mutation fully committed.
    fn swap_snapshot(&self, ns: &Namespace, writer: &NamespaceWriter) {
        // Every swap is a committed epoch bump (publish, update, drop,
        // continual update) — count it where they all converge.
        privpath_obs::MetricRegistry::global()
            .counter_with("store_epoch_bumps_total", &[("ns", &writer.name)])
            .inc();
        let snapshot = Arc::new(self.build_snapshot(writer, &ns.counters));
        ns.publish_snapshot(snapshot);
    }

    /// Replays one namespace directory: manifest, ledger, release files.
    fn load_namespace(&self, dir: &Path) -> Result<(String, Namespace), StoreError> {
        let data = read_manifest(dir)?;
        let dir_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if data.namespace != dir_name {
            return Err(StoreError::manifest(
                &dir.join(MANIFEST_FILE),
                format!(
                    "manifest names namespace {:?} but lives in directory {:?}",
                    data.namespace, dir_name
                ),
            ));
        }
        if !is_valid_namespace(&data.namespace) {
            return Err(StoreError::InvalidNamespace(data.namespace));
        }

        let topo_path = dir.join(TOPOLOGY_FILE);
        let topo = read_topology(BufReader::new(
            File::open(&topo_path).map_err(|e| StoreError::io(&topo_path, e))?,
        ))
        .map_err(|e| StoreError::io(&topo_path, e))?;
        let weights_path = dir.join(WEIGHTS_FILE);
        let weights = read_weights(BufReader::new(
            File::open(&weights_path).map_err(|e| StoreError::io(&weights_path, e))?,
        ))
        .map_err(|e| StoreError::io(&weights_path, e))?;

        // Continual state replays from its own file; the manifest's
        // horizon/rho/delta must agree with it or the namespace refuses
        // to load (a mismatch means the stream position is unaccounted).
        let continual = match &data.continual {
            Some(cm) => {
                let state = ContinualState::read_state(dir, &cm.file, weights.len())?;
                // Both sides are parsed from files we wrote, so the
                // cross-check is exact bit equality, not float `==`.
                if state.horizon != cm.horizon
                    || state.rho_total.to_bits() != cm.rho_total.to_bits()
                    || state.delta.to_bits() != cm.delta.to_bits()
                {
                    return Err(StoreError::manifest(
                        &dir.join(MANIFEST_FILE),
                        format!(
                            "continual state file {:?} disagrees with the manifest's \
                             horizon/rho/delta",
                            cm.file
                        ),
                    ));
                }
                Some((state, cm.file.clone()))
            }
            None => None,
        };

        // The spatial index replays from its own file with full
        // structural validation; a point count disagreeing with the
        // topology means the artifact belongs to a different network,
        // so the namespace refuses to load.
        let geo = match &data.geo {
            Some(file) => {
                let path = dir.join(file);
                let text = fs::read_to_string(&path).map_err(|e| StoreError::io(&path, e))?;
                let index = SpatialIndex::from_text(&text)?;
                if index.len() != topo.num_nodes() {
                    return Err(StoreError::manifest(
                        &dir.join(MANIFEST_FILE),
                        format!(
                            "geo index {file:?} holds {} points but the topology has {} nodes",
                            index.len(),
                            topo.num_nodes()
                        ),
                    ));
                }
                Some(Arc::new(index))
            }
            None => None,
        };

        // The ledger first: spends cover every release and re-release,
        // including generations since replaced.
        let mut accountant = match data.budget {
            Some((e, d)) => Accountant::with_budget(
                Epsilon::new(e).map_err(EngineError::Dp)?,
                Delta::new(d).map_err(EngineError::Dp)?,
            ),
            None => Accountant::unbounded(),
        };
        for (label, eps, delta) in &data.spends {
            accountant
                .spend(
                    label.clone(),
                    Epsilon::new(*eps).map_err(EngineError::Dp)?,
                    Delta::new(*delta).map_err(EngineError::Dp)?,
                )
                .map_err(|e| {
                    StoreError::manifest(
                        &dir.join(MANIFEST_FILE),
                        format!("ledger replay failed at spend {label:?}: {e}"),
                    )
                })?;
        }
        let mut engine = ReleaseEngine::with_accountant(topo, weights, accountant)?;

        let mut specs = BTreeMap::new();
        for (id, file, spec) in &data.releases {
            let path = dir.join(file);
            let stored = privpath_engine::read_release(BufReader::new(
                File::open(&path).map_err(|e| StoreError::io(&path, e))?,
            ))
            .map_err(|e| StoreError::io(&path, e))?;
            if stored.release.kind() != spec.kind() {
                return Err(StoreError::manifest(
                    &dir.join(MANIFEST_FILE),
                    format!(
                        "release {id} is a {} file but its spec says {}",
                        stored.release.kind(),
                        spec.kind()
                    ),
                ));
            }
            engine.adopt_spent(
                ReleaseId::new(*id),
                stored.label,
                stored.eps,
                stored.delta,
                stored.accuracy,
                stored.release,
            )?;
            specs.insert(
                *id,
                SpecEntry {
                    spec: spec.clone(),
                    file: file.clone(),
                },
            );
        }

        // Crash leftovers: temp files and release files the manifest does
        // not reference are never served — delete them.
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                let name = entry.file_name().to_string_lossy().into_owned();
                let referenced = data.releases.iter().any(|(_, f, _)| *f == name)
                    || data.continual.as_ref().is_some_and(|c| c.file == name)
                    || data.geo.as_deref() == Some(name.as_str())
                    || name == MANIFEST_FILE
                    || name == TOPOLOGY_FILE
                    || name == WEIGHTS_FILE;
                if !referenced && path.is_file() {
                    let _ = fs::remove_file(&path);
                }
            }
        }

        let writer = NamespaceWriter {
            name: data.namespace.clone(),
            dir: dir.to_path_buf(),
            engine,
            specs,
            epoch: data.epoch,
            budget: data.budget,
            continual,
            geo,
        };
        Ok((data.namespace.clone(), self.namespace_from_writer(writer)))
    }
}

impl std::fmt::Debug for ReleaseStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReleaseStore")
            .field("root", &self.root)
            .field("cache_enabled", &self.cache_enabled)
            .field("namespaces", &self.namespaces())
            .finish()
    }
}
