//! Error type for the live release store.

use privpath_core::CoreError;
use privpath_engine::EngineError;
use privpath_graph::GraphError;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Errors produced by the store layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An engine-layer failure (budget, mechanism, persistence codec).
    Engine(EngineError),
    /// A filesystem failure, with the path involved.
    Io {
        /// The path the operation touched.
        path: String,
        /// The underlying error text.
        message: String,
    },
    /// The referenced namespace does not exist in the store.
    UnknownNamespace(String),
    /// A namespace with this name already exists.
    NamespaceExists(String),
    /// The namespace name is not valid (see
    /// [`is_valid_namespace`](crate::is_valid_namespace)).
    InvalidNamespace(String),
    /// A release spec that cannot be run or parsed (unknown mechanism,
    /// knobs for the wrong mechanism, missing required knobs).
    InvalidSpec(String),
    /// A weight update that cannot be applied as requested (a full
    /// replacement with the wrong edge count, or duplicate edges).
    InvalidUpdate(String),
    /// A malformed or inconsistent manifest, with the path involved.
    Manifest {
        /// The manifest path.
        path: String,
        /// What was wrong.
        message: String,
    },
    /// A continual namespace's update stream is already at its declared
    /// horizon: no further weight updates can be absorbed (the tree
    /// composer's privacy analysis is fixed at init time).
    ContinualHorizon {
        /// The namespace.
        namespace: String,
        /// The declared horizon `T`.
        horizon: u64,
    },
    /// A previous write operation on this namespace panicked while
    /// holding the writer lock, so the in-memory write state may sit
    /// between two-phase-commit steps. Further writes are refused;
    /// reads keep serving the last published snapshot. Re-open the
    /// store to replay the committed on-disk state.
    WriterPoisoned(String),
    /// A continual namespace was requested with an accounting setup that
    /// cannot compose sublinearly (e.g. a pure-DP budget with
    /// `delta = 0`, which admits no Gaussian tree noise), or an
    /// operation assumed continual mode on a standard namespace (or vice
    /// versa).
    ContinualAccountant(String),
    /// A road-network ingestion or spatial-index failure (malformed
    /// DIMACS input, coordinate/topology mismatch, corrupt persisted
    /// index). Carries the rendered [`privpath_geo::GeoError`] text so
    /// this type stays `Clone + PartialEq`.
    Geo(String),
}

impl StoreError {
    pub(crate) fn io(path: &Path, e: impl fmt::Display) -> Self {
        StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }

    pub(crate) fn manifest(path: &Path, message: impl Into<String>) -> Self {
        StoreError::Manifest {
            path: path.display().to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Engine(e) => write!(f, "engine error: {e}"),
            StoreError::Io { path, message } => write!(f, "i/o error at {path}: {message}"),
            StoreError::UnknownNamespace(ns) => write!(f, "no namespace {ns:?} in the store"),
            StoreError::NamespaceExists(ns) => write!(f, "namespace {ns:?} already exists"),
            StoreError::InvalidNamespace(ns) => write!(
                f,
                "invalid namespace name {ns:?} (expected 1-64 chars from [A-Za-z0-9_-])"
            ),
            StoreError::InvalidSpec(msg) => write!(f, "invalid release spec: {msg}"),
            StoreError::InvalidUpdate(msg) => write!(f, "invalid weight update: {msg}"),
            StoreError::Manifest { path, message } => {
                write!(f, "manifest error at {path}: {message}")
            }
            StoreError::ContinualHorizon { namespace, horizon } => write!(
                f,
                "namespace {namespace:?} reached its continual horizon ({horizon} updates); \
                 re-init with a larger --horizon to stream further"
            ),
            StoreError::WriterPoisoned(ns) => write!(
                f,
                "namespace {ns:?} writer poisoned by an earlier panic; writes are \
                 refused until the store is re-opened from committed disk state"
            ),
            StoreError::ContinualAccountant(msg) => {
                write!(f, "continual accounting error: {msg}")
            }
            StoreError::Geo(msg) => write!(f, "geo error: {msg}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for StoreError {
    fn from(e: EngineError) -> Self {
        StoreError::Engine(e)
    }
}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Engine(EngineError::Core(e))
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Engine(EngineError::from(e))
    }
}

impl From<privpath_geo::GeoError> for StoreError {
    fn from(e: privpath_geo::GeoError) -> Self {
        StoreError::Geo(e.to_string())
    }
}
