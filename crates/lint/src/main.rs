//! `privpath-lint` CLI: the workspace invariant gate.
//!
//! ```text
//! privpath-lint --workspace [--root DIR]   lint the whole workspace
//! privpath-lint [--root DIR] FILE...       lint specific files
//! privpath-lint --list-rules               print every rule
//! ```
//!
//! Exits 0 when clean, 1 on any finding (including unjustified or
//! stale allow directives), 2 on usage or I/O errors.

use privpath_lint::model::SourceFile;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => {
                for (id, desc) in privpath_lint::rules::RULES {
                    println!("{id}\n    {desc}");
                }
                println!(
                    "\nsuppress with: // privlint: allow(<rule>, \"<justification>\")\n\
                     (justification mandatory; unused or unjustified allows are findings)"
                );
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => return usage("--root needs a directory"),
                }
            }
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag}"));
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }
    if !workspace && files.is_empty() {
        return usage("pass --workspace or at least one file");
    }
    if workspace && !files.is_empty() {
        return usage("--workspace and explicit files are mutually exclusive");
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => return fail(&format!("cannot read cwd: {e}")),
            };
            match privpath_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => cwd,
            }
        }
    };

    let diagnostics = if workspace {
        match privpath_lint::lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => return fail(&format!("workspace walk failed: {e}")),
        }
    } else {
        let mut parsed = Vec::new();
        for f in &files {
            let path = root.join(f);
            let source = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => return fail(&format!("cannot read {}: {e}", path.display())),
            };
            parsed.push(SourceFile::parse(f.replace('\\', "/"), &source));
        }
        privpath_lint::lint_files(&parsed)
    };

    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!(
            "privpath-lint: clean ({} rules)",
            privpath_lint::rules::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("privpath-lint: {} finding(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "privpath-lint: {msg}\nusage: privpath-lint --workspace [--root DIR] | \
         privpath-lint [--root DIR] FILE... | privpath-lint --list-rules"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("privpath-lint: {msg}");
    ExitCode::from(2)
}
