//! The in-source allowlist grammar:
//!
//! ```text
//! // privlint: allow(<rule>, "<justification>")
//! ```
//!
//! A directive suppresses findings of `<rule>` on its **target line**:
//! the directive's own line when it trails code, otherwise the next
//! line that carries code. The justification is mandatory and must be
//! non-empty — an unexplained suppression is itself a finding, as is a
//! directive that suppresses nothing (so stale allows cannot linger) or
//! names a rule the linter does not know.

use crate::lexer::Comment;
use crate::model::SourceFile;
use crate::Diagnostic;

/// One parsed, well-formed allow directive.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Line the directive is written on.
    pub line: u32,
    /// The rule it suppresses.
    pub rule: String,
    /// The mandatory justification.
    pub justification: String,
    /// The line whose findings it suppresses.
    pub target_line: u32,
}

/// Parses every directive in `file`; malformed ones become diagnostics.
pub fn parse_directives(
    file: &SourceFile,
    known_rules: &[&str],
) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
    let mut directives = Vec::new();
    let mut issues = Vec::new();
    for comment in &file.comments {
        // A directive is a regular comment *starting* with `privlint:`.
        // Doc comments (`///`, `//!`) lex with a leading `/` or `!`, so
        // prose *describing* the grammar never parses as a directive.
        let Some(body) = comment.text.trim_start().strip_prefix("privlint:") else {
            continue;
        };
        let body = body.trim();
        match parse_allow(body) {
            Ok((rule, justification)) => {
                if !known_rules.contains(&rule.as_str()) {
                    issues.push(Diagnostic {
                        rule: "allowlist",
                        path: file.path_str(),
                        line: comment.line,
                        message: format!(
                            "allow names unknown rule {rule:?} (known: {})",
                            known_rules.join(", ")
                        ),
                    });
                    continue;
                }
                if justification.trim().is_empty() {
                    issues.push(Diagnostic {
                        rule: "allowlist",
                        path: file.path_str(),
                        line: comment.line,
                        message: format!(
                            "allow({rule}) has an empty justification; every \
                             suppression must say why the invariant holds here"
                        ),
                    });
                    continue;
                }
                directives.push(AllowDirective {
                    line: comment.line,
                    rule,
                    justification,
                    target_line: target_line(file, comment),
                });
            }
            Err(msg) => issues.push(Diagnostic {
                rule: "allowlist",
                path: file.path_str(),
                line: comment.line,
                message: format!(
                    "malformed privlint directive ({msg}); expected \
                     `privlint: allow(<rule>, \"<justification>\")`"
                ),
            }),
        }
    }
    (directives, issues)
}

/// Parses `allow(<rule>, "<justification>")`.
fn parse_allow(body: &str) -> Result<(String, String), &'static str> {
    let rest = body
        .strip_prefix("allow")
        .ok_or("directive is not `allow`")?
        .trim_start();
    let rest = rest.strip_prefix('(').ok_or("missing `(`")?;
    let comma = rest.find(',').ok_or("missing `,` after rule name")?;
    let rule = rest[..comma].trim();
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
        return Err("rule name must be lowercase-with-dashes");
    }
    let rest = rest[comma + 1..].trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or("justification must be a double-quoted string")?;
    let close = rest.find('"').ok_or("unterminated justification string")?;
    let justification = &rest[..close];
    let tail = rest[close + 1..].trim_start();
    if !tail.starts_with(')') {
        return Err("missing closing `)`");
    }
    Ok((rule.to_string(), justification.to_string()))
}

/// The line a directive applies to: its own line when trailing code,
/// otherwise the next line that carries a code token — skipping
/// `#[...]` attributes, which decorate the same statement the directive
/// targets (e.g. a paired `#[allow(clippy::disallowed_methods)]`).
fn target_line(file: &SourceFile, comment: &Comment) -> u32 {
    if comment.trailing {
        return comment.line;
    }
    let toks = &file.tokens;
    let Some(mut i) = toks.iter().position(|t| t.line > comment.line) else {
        return comment.line;
    };
    while i < toks.len()
        && toks[i].is_punct("#")
        && toks.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        let mut depth = 0usize;
        i += 1;
        while i < toks.len() {
            if toks[i].is_punct("[") {
                depth += 1;
            } else if toks[i].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    toks.get(i).map_or(comment.line, |t| t.line)
}

/// Applies `directives` to `findings`: suppressed findings are removed,
/// and every directive that suppressed nothing becomes a diagnostic.
pub fn apply_directives(
    path: &str,
    directives: &[AllowDirective],
    findings: Vec<Diagnostic>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut used = vec![false; directives.len()];
    let kept: Vec<Diagnostic> = findings
        .into_iter()
        .filter(|f| {
            let hit = directives
                .iter()
                .position(|d| d.rule == f.rule && d.target_line == f.line);
            match hit {
                Some(i) => {
                    used[i] = true;
                    false
                }
                None => true,
            }
        })
        .collect();
    let unused: Vec<Diagnostic> = directives
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(d, _)| Diagnostic {
            rule: "allowlist",
            path: path.to_string(),
            line: d.line,
            message: format!(
                "unused allow({}): no {} finding on line {}; remove the stale \
                 directive",
                d.rule, d.rule, d.target_line
            ),
        })
        .collect();
    (kept, unused)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["panic-freedom", "budget-discipline"];

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/store/src/x.rs", src)
    }

    #[test]
    fn trailing_directive_targets_own_line() {
        let f = file("let x = v.unwrap(); // privlint: allow(panic-freedom, \"infallible\")\n");
        let (ds, issues) = parse_directives(&f, RULES);
        assert!(issues.is_empty());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].target_line, 1);
        assert_eq!(ds[0].justification, "infallible");
    }

    #[test]
    fn standalone_directive_targets_next_code_line() {
        let f = file(
            "// privlint: allow(panic-freedom, \"checked above\")\n// more prose\n\nlet x = v.unwrap();\n",
        );
        let (ds, _) = parse_directives(&f, RULES);
        assert_eq!(ds[0].target_line, 4);
    }

    #[test]
    fn standalone_directive_skips_attributes() {
        let f = file(
            "// privlint: allow(panic-freedom, \"infallible\")\n#[allow(clippy::disallowed_methods)]\nlet x = v.unwrap();\n",
        );
        let (ds, issues) = parse_directives(&f, RULES);
        assert!(issues.is_empty());
        assert_eq!(ds[0].target_line, 3);
    }

    #[test]
    fn empty_justification_is_an_issue() {
        let f = file("// privlint: allow(panic-freedom, \"\")\nlet x = v.unwrap();\n");
        let (ds, issues) = parse_directives(&f, RULES);
        assert!(ds.is_empty());
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("empty justification"));
    }

    #[test]
    fn unknown_rule_and_malformed_are_issues() {
        let f = file("// privlint: allow(no-such-rule, \"x\")\n// privlint: allow panic-freedom\nlet y = 1;\n");
        let (ds, issues) = parse_directives(&f, RULES);
        assert!(ds.is_empty());
        assert_eq!(issues.len(), 2);
    }

    #[test]
    fn unused_allow_is_reported() {
        let f = file("// privlint: allow(panic-freedom, \"nothing here\")\nlet y = 1;\n");
        let (ds, issues) = parse_directives(&f, RULES);
        assert!(issues.is_empty());
        let (kept, unused) = apply_directives("crates/store/src/x.rs", &ds, Vec::new());
        assert!(kept.is_empty());
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("unused allow"));
    }
}
