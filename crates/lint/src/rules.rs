//! The lint rules. Each rule is a pure function from the modeled file
//! set to line-anchored findings; scoping (which paths a rule covers)
//! lives in [`crate::policy`].

use crate::lexer::{Tok, TokKind};
use crate::model::SourceFile;
use crate::policy;
use crate::Diagnostic;

/// Rule id for the privacy-taint rule.
pub const PRIVACY_TAINT: &str = "privacy-taint";
/// Rule id for the budget-discipline rule.
pub const BUDGET_DISCIPLINE: &str = "budget-discipline";
/// Rule id for the crash-safety-commit rule.
pub const CRASH_SAFETY: &str = "crash-safety-commit";
/// Rule id for the panic-freedom rule.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Rule id for the mechanism-coupling rule.
pub const MECHANISM_COUPLING: &str = "mechanism-coupling";
/// Rule id for the budget-float-eq rule.
pub const BUDGET_FLOAT_EQ: &str = "budget-float-eq";
/// Rule id for the metrics-taint rule.
pub const METRICS_TAINT: &str = "metrics-taint";

/// Every rule id with a one-line description, in reporting order.
pub const RULES: &[(&str, &str)] = &[
    (
        PRIVACY_TAINT,
        "private weights (EdgeWeights, .weights(), tree estimates) must not be \
         referenced from the serve crate, wire codecs, or snapshot read paths",
    ),
    (
        BUDGET_DISCIPLINE,
        "noise sources may only be constructed in crates/dp or the engine's \
         check-before-noise debit path",
    ),
    (
        CRASH_SAFETY,
        "fs::rename in persistence code must live in a function that also \
         performs the temp-write + sync_all pattern",
    ),
    (
        PANIC_FREEDOM,
        "unwrap/expect/panic!/unreachable! are denied in non-test serve and \
         store code (a panic kills a worker or poisons a writer lock)",
    ),
    (
        MECHANISM_COUPLING,
        "every ReleaseKind variant needs a Mechanism declaring an accuracy \
         contract and an entry in the tests/accuracy_audit.rs exhaustive match",
    ),
    (
        BUDGET_FLOAT_EQ,
        "budget values (eps/delta/rho) must not be compared with float == or \
         != in accounting paths; use ranges or exact bit comparisons",
    ),
    (
        METRICS_TAINT,
        "weight- or noise-valued data must not flow into observability sinks \
         (metric names, label values, samples, span labels): everything the \
         plane exports is wire-visible and must be a function of public data",
    ),
];

/// All rule ids, for allow-directive validation.
pub fn rule_ids() -> Vec<&'static str> {
    RULES.iter().map(|(id, _)| *id).collect()
}

fn finding(rule: &'static str, file: &SourceFile, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: file.path_str(),
        line,
        message,
    }
}

/// Runs every per-file rule that covers `file`.
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let path = file.path_str();
    let mut out = Vec::new();
    if policy::panic_freedom_scope(&path) {
        out.extend(panic_freedom(file));
    }
    if policy::taint_forbidden_scope(&path) {
        out.extend(privacy_taint(file));
    }
    if policy::budget_discipline_scope(&path) {
        out.extend(budget_discipline(file));
    }
    if policy::crash_safety_scope(&path) {
        out.extend(crash_safety(file));
    }
    if policy::float_eq_scope(&path) {
        out.extend(budget_float_eq(file));
    }
    if policy::metrics_taint_scope(&path) {
        out.extend(metrics_taint(file));
    }
    out
}

/// Rule `panic-freedom`: `.unwrap()` / `.expect(...)` /
/// `panic!`-family macros in non-test serve/store code.
fn panic_freedom(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test(i) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        if (t.text == "unwrap" || t.text == "expect") && prev_dot && next_paren {
            out.push(finding(
                PANIC_FREEDOM,
                file,
                t.line,
                format!(
                    "`.{}(...)` in non-test serve/store code: a panic kills a \
                     worker or poisons a writer lock; return a typed error, \
                     recover, or justify with an allow",
                    t.text
                ),
            ));
        } else if matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && next_bang
        {
            out.push(finding(
                PANIC_FREEDOM,
                file,
                t.line,
                format!(
                    "`{}!` in non-test serve/store code: per-connection \
                     isolation depends on workers never panicking",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Rule `privacy-taint`: references that reach private weight state
/// inside read-path / wire-codec code.
fn privacy_taint(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test(i) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let tainted = t.text == "EdgeWeights"
            || t.text.contains("private_weights")
            || (prev_dot && (t.text == "weights" || t.text == "estimate_weights"));
        if tainted {
            out.push(finding(
                PRIVACY_TAINT,
                file,
                t.line,
                format!(
                    "`{}` reaches private weight state from a read-path / wire \
                     module: only dp, the engine, and the store write path may \
                     touch private weights — releases must flow through a \
                     debited noise mechanism before serving",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Noise-source type names whose associated-function use (`Type::...`)
/// counts as construction.
const NOISE_TYPES: &[&str] = &["RngNoise", "RecordingNoise", "Gaussian", "Laplace"];

/// Rule `budget-discipline`: noise construction outside crates/dp and
/// the engine debit path. `use` imports are not construction.
fn budget_discipline(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test(i) || file.in_use(i) {
            continue;
        }
        let next_path = toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
        let hit = (NOISE_TYPES.contains(&t.text.as_str()) && next_path) || t.text == "ZeroNoise";
        if hit {
            out.push(finding(
                BUDGET_DISCIPLINE,
                file,
                t.line,
                format!(
                    "`{}` noise source constructed outside crates/dp and the \
                     engine's debit path: every released statistic must pass \
                     through the Accountant's check-before-noise accounting",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Rule `crash-safety-commit`: any `rename(...)` call must sit in a
/// function that also syncs a temp file (`sync_all` + a tmp/temp
/// identifier), so the rename is the single atomic commit point.
fn crash_safety(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("rename") && toks.get(i + 1).is_some_and(|n| n.is_punct("(")))
            || file.in_test(i)
        {
            continue;
        }
        let Some(f) = file.enclosing_fn(i) else {
            out.push(finding(
                CRASH_SAFETY,
                file,
                t.line,
                "`rename(...)` outside any function: cannot verify the \
                 temp-write + sync_all commit pattern"
                    .to_string(),
            ));
            continue;
        };
        let body = &toks[f.body.0..f.body.1];
        let has_sync = body.iter().any(|t| t.is_ident("sync_all"));
        let has_temp = body.iter().any(|t| {
            t.kind == TokKind::Ident
                && (t.text.to_ascii_lowercase().contains("tmp")
                    || t.text.to_ascii_lowercase().contains("temp"))
        });
        if !(has_sync && has_temp) {
            out.push(finding(
                CRASH_SAFETY,
                file,
                t.line,
                format!(
                    "`rename(...)` in `{}` without the temp-write + sync_all \
                     pattern in the same function: a crash between write and \
                     rename could commit an unsynced or partial file (missing: \
                     {}{}{})",
                    f.name,
                    if has_sync { "" } else { "sync_all" },
                    if !has_sync && !has_temp { " and " } else { "" },
                    if has_temp { "" } else { "a tmp/temp file" },
                ),
            ));
        }
    }
    out
}

/// Identifier fragments that mark a comparison operand as a budget
/// value.
const BUDGET_FRAGMENTS: &[&str] = &["eps", "delta", "rho", "budget", "spend", "spent"];

/// Identifiers that mark an integer bookkeeping context, where a
/// `==`/`!=` near a budget-named field is fine (`spends.len() == 0`,
/// and `to_bits()` — the sanctioned exact form this rule points to).
const INTEGER_CONTEXT: &[&str] = &[
    "len",
    "is_empty",
    "count",
    "horizon",
    "epoch",
    "position",
    "items",
    "index",
    "capacity",
    "value_count",
    "num_nodes",
    "num_edges",
    "to_bits",
];

/// Rule `budget-float-eq`: `==` / `!=` on budget-typed floats in
/// accounting paths.
fn budget_float_eq(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || file.in_test(i) {
            continue;
        }
        // A non-float literal operand (integer, string, char) right next
        // to the operator makes this a non-float comparison: Rust will
        // not compare f64 against them (`n == 0`, `line == "budget …"`).
        // A digit preceded by `.` is a tuple-field access (`self.0`),
        // not a literal operand, so it does not disqualify.
        let non_float_literal = |j: usize| {
            toks.get(j).is_some_and(|t| {
                t.kind == TokKind::Literal
                    && !t.is_float_literal()
                    && !(j > 0 && toks[j - 1].is_punct("."))
            })
        };
        if non_float_literal(i.wrapping_sub(1)) || non_float_literal(i + 1) {
            continue;
        }
        let lo = i.saturating_sub(4);
        let hi = (i + 5).min(toks.len());
        let window: Vec<&Tok> = toks[lo..hi].iter().collect();
        let has_float = window.iter().any(|t| t.is_float_literal());
        let budget_ident = window.iter().find(|t| {
            t.kind == TokKind::Ident
                && BUDGET_FRAGMENTS
                    .iter()
                    .any(|f| t.text.to_ascii_lowercase().contains(f))
        });
        let integer_ctx = window
            .iter()
            .any(|t| t.kind == TokKind::Ident && INTEGER_CONTEXT.contains(&t.text.as_str()));
        let flagged = if has_float {
            true
        } else {
            budget_ident.is_some() && !integer_ctx
        };
        if flagged {
            let subject = budget_ident
                .map(|t| format!("`{}`", t.text))
                .unwrap_or_else(|| "a float literal".to_string());
            out.push(finding(
                BUDGET_FLOAT_EQ,
                file,
                t.line,
                format!(
                    "float `{}` comparison involving {subject} in an accounting \
                     path: accumulated budget floats drift, so exact equality \
                     silently mis-gates spends; compare with `<=`/`>=` ranges \
                     or exact `to_bits()` for persisted-state cross-checks",
                    t.text
                ),
            ));
        }
    }
    out
}

/// The observability plane's data sinks: method and constructor names
/// through which a value becomes a metric sample, a metric name, a
/// label value, or a span label — all of which the `metrics` / `trace`
/// verbs export on the wire.
const METRIC_SINKS: &[&str] = &[
    "observe",
    "record",
    "inc",
    "inc_by",
    "set_value",
    "counter",
    "counter_with",
    "gauge",
    "gauge_with",
    "histogram",
    "histogram_with",
    "enter",
    "phase",
];

/// Identifiers that carry private weight state or noise internals. A
/// string literal is always fine (it is a compile-time constant, not
/// data); these are the *runtime values* that must never be sampled.
fn tainted_metric_ident(text: &str) -> bool {
    if text == "EdgeWeights" {
        return true;
    }
    let lower = text.to_ascii_lowercase();
    lower.contains("weight")
        || lower.contains("noise")
        || lower.contains("private")
        || lower == "l1_shift"
        || lower == "changed_edges"
}

/// Rule `metrics-taint`: a tainted identifier (private weights, noise
/// values, weight-derived aggregates) used as an argument to an
/// observability sink. Draw *counts* are public; drawn *values* and
/// weight magnitudes are not, and neither are identifiers that merely
/// smell of them — rename the variable or justify with an allow.
fn metrics_taint(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !METRIC_SINKS.contains(&t.text.as_str()) || file.in_test(i) {
            continue;
        }
        // A sink is a *call*: `.observe(...)` / `Span::enter(...)`. Bare
        // idents (field names, definitions) are not data flow.
        let qualified = i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::"));
        if !qualified || !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            let a = &toks[j];
            if a.is_punct("(") {
                depth += 1;
            } else if a.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.kind == TokKind::Ident && tainted_metric_ident(&a.text) {
                out.push(finding(
                    METRICS_TAINT,
                    file,
                    a.line,
                    format!(
                        "`{}` flows into observability sink `{}(...)`: metric \
                         samples, names, labels, and span labels are exported \
                         by the `metrics`/`trace` verbs, so they must be \
                         functions of public data (counts, timings, epochs) — \
                         never of private weights or drawn noise",
                        a.text, t.text
                    ),
                ));
            }
            j += 1;
        }
    }
    out
}

/// Rule `mechanism-coupling`: cross-file check tying every
/// `ReleaseKind` variant to a named `Mechanism` impl that declares an
/// accuracy contract, and to the accuracy audit's exhaustive match.
pub fn mechanism_coupling(files: &[SourceFile]) -> Vec<Diagnostic> {
    let find = |suffix: &str| files.iter().find(|f| f.path_str().ends_with(suffix));
    let (Some(release), Some(mech), Some(audit)) = (
        find(policy::RELEASE_KIND_FILE),
        find(policy::MECHANISM_FILE),
        find(policy::AUDIT_FILE),
    ) else {
        // A partial file set (single-file invocation): nothing to couple.
        return Vec::new();
    };

    let variants = enum_variants(release, "ReleaseKind");
    let wire_names = as_str_names(release);
    let audited = path_refs(audit, "ReleaseKind");
    let impls = mechanism_impls(mech);

    let mut out = Vec::new();
    for (variant, line) in &variants {
        if !audited.contains(variant) {
            out.push(finding(
                MECHANISM_COUPLING,
                release,
                *line,
                format!(
                    "ReleaseKind::{variant} does not appear in {}: a mechanism \
                     cannot ship without an entry in the exhaustive accuracy \
                     audit match",
                    policy::AUDIT_FILE
                ),
            ));
        }
        let Some(name) = wire_names.get(variant) else {
            out.push(finding(
                MECHANISM_COUPLING,
                release,
                *line,
                format!(
                    "ReleaseKind::{variant} has no `as_str` wire name arm; the \
                     variant cannot be coupled to a mechanism"
                ),
            ));
            continue;
        };
        match impls.iter().find(|m| m.name.as_deref() == Some(name)) {
            None => out.push(finding(
                MECHANISM_COUPLING,
                release,
                *line,
                format!(
                    "no `impl Mechanism` in {} declares `name()` = {name:?} for \
                     ReleaseKind::{variant}",
                    policy::MECHANISM_FILE
                ),
            )),
            Some(m) if !m.has_contract => out.push(finding(
                MECHANISM_COUPLING,
                mech,
                m.line,
                format!(
                    "mechanism {name:?} (ReleaseKind::{variant}) declares no \
                     `accuracy_contract` referencing an AccuracyContract / \
                     Theorem: every mechanism must state what it guarantees"
                ),
            )),
            Some(_) => {}
        }
    }
    out
}

/// The variants (name, line) of `enum <name>` in `file`.
fn enum_variants(file: &SourceFile, enum_name: &str) -> Vec<(String, u32)> {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(enum_name) {
            // Scan to the opening brace (skipping generics).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                j += 1;
            }
            let mut depth = 0usize;
            let mut variants = Vec::new();
            while j < toks.len() {
                let t = &toks[j];
                // Skip attributes (`#[...]`): their idents are not
                // variants even at depth 1.
                if t.is_punct("#") && toks.get(j + 1).is_some_and(|n| n.is_punct("[")) {
                    let mut bracket = 0usize;
                    j += 1;
                    while j < toks.len() {
                        if toks[j].is_punct("[") {
                            bracket += 1;
                        } else if toks[j].is_punct("]") {
                            bracket -= 1;
                            if bracket == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    j += 1;
                    continue;
                }
                if t.is_punct("{") || t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1
                    && t.kind == TokKind::Ident
                    && toks
                        .get(j + 1)
                        .is_some_and(|n| n.is_punct(",") || n.is_punct("}") || n.is_punct("("))
                {
                    variants.push((t.text.clone(), t.line));
                    // A payloaded variant's parens are handled by the
                    // depth tracking above.
                }
                j += 1;
            }
            return variants;
        }
        i += 1;
    }
    Vec::new()
}

/// Map variant → wire-name string from `ReleaseKind::V => "name"` arms.
fn as_str_names(file: &SourceFile) -> std::collections::BTreeMap<String, String> {
    let toks = &file.tokens;
    let mut map = std::collections::BTreeMap::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("ReleaseKind")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.is_punct("=>"))
            && toks.get(i + 4).is_some_and(Tok::is_string)
        {
            if let Some(v) = toks[i + 4].string_value() {
                map.entry(toks[i + 2].text.clone())
                    .or_insert_with(|| v.to_string());
            }
        }
    }
    map
}

/// Set of `X` identifiers appearing as `<root>::X` in `file`.
fn path_refs(file: &SourceFile, root: &str) -> std::collections::BTreeSet<String> {
    let toks = &file.tokens;
    let mut set = std::collections::BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].is_ident(root)
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            set.insert(toks[i + 2].text.clone());
        }
    }
    set
}

/// One `impl Mechanism for T` block's declared wire name and whether it
/// states an accuracy contract.
struct MechanismImpl {
    name: Option<String>,
    has_contract: bool,
    line: u32,
}

/// Extracts every `impl Mechanism for T { ... }` block in `file`.
fn mechanism_impls(file: &SourceFile) -> Vec<MechanismImpl> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Within the next few tokens (generics allowed): `Mechanism for`.
        let window_end = (i + 12).min(toks.len());
        let is_mech = (i..window_end).any(|j| {
            toks[j].is_ident("Mechanism") && toks.get(j + 1).is_some_and(|t| t.is_ident("for"))
        });
        if !is_mech {
            i += 1;
            continue;
        }
        let mut j = i;
        while j < toks.len() && !toks[j].is_punct("{") {
            j += 1;
        }
        let mut depth = 0usize;
        let mut end = toks.len();
        let mut k = j;
        while k < toks.len() {
            if toks[k].is_punct("{") {
                depth += 1;
            } else if toks[k].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
            k += 1;
        }
        let body = &toks[j..end];
        let has_contract = body.iter().any(|t| t.is_ident("accuracy_contract"))
            && body
                .iter()
                .any(|t| t.is_ident("AccuracyContract") || t.is_ident("Theorem"));
        // `fn name` ... first string literal in its body.
        let mut name = None;
        for b in 0..body.len() {
            if body[b].is_ident("fn") && body.get(b + 1).is_some_and(|t| t.is_ident("name")) {
                name = body[b..]
                    .iter()
                    .take(24)
                    .find_map(|t| t.string_value().map(str::to_string));
                break;
            }
        }
        out.push(MechanismImpl {
            name,
            has_contract,
            line: toks[i].line,
        });
        i = end;
    }
    out
}
