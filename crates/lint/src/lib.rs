//! `privpath-lint`: a workspace privacy / crash-safety lint pass.
//!
//! Sealfon's model is only private if every released statistic passes
//! through a noise mechanism whose cost is debited **before**
//! publication. The codebase enforces that invariant by convention —
//! engine write path, `Accountant::check`-before-noise, two-phase store
//! commits — and by runtime tests. This crate makes the conventions
//! machine-checked: a self-contained static pass (hand-rolled lexer +
//! lightweight item model, no `syn`, no registry dependencies) that
//! walks the workspace and reports typed, `file:line` diagnostics.
//!
//! Rules (see [`rules::RULES`]):
//!
//! 1. `privacy-taint` — private weights never referenced from serve /
//!    wire / snapshot read paths.
//! 2. `budget-discipline` — noise sources constructed only in
//!    `crates/dp` and the engine's debit path.
//! 3. `crash-safety-commit` — every `fs::rename` lives in a function
//!    with the temp-write + `sync_all` pattern.
//! 4. `panic-freedom` — no `unwrap`/`expect`/`panic!`-family in
//!    non-test serve/store code.
//! 5. `mechanism-coupling` — every `ReleaseKind` variant has a named
//!    mechanism with an accuracy contract and an accuracy-audit entry.
//! 6. `budget-float-eq` — no float `==`/`!=` on budget values in
//!    accounting paths.
//! 7. `metrics-taint` — weight/noise-valued identifiers never flow into
//!    observability sinks (the `metrics`/`trace` verbs export them).
//!
//! Suppressions use the in-source grammar
//! `// privlint: allow(<rule>, "<justification>")` (see [`allow`]);
//! unjustified, unknown-rule, and unused directives are findings.

pub mod allow;
pub mod lexer;
pub mod model;
pub mod policy;
pub mod rules;

use model::SourceFile;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// One finding, anchored to a workspace-relative `path:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (or `"allowlist"` for directive problems).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "error[privlint::{}]: {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// Lints a modeled file set: per-file rules, the cross-file coupling
/// rule, then allow-directive application per file. Returns findings
/// sorted by `(path, line, rule)`.
pub fn lint_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let known = rules::rule_ids();
    let mut by_path: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for f in files {
        by_path.entry(f.path_str()).or_default();
    }
    for d in files
        .iter()
        .flat_map(rules::check_file)
        .chain(rules::mechanism_coupling(files))
    {
        by_path.entry(d.path.clone()).or_default().push(d);
    }
    let mut out = Vec::new();
    for f in files {
        let path = f.path_str();
        let findings = by_path.remove(&path).unwrap_or_default();
        let (directives, mut issues) = allow::parse_directives(f, &known);
        let (kept, unused) = allow::apply_directives(&path, &directives, findings);
        out.extend(kept);
        out.append(&mut issues);
        out.extend(unused);
    }
    // Findings attributed to paths not in the file set (cannot happen
    // today, but never drop a diagnostic silently).
    out.extend(by_path.into_values().flatten());
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out
}

/// Lints in-memory `(path, source)` pairs — the fixture-test entry
/// point. Paths decide rule scoping exactly as on disk.
pub fn lint_sources(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, s)| SourceFile::parse(*p, s))
        .collect();
    lint_files(&files)
}

/// The directories walked under the workspace root.
const WALK_ROOTS: &[&str] = &["src", "crates", "tests", "examples"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// Collects and models every workspace `.rs` file under `root`.
///
/// # Errors
/// Propagates filesystem errors other than a missing walk root.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for sub in WALK_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let source = std::fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        files.push(SourceFile::parse(rel, &source));
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
/// As [`collect_workspace`].
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(lint_files(&collect_workspace(root)?))
}

/// Locates the workspace root from `start`: the nearest ancestor
/// containing both `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}
