//! A hand-rolled Rust lexer: just enough tokenization for the lint
//! rules — identifiers, literals, multi-character operators, and
//! comments with line numbers — with strings, char literals, lifetimes,
//! and nested block comments handled correctly so rule pattern matching
//! never fires inside text that is not code.
//!
//! No `syn`: this workspace builds with no registry access, so the
//! linter follows the same vendored-stub philosophy as `rand` and
//! `proptest` — a small, self-contained model of exactly what the rules
//! need.

/// What a token is, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `weights`, `ReleaseKind`, ...).
    Ident,
    /// Any literal: string (text includes the quotes), char, number.
    Literal,
    /// Punctuation; multi-character operators (`::`, `==`, `!=`, `->`,
    /// ...) are single tokens.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind tag.
    pub kind: TokKind,
    /// The token text exactly as written.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// Whether this token is a string literal (includes raw/byte forms).
    pub fn is_string(&self) -> bool {
        self.kind == TokKind::Literal && self.text.contains('"')
    }

    /// The contents of a string literal, without quotes or raw markers.
    /// Escape sequences are left as written (the rules only compare
    /// names, which never contain escapes).
    pub fn string_value(&self) -> Option<&str> {
        if !self.is_string() {
            return None;
        }
        let start = self.text.find('"')?;
        let end = self.text.rfind('"')?;
        if end > start {
            Some(&self.text[start + 1..end])
        } else {
            None
        }
    }

    /// Whether this token is a floating-point literal (`0.0`, `1e-9`,
    /// `2.5f64`).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Literal {
            return false;
        }
        let b = self.text.as_bytes();
        if b.is_empty() || !b[0].is_ascii_digit() {
            return false;
        }
        self.text.contains('.') || self.text.contains('e') || self.text.contains('E')
    }
}

/// One comment with its position and whether code precedes it on the
/// same line (a *trailing* comment).
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// Whether a token was already emitted on this line.
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All code tokens, in order.
    pub tokens: Vec<Tok>,
    /// All comments (line and block, including doc comments), in order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators lexed as single tokens, longest first.
const OPERATORS: &[&str] = &[
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=", "/=",
];

/// Tokenizes `source`. The lexer is total: bytes it does not understand
/// become single-character punctuation, so a file that does not parse as
/// Rust still yields a best-effort token stream (rules then do no harm).
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut last_token_line: u32 = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..i].to_string(),
                    trailing: last_token_line == line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: source[start..end].to_string(),
                    trailing: last_token_line == start_line,
                });
            }
            b'"' => {
                let (tok, ni, nl) = lex_string(source, i, line);
                last_token_line = tok.line;
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let (tok, ni, nl) = lex_raw_or_byte(source, i, line);
                last_token_line = tok.line;
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
                if let Some((tok, ni)) = lex_char_literal(source, i, line) {
                    last_token_line = tok.line;
                    out.tokens.push(tok);
                    i = ni;
                } else {
                    // Lifetime: skip the quote and the identifier run.
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                }
            }
            _ if c.is_ascii_digit() => {
                let (tok, ni) = lex_number(source, i, line);
                last_token_line = tok.line;
                out.tokens.push(tok);
                i = ni;
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                last_token_line = line;
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let rest = &source[i..];
                let op = OPERATORS.iter().find(|op| rest.starts_with(**op));
                let text = match op {
                    Some(op) => (*op).to_string(),
                    None => {
                        let ch_len = source[i..].chars().next().map_or(1, char::len_utf8);
                        source[i..i + ch_len].to_string()
                    }
                };
                i += text.len();
                last_token_line = line;
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether position `i` starts `r"`, `r#"`, `b"`, `br"`, or `br#"`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        return j > i; // `b"..."` (plain `"` is handled by the caller)
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Lexes a plain or byte string starting at the opening quote (or `b"`).
fn lex_string(source: &str, start: usize, mut line: u32) -> (Tok, usize, u32) {
    let bytes = source.as_bytes();
    let start_line = line;
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            // An escaped newline (the `\` line-continuation) still ends
            // a source line — losing it would shift every later line.
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    line += 1;
                }
                i += 2;
            }
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (
        Tok {
            kind: TokKind::Literal,
            text: source[start..i.min(source.len())].to_string(),
            line: start_line,
        },
        i.min(source.len()),
        line,
    )
}

/// Lexes `r"..."`, `r#"..."#`, `br#"..."#` starting at `r`/`b`.
fn lex_raw_or_byte(source: &str, start: usize, mut line: u32) -> (Tok, usize, u32) {
    let bytes = source.as_bytes();
    let start_line = line;
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        i += 1;
        let mut hashes = 0usize;
        while i < bytes.len() && bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'"' {
            i += 1;
            // Scan to `"` followed by `hashes` hash marks.
            'outer: while i < bytes.len() {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                    continue;
                }
                if bytes[i] == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while seen < hashes && j < bytes.len() && bytes[j] == b'#' {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        i = j;
                        break 'outer;
                    }
                }
                i += 1;
            }
            return (
                Tok {
                    kind: TokKind::Literal,
                    text: source[start..i].to_string(),
                    line: start_line,
                },
                i,
                line,
            );
        }
    }
    // Not actually a raw string (e.g. `b"` handled by lex_string, or a
    // plain identifier starting with r/b): fall back to string lexing.
    lex_string(source, start, start_line)
}

/// Lexes a char literal if the quote at `start` really opens one;
/// returns `None` for a lifetime.
fn lex_char_literal(source: &str, start: usize, line: u32) -> Option<(Tok, usize)> {
    let bytes = source.as_bytes();
    let mut i = start + 1;
    if i >= bytes.len() {
        return None;
    }
    if bytes[i] == b'\\' {
        // Escaped char: skip the backslash and the escape body up to the
        // closing quote.
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'\'' {
            return Some((
                Tok {
                    kind: TokKind::Literal,
                    text: source[start..=i].to_string(),
                    line,
                },
                i + 1,
            ));
        }
        return None;
    }
    if is_ident_byte(bytes[i]) {
        // `'a'` is a char only if the ident run is one char long and a
        // quote follows; otherwise it is a lifetime.
        let mut j = i;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'\'' && j == i + 1 {
            return Some((
                Tok {
                    kind: TokKind::Literal,
                    text: source[start..=j].to_string(),
                    line,
                },
                j + 1,
            ));
        }
        return None;
    }
    // Punctuation char literal like `'('`.
    let ch_len = source[i..].chars().next().map_or(1, char::len_utf8);
    let j = i + ch_len;
    if j < bytes.len() && bytes[j] == b'\'' {
        return Some((
            Tok {
                kind: TokKind::Literal,
                text: source[start..=j].to_string(),
                line,
            },
            j + 1,
        ));
    }
    None
}

/// Lexes a numeric literal (integer or float, with suffix).
fn lex_number(source: &str, start: usize, line: u32) -> (Tok, usize) {
    let bytes = source.as_bytes();
    let mut i = start;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    // Fraction: only when `.` is followed by a digit (so `0..1` and
    // `self.0.abs()` lex as integers plus punctuation).
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // Signed exponent (`1e-9`): the alphanumeric runs above already ate
    // unsigned exponents.
    if i < bytes.len()
        && (bytes[i] == b'+' || bytes[i] == b'-')
        && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
        && source[start..i]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit())
        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
    {
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
    }
    (
        Tok {
            kind: TokKind::Literal,
            text: source[start..i].to_string(),
            line,
        },
        i,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r#"
            // weights() in a comment
            let s = "weights() in a string";
            /* EdgeWeights in /* nested */ block */
            let c = 'w';
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"weights".to_string()));
        assert!(!ids.contains(&"EdgeWeights".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::Literal));
        // The following char literal must not swallow the rest.
        let src2 = "let q = 'a'; let w = weights();";
        assert!(idents(src2).contains(&"weights".to_string()));
    }

    #[test]
    fn raw_strings_respect_hashes() {
        let src = r##"let s = r#"has "quotes" and weights()"#; let x = sync_all;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"weights".to_string()));
        assert!(ids.contains(&"sync_all".to_string()));
    }

    #[test]
    fn float_ranges_lex_separately() {
        let lexed = lex("if !(0.0..1.0).contains(&gamma) || gamma == 0.0 {}");
        let floats: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_float_literal())
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, vec!["0.0", "1.0", "0.0"]);
        assert!(lexed.tokens.iter().any(|t| t.is_punct("==")));
        assert!(lexed.tokens.iter().any(|t| t.is_punct("..")));
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        let lexed = lex("self.0.max(1) != n.len()");
        assert!(lexed.tokens.iter().all(|t| !t.is_float_literal()));
        assert!(lexed.tokens.iter().any(|t| t.is_punct("!=")));
    }

    #[test]
    fn trailing_comment_flagged() {
        let lexed = lex("let x = 1; // privlint: allow(rule, \"why\")\n// standalone\n");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_count() {
        let src = "let s = \"first \\\n second\";\nlet weights_line = 3;\n";
        let lexed = lex(src);
        let t = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("weights_line"))
            .unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn string_value_strips_quotes() {
        let lexed = lex(r#"name("shortest-path")"#);
        let s = lexed.tokens.iter().find(|t| t.is_string()).unwrap();
        assert_eq!(s.string_value(), Some("shortest-path"));
    }
}
