//! A lightweight item model over the token stream: which tokens are
//! test-only (`#[cfg(test)]` / `#[test]` items), which function body a
//! token lives in, and which tokens belong to `use` declarations. This
//! is the whole "call-graph" the rules need: file-scoped, line-anchored,
//! and cheap to rebuild on every run.

use crate::lexer::{lex, Comment, Tok, TokKind};
use std::path::PathBuf;

/// One `fn` item: its name and the token span of its body.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token range (inclusive start, exclusive end) of the body,
    /// including the braces. Empty for bodyless trait declarations.
    pub body: (usize, usize),
}

/// One lexed-and-modeled source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/store/src/store.rs`).
    pub path: PathBuf,
    /// The code tokens.
    pub tokens: Vec<Tok>,
    /// The comments (allow directives live here).
    pub comments: Vec<Comment>,
    /// Token spans under `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Token spans of `use ...;` declarations.
    pub use_spans: Vec<(usize, usize)>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// Lexes and models `source` under `path`.
    pub fn parse(path: impl Into<PathBuf>, source: &str) -> Self {
        let lexed = lex(source);
        let test_spans = find_test_spans(&lexed.tokens);
        let use_spans = find_use_spans(&lexed.tokens);
        let fns = find_fns(&lexed.tokens);
        SourceFile {
            path: path.into(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_spans,
            use_spans,
            fns,
        }
    }

    /// Whether token `idx` is inside a test-only item.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// Whether token `idx` is inside a `use` declaration.
    pub fn in_use(&self, idx: usize) -> bool {
        self.use_spans.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// The innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| idx >= f.body.0 && idx < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// The file's path as a forward-slash string for policy matching.
    pub fn path_str(&self) -> String {
        self.path
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/")
    }
}

/// Scans forward from an opening brace index to just past its matching
/// close. Returns the exclusive end index (tokens.len() if unbalanced).
fn match_braces(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct("{") {
            depth += 1;
        } else if tokens[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Scans an attribute starting at `#` (index `i`); returns the exclusive
/// end index past the closing `]`, or `None` if it is not an attribute.
fn attr_end(tokens: &[Tok], i: usize) -> Option<usize> {
    if !tokens[i].is_punct("#") {
        return None;
    }
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].is_punct("!") {
        j += 1;
    }
    if j >= tokens.len() || !tokens[j].is_punct("[") {
        return None;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    Some(tokens.len())
}

/// Whether the attribute tokens in `[i, end)` gate on `test` builds:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`, and friends.
/// `#[cfg(not(test))]` is production code, not test code.
fn attr_is_test(tokens: &[Tok], i: usize, end: usize) -> bool {
    let idents: Vec<&str> = tokens[i..end]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// Finds token spans of items annotated `#[cfg(test)]` / `#[test]`.
/// The span runs from the attribute through the item's closing `}` (or
/// `;` for bodyless items).
fn find_test_spans(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let Some(end) = attr_end(tokens, i) else {
            i += 1;
            continue;
        };
        if !attr_is_test(tokens, i, end) {
            i = end;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = end;
        while j < tokens.len() {
            match attr_end(tokens, j) {
                Some(e) => j = e,
                None => break,
            }
        }
        // The item ends at the first `;` before any brace, or at the
        // matching close of its first `{`.
        let mut k = j;
        let item_end = loop {
            if k >= tokens.len() {
                break tokens.len();
            }
            if tokens[k].is_punct(";") {
                break k + 1;
            }
            if tokens[k].is_punct("{") {
                break match_braces(tokens, k);
            }
            k += 1;
        };
        spans.push((i, item_end));
        i = item_end;
    }
    spans
}

/// Finds token spans of `use ...;` declarations (top-level or nested).
fn find_use_spans(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("use") {
            let start = i;
            while i < tokens.len() && !tokens[i].is_punct(";") {
                i += 1;
            }
            spans.push((start, (i + 1).min(tokens.len())));
        }
        i += 1;
    }
    spans
}

/// Finds every `fn` item with its body span. Trait method declarations
/// without bodies get an empty span.
fn find_fns(tokens: &[Tok]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = tokens[i + 1].text.clone();
            // Find the body `{` (or a `;` first: a bodyless declaration).
            // Braces cannot appear in a signature before the body except
            // inside a const-generic block, which this workspace avoids.
            let mut j = i + 2;
            let body = loop {
                if j >= tokens.len() || tokens[j].is_punct(";") {
                    break (i, i);
                }
                if tokens[j].is_punct("{") {
                    break (j, match_braces(tokens, j));
                }
                j += 1;
            };
            fns.push(FnItem {
                name,
                start: i,
                body,
            });
            i += 2;
            continue;
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_span_covers_contents() {
        let src = r#"
            pub fn live() { helper(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { value.unwrap(); }
            }
        "#;
        let f = SourceFile::parse("x.rs", src);
        let unwrap_idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        let helper_idx = f.tokens.iter().position(|t| t.is_ident("helper")).unwrap();
        assert!(f.in_test(unwrap_idx));
        assert!(!f.in_test(helper_idx));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))] fn prod() { x.unwrap(); }";
        let f = SourceFile::parse("x.rs", src);
        let idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!f.in_test(idx));
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let src = "fn outer() { fn inner() { target(); } }";
        let f = SourceFile::parse("x.rs", src);
        let idx = f.tokens.iter().position(|t| t.is_ident("target")).unwrap();
        assert_eq!(f.enclosing_fn(idx).unwrap().name, "inner");
    }

    #[test]
    fn use_spans_cover_imports() {
        let src = "use privpath_dp::{RngNoise, ZeroNoise};\nfn f() { RngNoise::new(r); }";
        let f = SourceFile::parse("x.rs", src);
        let first = f
            .tokens
            .iter()
            .position(|t| t.is_ident("ZeroNoise"))
            .unwrap();
        let call = f
            .tokens
            .iter()
            .rposition(|t| t.is_ident("RngNoise"))
            .unwrap();
        assert!(f.in_use(first));
        assert!(!f.in_use(call));
    }
}
