//! Which workspace paths each rule covers. Paths are workspace-relative
//! with forward slashes (`crates/store/src/store.rs`).
//!
//! The scoping encodes the architecture the rules defend:
//!
//! * **Write path** (may touch private weights, may construct noise
//!   after debiting): `crates/dp`, the engine's `engine.rs` /
//!   `mechanism.rs`, and the store's writer modules.
//! * **Read path / wire** (must never see private state, must never
//!   panic): all of `crates/serve`, the store's snapshot cache, the
//!   engine's `QueryService`.
//! * **Persistence** (must commit via temp-write + fsync + rename):
//!   anywhere `rename` appears in production code.
//!
//! `crates/bench`, `examples/`, and test code run mechanisms on
//! synthetic public data and are exempt from the noise-construction and
//! panic rules; the audit file in `tests/` is read by the coupling rule.

/// File defining `enum ReleaseKind` and its wire names.
pub const RELEASE_KIND_FILE: &str = "crates/engine/src/release.rs";
/// File holding every `impl Mechanism` with its declared contract.
pub const MECHANISM_FILE: &str = "crates/engine/src/mechanism.rs";
/// The exhaustive accuracy-audit suite every mechanism must appear in.
pub const AUDIT_FILE: &str = "tests/accuracy_audit.rs";

/// Production source: workspace crates' `src/` trees plus the root
/// crate's `src/`. Benches, examples, integration tests, vendored
/// stubs, and lint fixtures are not production code.
pub fn is_production(path: &str) -> bool {
    if path.starts_with("vendor/") || path.contains("/fixtures/") {
        return false;
    }
    if path.starts_with("src/") {
        return true;
    }
    path.starts_with("crates/") && path.contains("/src/") && !path.starts_with("crates/bench/")
}

/// Rule `panic-freedom`: non-test serve, store, geo, and graph-algorithm
/// sources (the geo crate sits on the ingest and read paths: a malformed
/// DIMACS file or an out-of-range coordinate must surface as a typed
/// error, never a panic in the serving process; the search algorithms in
/// `crates/graph/src/algo/` run inside every query and release path, so
/// an `.expect` there is a panic in the serving process too).
pub fn panic_freedom_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
        || path.starts_with("crates/store/src/")
        || path.starts_with("crates/geo/src/")
        || path.starts_with("crates/graph/src/algo/")
}

/// Rule `privacy-taint`: the read-path / wire modules that must never
/// reference private weight state.
pub fn taint_forbidden_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
        || path == "crates/store/src/cache.rs"
        || path == "crates/engine/src/service.rs"
}

/// Rule `budget-discipline`: production code outside crates/dp and the
/// engine's debit path (`engine.rs` holds the check-before-noise
/// release paths, `mechanism.rs` the trait's default `release`).
pub fn budget_discipline_scope(path: &str) -> bool {
    is_production(path)
        && !path.starts_with("crates/dp/src/")
        && !path.starts_with("crates/lint/src/")
        && path != "crates/engine/src/engine.rs"
        && path != MECHANISM_FILE
}

/// Rule `crash-safety-commit`: all production code (any `rename` is a
/// commit point).
pub fn crash_safety_scope(path: &str) -> bool {
    is_production(path)
}

/// Rule `metrics-taint`: every production call site can feed the
/// observability plane, and everything the plane holds is exported by
/// the `metrics` / `trace` wire verbs — so the whole production tree is
/// in scope.
pub fn metrics_taint_scope(path: &str) -> bool {
    is_production(path)
}

/// Rule `budget-float-eq`: the accounting paths — dp, engine, store.
pub fn float_eq_scope(path: &str) -> bool {
    path.starts_with("crates/dp/src/")
        || path.starts_with("crates/engine/src/")
        || path.starts_with("crates/store/src/")
}
