// Fixture: the sanctioned comparisons — ranges for accumulated spends,
// exact bits for persisted-state cross-checks, integers for counters.
pub fn check(spent_eps: f64, budget_eps: f64, persisted_delta: f64, delta: f64, n: u64) -> bool {
    spent_eps <= budget_eps && persisted_delta.to_bits() == delta.to_bits() && n == 0
}
