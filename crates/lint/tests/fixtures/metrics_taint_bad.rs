//! Failing fixture for `metrics-taint`: a weight-valued gauge. The
//! total weight mass of the private vector is exactly the kind of
//! aggregate Sealfon's model protects — exporting it as a metric
//! sample leaks it on the wire.

use privpath_graph::EdgeWeights;
use privpath_obs::MetricRegistry;

pub fn export_weight_mass(weights: &EdgeWeights) {
    let gauge = MetricRegistry::global().gauge("store_total_weight_mass");
    gauge.set_value(weights.l1_norm());
}
