// Fixture: the audit only exercises one of the two variants.
fn audit(kind: ReleaseKind) -> f64 {
    match kind {
        ReleaseKind::TreeDistance => audit_tree_distance(),
        _ => 0.0,
    }
}
