// Fixture: a serve-crate handler that only touches released state —
// the snapshot's query service — and never the private weights.
pub fn handle_distance(snapshot: &NamespaceSnapshot, s: NodeId, t: NodeId) -> Option<f64> {
    snapshot.service().distance(s, t).ok()
}
