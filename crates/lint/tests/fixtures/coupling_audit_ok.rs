// Fixture: the audit's exhaustive match covers every variant.
fn audit(kind: ReleaseKind) -> f64 {
    match kind {
        ReleaseKind::TreeDistance => audit_tree_distance(),
        ReleaseKind::ShortestPath => audit_shortest_path(),
    }
}
