// Fixture: the shortest-path mechanism forgot to declare what it
// guarantees.
impl Mechanism for TreeDistanceMechanism {
    fn name(&self) -> &'static str {
        "tree-distance"
    }
    fn accuracy_contract(&self, n: usize, m: usize) -> AccuracyContract {
        AccuracyContract::theorem(Theorem::Four, n, m)
    }
}

impl Mechanism for ShortestPathMechanism {
    fn name(&self) -> &'static str {
        "shortest-path"
    }
}
