//! Passing fixture for `metrics-taint`: counts, timings, and epochs
//! are public data — exporting them is the plane's whole job.

use privpath_obs::MetricRegistry;

pub fn record_request(verb: &'static str, seconds: f64, epoch: u64) {
    let reg = MetricRegistry::global();
    reg.counter_with("serve_requests_total", &[("verb", verb)]).inc();
    reg.histogram("serve_request_seconds").observe(seconds);
    reg.gauge("store_epoch").set_value(epoch as f64);
    let mut span = privpath_obs::Span::enter(verb);
    span.phase("parse");
}
