// Fixture: the full crash-safe commit — temp file, fsync, then the
// rename as the single atomic commit point.
pub fn atomic_save(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, path)
}
