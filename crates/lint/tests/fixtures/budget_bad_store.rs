// Fixture: noise construction in a store module with no budget
// pre-check and no justification.
pub fn leak_release(rng: &mut StdRng) -> Vec<f64> {
    let mut noise = RngNoise::new(rng);
    noise.laplace_vec(1.0, 8)
}
