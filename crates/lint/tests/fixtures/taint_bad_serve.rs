// Fixture: a serve-crate handler that reads private weight state.
// The taint rule must flag both the `EdgeWeights` type reference and
// the `.weights()` accessor call.
pub fn handle_debug_dump(engine: &ReleaseEngine) -> Vec<f64> {
    let private: &EdgeWeights = engine.weights();
    private.as_slice().to_vec()
}
