// Fixture: both mechanisms declare their wire name and an accuracy
// contract tied to a paper theorem.
impl Mechanism for TreeDistanceMechanism {
    fn name(&self) -> &'static str {
        "tree-distance"
    }
    fn accuracy_contract(&self, n: usize, m: usize) -> AccuracyContract {
        AccuracyContract::theorem(Theorem::Four, n, m)
    }
}

impl Mechanism for ShortestPathMechanism {
    fn name(&self) -> &'static str {
        "shortest-path"
    }
    fn accuracy_contract(&self, n: usize, m: usize) -> AccuracyContract {
        AccuracyContract::theorem(Theorem::One, n, m)
    }
}
