// Fixture: panics in non-test serve code — each of the four forms the
// rule denies.
pub fn handle(req: &[u8]) -> Response {
    let header = parse_header(req).unwrap();
    let body = parse_body(req).expect("body present");
    match header.kind {
        Kind::Query => respond(body),
        Kind::Admin => panic!("admin not wired"),
        _ => unreachable!("exhaustive"),
    }
}
