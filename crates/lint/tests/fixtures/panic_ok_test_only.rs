// Fixture: unwraps confined to the test module are fine — the rule
// only covers production serve/store code.
pub fn handle(req: &[u8]) -> Option<Response> {
    parse_header(req).map(respond)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses() {
        let r = handle(b"ping").unwrap();
        assert_eq!(r.code(), 0);
    }
}
