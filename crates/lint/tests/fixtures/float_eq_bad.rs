// Fixture: exact float equality on budget values in an accounting path.
pub fn is_exhausted(spent_eps: f64, budget_eps: f64) -> bool {
    spent_eps == budget_eps
}
