// Fixture: a rename used as a commit point without the temp-write +
// sync_all pattern — a crash can commit an unsynced or partial file.
pub fn save(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let staging = path.with_extension("new");
    fs::write(&staging, bytes)?;
    fs::rename(&staging, path)
}
