// Fixture: the same construction, justified with an allow directive.
pub fn staged_release(rng: &mut StdRng) -> Vec<f64> {
    // privlint: allow(budget-discipline, "cost pre-checked by the caller before staging")
    let mut noise = RngNoise::new(rng);
    noise.laplace_vec(1.0, 8)
}
