// Fixture: a two-variant ReleaseKind with wire names.
pub enum ReleaseKind {
    TreeDistance,
    ShortestPath,
}

impl ReleaseKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            ReleaseKind::TreeDistance => "tree-distance",
            ReleaseKind::ShortestPath => "shortest-path",
        }
    }
}
