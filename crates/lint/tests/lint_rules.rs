//! Fixture tests: every rule gets a failing and a passing fixture, the
//! allowlist grammar gets exercised end to end, and the workspace
//! itself must lint clean (the self-application gate).

use privpath_lint::{lint_sources, lint_workspace, Diagnostic};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn rules_fired(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---- privacy-taint ----

/// The acceptance fixture: moving a private-weights read into
/// `crates/serve` produces a diagnostic.
#[test]
fn taint_weights_read_in_serve_is_flagged() {
    let src = fixture("taint_bad_serve.rs");
    let diags = lint_sources(&[("crates/serve/src/handler.rs", &src)]);
    let fired = rules_fired(&diags);
    assert!(
        fired.iter().filter(|r| **r == "privacy-taint").count() >= 2,
        "expected EdgeWeights + .weights() findings, got {diags:?}"
    );
    assert!(diags
        .iter()
        .all(|d| d.path == "crates/serve/src/handler.rs"));
}

#[test]
fn taint_snapshot_read_in_serve_is_clean() {
    let src = fixture("taint_ok_serve.rs");
    let diags = lint_sources(&[("crates/serve/src/handler.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn taint_same_code_in_write_path_is_clean() {
    // The identical weights read is legal in the engine's write path.
    let src = fixture("taint_bad_serve.rs");
    let diags = lint_sources(&[("crates/engine/src/engine.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- budget-discipline ----

#[test]
fn noise_in_store_without_justification_is_flagged() {
    let src = fixture("budget_bad_store.rs");
    let diags = lint_sources(&[("crates/store/src/staging.rs", &src)]);
    assert_eq!(rules_fired(&diags), vec!["budget-discipline"], "{diags:?}");
}

#[test]
fn noise_in_dp_crate_is_clean() {
    let src = fixture("budget_bad_store.rs");
    let diags = lint_sources(&[("crates/dp/src/noise.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn justified_allow_suppresses_and_is_not_stale() {
    let src = fixture("budget_allowed_store.rs");
    let diags = lint_sources(&[("crates/store/src/staging.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- crash-safety-commit ----

#[test]
fn rename_without_sync_is_flagged() {
    let src = fixture("crash_bad.rs");
    let diags = lint_sources(&[("crates/store/src/manifest.rs", &src)]);
    assert_eq!(
        rules_fired(&diags),
        vec!["crash-safety-commit"],
        "{diags:?}"
    );
    assert!(diags[0].message.contains("sync_all"));
}

#[test]
fn temp_write_sync_rename_is_clean() {
    let src = fixture("crash_ok.rs");
    let diags = lint_sources(&[("crates/store/src/manifest.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- panic-freedom ----

#[test]
fn panics_in_serve_are_flagged() {
    let src = fixture("panic_bad_serve.rs");
    let diags = lint_sources(&[("crates/serve/src/server.rs", &src)]);
    let fired = rules_fired(&diags);
    // unwrap, expect, panic!, unreachable! — all four forms.
    assert_eq!(fired, vec!["panic-freedom"; 4], "{diags:?}");
}

#[test]
fn unwrap_in_test_module_is_clean() {
    let src = fixture("panic_ok_test_only.rs");
    let diags = lint_sources(&[("crates/serve/src/server.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unwrap_outside_serve_store_is_not_this_rules_business() {
    let src = fixture("panic_bad_serve.rs");
    let diags = lint_sources(&[("crates/core/src/paths.rs", &src)]);
    assert!(diags.iter().all(|d| d.rule != "panic-freedom"), "{diags:?}");
}

// ---- mechanism-coupling ----

fn coupling_set<'a>(
    release: &'a str,
    mechanism: &'a str,
    audit: &'a str,
) -> Vec<(&'a str, &'a str)> {
    vec![
        ("crates/engine/src/release.rs", release),
        ("crates/engine/src/mechanism.rs", mechanism),
        ("tests/accuracy_audit.rs", audit),
    ]
}

#[test]
fn fully_coupled_variants_are_clean() {
    let (r, m, a) = (
        fixture("coupling_release.rs"),
        fixture("coupling_mechanism_ok.rs"),
        fixture("coupling_audit_ok.rs"),
    );
    let diags = lint_sources(&coupling_set(&r, &m, &a));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn variant_missing_from_audit_is_flagged() {
    let (r, m, a) = (
        fixture("coupling_release.rs"),
        fixture("coupling_mechanism_ok.rs"),
        fixture("coupling_audit_missing.rs"),
    );
    let diags = lint_sources(&coupling_set(&r, &m, &a));
    assert_eq!(rules_fired(&diags), vec!["mechanism-coupling"], "{diags:?}");
    assert!(diags[0].message.contains("ShortestPath"));
    assert!(diags[0].message.contains("accuracy_audit"));
}

#[test]
fn mechanism_without_contract_is_flagged() {
    let (r, m, a) = (
        fixture("coupling_release.rs"),
        fixture("coupling_mechanism_no_contract.rs"),
        fixture("coupling_audit_ok.rs"),
    );
    let diags = lint_sources(&coupling_set(&r, &m, &a));
    assert_eq!(rules_fired(&diags), vec!["mechanism-coupling"], "{diags:?}");
    assert!(diags[0].message.contains("accuracy_contract"));
}

// ---- budget-float-eq ----

#[test]
fn float_equality_on_budget_values_is_flagged() {
    let src = fixture("float_eq_bad.rs");
    let diags = lint_sources(&[("crates/dp/src/accounting.rs", &src)]);
    assert_eq!(rules_fired(&diags), vec!["budget-float-eq"], "{diags:?}");
}

#[test]
fn ranges_bits_and_integers_are_clean() {
    let src = fixture("float_eq_ok.rs");
    let diags = lint_sources(&[("crates/dp/src/accounting.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- metrics-taint ----

/// The acceptance fixture: a weight-valued gauge sample is flagged.
#[test]
fn weight_valued_gauge_is_flagged() {
    let src = fixture("metrics_taint_bad.rs");
    let diags = lint_sources(&[("crates/store/src/telemetry.rs", &src)]);
    let fired = rules_fired(&diags);
    assert!(
        fired.iter().filter(|r| **r == "metrics-taint").count() >= 1,
        "expected a metrics-taint finding for the weight-valued sample, got {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "metrics-taint" && d.message.contains("weights")),
        "{diags:?}"
    );
}

#[test]
fn counts_timings_epochs_are_clean() {
    let src = fixture("metrics_taint_ok.rs");
    let diags = lint_sources(&[("crates/store/src/telemetry.rs", &src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn weight_valued_sample_in_fixture_dir_is_out_of_scope() {
    // Fixture/vendored paths are not production code; the same source
    // under a fixtures/ path must not fire.
    let src = fixture("metrics_taint_bad.rs");
    let diags = lint_sources(&[("crates/lint/tests/fixtures/metrics_taint_bad.rs", &src)]);
    assert!(diags.iter().all(|d| d.rule != "metrics-taint"), "{diags:?}");
}

// ---- allowlist grammar ----

#[test]
fn unjustified_unknown_and_stale_allows_are_findings() {
    let src = "\
// privlint: allow(panic-freedom, \"\")\n\
let a = x.unwrap();\n\
// privlint: allow(no-such-rule, \"why\")\n\
let b = y.unwrap();\n\
// privlint: allow(privacy-taint, \"nothing tainted here\")\n\
let c = 1;\n";
    let diags = lint_sources(&[("crates/store/src/x.rs", src)]);
    let allowlist = diags.iter().filter(|d| d.rule == "allowlist").count();
    // Empty justification, unknown rule, and an unused (stale) allow.
    assert_eq!(allowlist, 3, "{diags:?}");
    // The unsuppressed unwraps still fire.
    assert_eq!(
        diags.iter().filter(|d| d.rule == "panic-freedom").count(),
        2,
        "{diags:?}"
    );
}

// ---- self-application ----

/// The workspace gate: `privpath-lint --workspace` must be clean, with
/// every suppression justified and none stale.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels under the workspace root");
    let diags = lint_workspace(root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "workspace must lint clean; run `cargo run -p privpath-lint -- --workspace`:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
