//! Exact-mergeable log-bucketed latency histograms.
//!
//! Every histogram in the process shares one fixed bucket ladder
//! ([`BUCKET_BOUNDS`]): 27 finite upper bounds at `1e-6 * 2^i` seconds
//! (1µs up to ~67s) plus an overflow bucket. Because the ladder is
//! global and immutable, snapshots taken on different threads or at
//! different times merge *exactly* — bucket counts add element-wise and
//! nothing is ever re-binned. A snapshot's total count is derived from
//! its bucket counts rather than stored separately, so a concurrent
//! scrape can never observe `sum(buckets) != count`.
//!
//! Recording is wait-free on the hot path: one relaxed-load enable
//! check, one branchless bucket index, one relaxed `fetch_add`, and a
//! CAS loop folding the sample into an f64 sum (contended only under
//! simultaneous observers of the *same* histogram).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite buckets in the shared ladder.
pub const FINITE_BUCKETS: usize = 27;

/// Total buckets including the `+Inf` overflow bucket.
pub const TOTAL_BUCKETS: usize = FINITE_BUCKETS + 1;

/// The shared bucket ladder: upper bounds in seconds, `1e-6 * 2^i` for
/// `i in 0..27`. Index 27 (not listed) is the `+Inf` overflow bucket.
pub const BUCKET_BOUNDS: [f64; FINITE_BUCKETS] = {
    let mut bounds = [0.0; FINITE_BUCKETS];
    let mut i = 0;
    while i < FINITE_BUCKETS {
        bounds[i] = 1e-6 * (1u64 << i) as f64;
        i += 1;
    }
    bounds
};

/// Index of the bucket a sample lands in (first bound >= value, else
/// the overflow bucket). Negative and NaN samples clamp into bucket 0
/// rather than panicking or poisoning the ladder.
pub fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= BUCKET_BOUNDS[0] {
        return 0;
    }
    match BUCKET_BOUNDS.iter().position(|&b| value <= b) {
        Some(i) => i,
        None => FINITE_BUCKETS,
    }
}

/// A shared-ladder histogram. Cheap to record into from many threads;
/// snapshot with [`Histogram::snapshot`] for rendering or merging.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; TOTAL_BUCKETS],
    /// Sum of observed values, stored as f64 bits and folded in with a
    /// compare-exchange loop.
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one sample (seconds). No-op when the plane is disabled.
    pub fn observe(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        self.record(value);
    }

    /// Records unconditionally — used by owners that did their own
    /// enable check (e.g. bench_load's merged local histograms).
    pub fn record(&self, value: f64) {
        let idx = bucket_index(value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Point-in-time copy of the bucket counts and sum. The counts are
    /// read bucket-by-bucket, so a snapshot racing a recorder may be
    /// "mid-increment" — but because `count` is derived from the bucket
    /// counts, the snapshot is always internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// An immutable copy of a histogram's state. Merge freely: all
/// snapshots share the global ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    buckets: [u64; TOTAL_BUCKETS],
    sum: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; TOTAL_BUCKETS],
            sum: 0.0,
        }
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn buckets(&self) -> &[u64; TOTAL_BUCKETS] {
        &self.buckets
    }

    /// Total samples — derived from the buckets, never stored, so it
    /// always equals `sum(buckets)` even for snapshots taken mid-storm.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of observed values in seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Adds another snapshot's buckets into this one. Exact: no
    /// re-binning, because every snapshot shares [`BUCKET_BOUNDS`].
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// Upper bound (seconds) of the bucket containing the q-quantile
    /// sample, or `None` when empty. Deterministic and conservative:
    /// the true quantile is <= the returned bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q=0 -> first sample.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < FINITE_BUCKETS {
                    BUCKET_BOUNDS[i]
                } else {
                    f64::INFINITY
                });
            }
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_doubling_from_one_microsecond() {
        assert_eq!(BUCKET_BOUNDS[0], 1e-6);
        for i in 1..FINITE_BUCKETS {
            assert_eq!(BUCKET_BOUNDS[i], 2.0 * BUCKET_BOUNDS[i - 1]);
        }
        const { assert!(BUCKET_BOUNDS[FINITE_BUCKETS - 1] > 60.0) };
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-6), 0);
        assert_eq!(bucket_index(1.1e-6), 1);
        assert_eq!(bucket_index(2e-6), 1);
        assert_eq!(bucket_index(1e9), FINITE_BUCKETS);
    }

    #[test]
    fn count_derived_from_buckets_and_merge_is_exact() {
        let _guard = crate::test_guard();
        let a = Histogram::new();
        let b = Histogram::new();
        for i in 0..100 {
            a.observe(1e-6 * (i as f64 + 0.5));
            b.observe(1e-3 * (i as f64 + 0.5));
        }
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa.count(), 100);
        assert_eq!(sb.count(), 100);
        let mut merged = sa.clone();
        merged.merge(&sb);
        assert_eq!(merged.count(), 200);
        for i in 0..TOTAL_BUCKETS {
            assert_eq!(
                merged.buckets()[i],
                sa.buckets()[i] + sb.buckets()[i],
                "bucket {i} must add element-wise"
            );
        }
        assert!((merged.sum() - (sa.sum() + sb.sum())).abs() < 1e-12);
    }

    #[test]
    fn quantile_returns_containing_bucket_bound() {
        let _guard = crate::test_guard();
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), None);
        // 90 samples in bucket for 64µs-ish, 10 in ~1ms-ish.
        for _ in 0..90 {
            h.observe(50e-6);
        }
        for _ in 0..10 {
            h.observe(900e-6);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        assert_eq!(p50, BUCKET_BOUNDS[bucket_index(50e-6)]);
        assert_eq!(p99, BUCKET_BOUNDS[bucket_index(900e-6)]);
        assert!(p50 < p99);
    }

    #[test]
    fn concurrent_observers_never_tear() {
        let _guard = crate::test_guard();
        let h = std::sync::Arc::new(Histogram::new());
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.observe(1e-6 * ((t * 1000 + i) as f64 % 50.0 + 0.5));
                }
            }));
        }
        // Scrape while the storm runs: count must always equal the
        // bucket sum (trivially true by construction) and be monotone.
        let mut last = 0u64;
        for _ in 0..50 {
            let s = h.snapshot();
            let c = s.count();
            assert!(c >= last, "count must be monotone under concurrency");
            last = c;
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 4000);
    }
}
