//! The sharded metric registry: typed counters, gauges, and shared-
//! ladder histograms keyed by `name{label="value",...}`.
//!
//! Handle acquisition (`counter_with` etc.) takes a shard read lock on
//! the happy path and a write lock only on first registration. The
//! hot path — recording through an already-held handle — never touches
//! the registry at all: handles are `Arc`-backed and wait-free.
//!
//! Lookup misses of *kind* (asking for a counter under a name already
//! registered as a gauge) return a detached handle that records into
//! thin air instead of panicking: observability must never take down
//! the serving path it observes.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use crate::histogram::{Histogram, BUCKET_BOUNDS, FINITE_BUCKETS};

const SHARDS: usize = 8;

/// A monotone counter. Clone-cheap; all clones share the same cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not registered anywhere — it counts, but no exporter
    /// will ever render it. Used for kind-conflict fallbacks and by
    /// tests that want counting without touching the global registry.
    pub fn detached() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds one. No-op when the plane is disabled.
    #[inline]
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`. No-op when the plane is disabled.
    #[inline]
    pub fn inc_by(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an f64.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge not registered anywhere; see [`Counter::detached`].
    pub fn detached() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Sets the gauge. No-op when the plane is disabled.
    #[inline]
    pub fn set_value(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MetricKey {
    /// Family name, e.g. `serve_requests_total`.
    name: String,
    /// Canonical label suffix: `k1="v1",k2="v2"` sorted by key, or
    /// empty for an unlabeled metric.
    labels: String,
}

/// The registry. Most callers use [`MetricRegistry::global`]; tests
/// that need isolation construct their own with [`MetricRegistry::new`].
#[derive(Debug)]
pub struct MetricRegistry {
    shards: [RwLock<HashMap<MetricKey, Metric>>; SHARDS],
}

impl Default for MetricRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn canonical_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        // Escape per the Prometheus text format.
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl MetricRegistry {
    pub fn new() -> Self {
        MetricRegistry {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    /// The process-wide registry every layer records into.
    pub fn global() -> &'static MetricRegistry {
        static GLOBAL: OnceLock<MetricRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricRegistry::new)
    }

    fn shard_for(&self, key: &MetricKey) -> &RwLock<HashMap<MetricKey, Metric>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn lookup_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: fn() -> Metric,
    ) -> Metric {
        let key = MetricKey {
            name: name.to_string(),
            labels: canonical_labels(labels),
        };
        let shard = self.shard_for(&key);
        {
            let map = shard.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(m) = map.get(&key) {
                return m.clone();
            }
        }
        let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
        map.entry(key).or_insert_with(make).clone()
    }

    /// Unlabeled counter handle.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Labeled counter handle. Labels are canonicalized (sorted by
    /// key), so `[("a","1"),("b","2")]` and `[("b","2"),("a","1")]`
    /// name the same series.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.lookup_or_insert(name, labels, || Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c,
            _ => Counter::detached(),
        }
    }

    /// Unlabeled gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Labeled gauge handle.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.lookup_or_insert(name, labels, || Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            _ => Gauge::detached(),
        }
    }

    /// Unlabeled histogram handle (shared bucket ladder).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Labeled histogram handle.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.lookup_or_insert(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Renders the registry in the Prometheus text exposition format,
    /// one `# TYPE` line per family, series sorted by name then labels.
    pub fn render_lines(&self) -> Vec<String> {
        // (family, labels, kind, value lines)
        let mut entries: Vec<(MetricKey, Metric)> = Vec::new();
        for shard in &self.shards {
            let map = shard.read().unwrap_or_else(PoisonError::into_inner);
            for (k, m) in map.iter() {
                entries.push((k.clone(), m.clone()));
            }
        }
        entries.sort_by(|a, b| (&a.0.name, &a.0.labels).cmp(&(&b.0.name, &b.0.labels)));

        let mut out = Vec::new();
        let mut last_family: Option<String> = None;
        for (key, metric) in entries {
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if last_family.as_deref() != Some(key.name.as_str()) {
                out.push(format!("# TYPE {} {}", key.name, kind));
                last_family = Some(key.name.clone());
            }
            let series = |extra: &str| -> String {
                if key.labels.is_empty() && extra.is_empty() {
                    String::new()
                } else if key.labels.is_empty() {
                    format!("{{{extra}}}")
                } else if extra.is_empty() {
                    format!("{{{}}}", key.labels)
                } else {
                    format!("{{{},{extra}}}", key.labels)
                }
            };
            match metric {
                Metric::Counter(c) => {
                    out.push(format!("{}{} {}", key.name, series(""), c.value()));
                }
                Metric::Gauge(g) => {
                    out.push(format!("{}{} {}", key.name, series(""), g.value()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, &c) in snap.buckets().iter().enumerate() {
                        cumulative += c;
                        let le = if i < FINITE_BUCKETS {
                            format!("{}", BUCKET_BOUNDS[i])
                        } else {
                            "+Inf".to_string()
                        };
                        out.push(format!(
                            "{}_bucket{} {}",
                            key.name,
                            series(&format!("le=\"{le}\"")),
                            cumulative
                        ));
                    }
                    out.push(format!("{}_sum{} {}", key.name, series(""), snap.sum()));
                    out.push(format!("{}_count{} {}", key.name, series(""), snap.count()));
                }
            }
        }
        out
    }

    /// The exposition as one string, lines joined by `\n` (no trailing
    /// newline — the wire layer frames it).
    pub fn render(&self) -> String {
        self.render_lines().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_canonicalized() {
        let _guard = crate::test_guard();
        let reg = MetricRegistry::new();
        let a = reg.counter_with("reg_test_total", &[("b", "2"), ("a", "1")]);
        let b = reg.counter_with("reg_test_total", &[("a", "1"), ("b", "2")]);
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2, "label order must not split the series");
    }

    #[test]
    fn kind_conflict_returns_detached_handle() {
        let _guard = crate::test_guard();
        let reg = MetricRegistry::new();
        let c = reg.counter("reg_conflict");
        c.inc();
        // Asking for the same name as a gauge must not panic and must
        // not corrupt the registered counter.
        let g = reg.gauge("reg_conflict");
        g.set_value(42.0);
        assert_eq!(c.value(), 1);
        let rendered = reg.render();
        assert!(rendered.contains("reg_conflict 1"));
        assert!(!rendered.contains("42"));
    }

    #[test]
    fn render_emits_prometheus_text() {
        let _guard = crate::test_guard();
        let reg = MetricRegistry::new();
        reg.counter_with("zz_requests_total", &[("verb", "distance")])
            .inc_by(3);
        reg.gauge("aa_epoch").set_value(7.0);
        let h = reg.histogram_with("mm_latency_seconds", &[("ns", "metro")]);
        h.observe(5e-6);
        h.observe(5e-6);
        let lines = reg.render_lines();
        let text = lines.join("\n");
        assert!(text.contains("# TYPE aa_epoch gauge"));
        assert!(text.contains("aa_epoch 7"));
        assert!(text.contains("# TYPE zz_requests_total counter"));
        assert!(text.contains("zz_requests_total{verb=\"distance\"} 3"));
        assert!(text.contains("# TYPE mm_latency_seconds histogram"));
        assert!(text.contains("mm_latency_seconds_bucket{ns=\"metro\",le=\"+Inf\"} 2"));
        assert!(text.contains("mm_latency_seconds_count{ns=\"metro\"} 2"));
        // Families are sorted.
        let aa = lines.iter().position(|l| l.contains("aa_epoch")).unwrap();
        let zz = lines
            .iter()
            .position(|l| l.contains("zz_requests_total"))
            .unwrap();
        assert!(aa < zz);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let _guard = crate::test_guard();
        let reg = MetricRegistry::new();
        let h = reg.histogram("cum_check_seconds");
        h.observe(0.5e-6); // bucket 0
        h.observe(1.5e-6); // bucket 1
        let lines = reg.render_lines();
        let b0 = lines
            .iter()
            .find(|l| l.starts_with("cum_check_seconds_bucket{le=\"0.000001\"}"))
            .unwrap();
        let b1 = lines
            .iter()
            .find(|l| l.starts_with("cum_check_seconds_bucket{le=\"0.000002\"}"))
            .unwrap();
        assert!(b0.ends_with(" 1"), "got {b0}");
        assert!(b1.ends_with(" 2"), "got {b1}");
    }

    #[test]
    fn global_registry_is_shared() {
        let c1 = MetricRegistry::global().counter("obs_global_smoke_total");
        let c2 = MetricRegistry::global().counter("obs_global_smoke_total");
        let before = c1.value();
        c2.inc();
        assert!(c1.value() > before);
    }
}
