//! Request tracing: a span API feeding a bounded ring of recent
//! request traces.
//!
//! A [`Span`] is entered at the top of a request (`Span::enter("distance")`),
//! marked at phase boundaries (`span.phase("parse")` closes the segment
//! since the previous mark), and recorded into the global ring when
//! dropped. Phase names and op names are `&'static str` by design: the
//! type system itself prevents smuggling request-derived (and therefore
//! potentially private) bytes into trace labels.
//!
//! The ring holds the most recent [`RING_CAPACITY`] traces behind one
//! mutex — touched twice per request (enter is free; only drop locks),
//! so it is far off the hot path. When the plane is disabled spans are
//! inert: enter returns a dead span and drop does nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Maximum retained traces; older entries are evicted FIFO.
pub const RING_CAPACITY: usize = 256;

/// One completed request trace: total wall time plus per-phase
/// timings in the order the phases closed, all in microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone sequence number (process-wide, 1-based).
    pub seq: u64,
    /// Operation name, e.g. the request verb.
    pub op: &'static str,
    /// Total span duration in microseconds.
    pub total_us: u64,
    /// `(phase name, duration in microseconds)` in completion order.
    pub phases: Vec<(&'static str, u64)>,
}

struct Ring {
    entries: std::collections::VecDeque<TraceRecord>,
}

static SEQ: AtomicU64 = AtomicU64::new(0);

fn ring() -> &'static Mutex<Ring> {
    static RING: std::sync::OnceLock<Mutex<Ring>> = std::sync::OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            entries: std::collections::VecDeque::with_capacity(RING_CAPACITY),
        })
    })
}

/// The `n` most recent traces, newest first.
pub fn recent_traces(n: usize) -> Vec<TraceRecord> {
    let guard = ring().lock().unwrap_or_else(PoisonError::into_inner);
    guard.entries.iter().rev().take(n).cloned().collect()
}

/// An in-flight request span. Created with [`Span::enter`]; records
/// itself into the trace ring on drop.
#[derive(Debug)]
pub struct Span {
    /// None when the plane was disabled at enter time — the span is
    /// inert for its whole lifetime so phase timings stay coherent.
    started: Option<Instant>,
    last_mark: Option<Instant>,
    op: &'static str,
    phases: Vec<(&'static str, u64)>,
}

impl Span {
    /// Opens a span for `op`. When the plane is disabled this is one
    /// relaxed atomic load and no clock read.
    pub fn enter(op: &'static str) -> Span {
        if !crate::enabled() {
            return Span {
                started: None,
                last_mark: None,
                op,
                phases: Vec::new(),
            };
        }
        let now = Instant::now();
        Span {
            started: Some(now),
            last_mark: Some(now),
            op,
            phases: Vec::new(),
        }
    }

    /// Closes the phase running since the previous mark (or since
    /// enter) and labels it `name`.
    pub fn phase(&mut self, name: &'static str) {
        let Some(mark) = self.last_mark else {
            return;
        };
        let now = Instant::now();
        self.phases
            .push((name, now.duration_since(mark).as_micros() as u64));
        self.last_mark = Some(now);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let record = TraceRecord {
            seq: SEQ.fetch_add(1, Ordering::Relaxed) + 1,
            op: self.op,
            total_us: started.elapsed().as_micros() as u64,
            phases: std::mem::take(&mut self.phases),
        };
        let mut guard = ring().lock().unwrap_or_else(PoisonError::into_inner);
        if guard.entries.len() == RING_CAPACITY {
            guard.entries.pop_front();
        }
        guard.entries.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_phases_in_order() {
        let _guard = crate::test_guard();
        {
            let mut s = Span::enter("trace_test_op");
            s.phase("parse");
            s.phase("plan");
            s.phase("encode");
        }
        let recent = recent_traces(1);
        assert_eq!(recent.len(), 1);
        let t = &recent[0];
        assert_eq!(t.op, "trace_test_op");
        let names: Vec<&str> = t.phases.iter().map(|p| p.0).collect();
        assert_eq!(names, vec!["parse", "plan", "encode"]);
        assert!(t.total_us >= t.phases.iter().map(|p| p.1).sum::<u64>() / 2);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = crate::test_guard();
        let before = recent_traces(RING_CAPACITY).len();
        crate::set_enabled(false);
        {
            let mut s = Span::enter("trace_disabled_op");
            s.phase("parse");
        }
        crate::set_enabled(true);
        let after = recent_traces(RING_CAPACITY);
        assert_eq!(after.len(), before, "disabled span must not record");
        assert!(after.iter().all(|t| t.op != "trace_disabled_op"));
    }

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let _guard = crate::test_guard();
        for _ in 0..RING_CAPACITY + 10 {
            let _s = Span::enter("trace_flood_op");
        }
        let all = recent_traces(RING_CAPACITY + 100);
        assert_eq!(all.len(), RING_CAPACITY, "ring must stay bounded");
        for w in all.windows(2) {
            assert!(w[0].seq > w[1].seq, "newest first");
        }
    }
}
