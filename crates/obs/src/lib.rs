//! `privpath-obs`: the workspace observability substrate.
//!
//! Every layer of the system records into one process-wide
//! [`MetricRegistry`] — typed counters, gauges, and log-bucketed latency
//! histograms — and the serve plane exports the registry over the wire
//! (`metrics` verb, Prometheus text exposition) and through the CLI.
//! A lightweight span API ([`Span::enter`]) feeds a bounded ring buffer
//! of recent request traces with per-verb phase timings.
//!
//! Two properties are load-bearing and worth stating up front:
//!
//! * **Exact-mergeable histograms.** Every histogram shares one fixed
//!   bucket ladder ([`histogram::BUCKET_BOUNDS`]), so snapshots taken on
//!   different threads (or different scrapes) merge exactly — bucket
//!   counts add, nothing is re-binned, and a snapshot's total count is
//!   *derived* from its bucket counts so a scrape can never tear
//!   (`sum(buckets) == count` by construction).
//!
//! * **Weight-independence.** Under Sealfon's model the topology is
//!   public and the edge weights are private, so everything this crate
//!   exports must be a function of public data only: request counts,
//!   timings, epochs, budget spend, error codes. No metric name, label
//!   value, or recorded sample may derive from `EdgeWeights` or from
//!   drawn noise values. That obligation is machine-checked by
//!   `privpath-lint`'s `metrics-taint` rule, which scans the argument
//!   lists of every recording call (`inc_by`, `observe`, `set_value`,
//!   registry getters, span constructors) for weight- or noise-valued
//!   identifiers.
//!
//! The whole plane has one kill switch: [`set_enabled`]`(false)` turns
//! every recording call into a single relaxed atomic load, which is the
//! figure `bench_load --with-metrics-artifact` measures (see
//! `results/BENCH_serve_metrics.json`).
//!
//! The crate is dependency-free (std only), like the rest of the
//! workspace's vendored-stub philosophy.

pub mod histogram;
pub mod registry;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricRegistry};
pub use trace::{recent_traces, Span, TraceRecord};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide enable knob. Defaults to enabled; serving binaries leave
/// it on, benches flip it to measure instrumentation overhead.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns the whole observability plane on or off. When off, every
/// recording call (counter increments, histogram observations, span
/// lifecycles) early-returns after one relaxed atomic load; registry
/// handles and snapshots keep working so exporters never break.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is enabled — one relaxed load, the entire cost of
/// instrumentation when the plane is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Serializes unit tests that record or toggle the global enable knob
/// (the crate's tests run in parallel threads of one process).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disable_gates_recording_but_not_handles() {
        let _guard = crate::test_guard();
        let reg = MetricRegistry::new();
        let c = reg.counter("obs_lib_test_total");
        c.inc();
        assert_eq!(c.value(), 1);
        set_enabled(false);
        c.inc();
        assert_eq!(c.value(), 1, "disabled plane must not record");
        set_enabled(true);
        c.inc();
        assert_eq!(c.value(), 2);
    }
}
