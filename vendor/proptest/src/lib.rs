//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of proptest that the repo's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`any`], [`ProptestConfig`], the [`proptest!`] macro, and
//! the `prop_assert*` family. Case generation is deterministic: case `i`
//! of every test runs on a generator seeded from `i`, so failures
//! reproduce exactly. No shrinking is performed — the failing case's
//! values are reported as-is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Run-loop configuration for the [`proptest!`] macro.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-case execution support types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// A failed property within a test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        /// Alias of [`fail`](Self::fail) kept for API compatibility.
        pub fn reject(reason: impl Into<String>) -> Self {
            Self::fail(reason)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The result type a generated test-case body evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-case deterministic randomness for strategy evaluation.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// The runner for case number `case` (deterministic per case).
        pub fn for_case(case: u64) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635),
            }
        }

        /// The case's generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, i64, i32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (self.0.generate(runner), self.1.generate(runner))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (
                self.0.generate(runner),
                self.1.generate(runner),
                self.2.generate(runner),
            )
        }
    }

    /// A strategy producing a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`crate::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    /// Types with a canonical whole-domain strategy (see [`crate::any`]).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng().gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng().gen()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng().gen()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }
}

/// The whole-domain strategy for `T` (uniform over the type).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __runner =
                        $crate::test_runner::TestRunner::for_case(u64::from(__case));
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __runner);)*
                    let __result: $crate::test_runner::TestCaseResult =
                        (|| -> $crate::test_runner::TestCaseResult {
                            $body
                            Ok(())
                        })();
                    if let Err(__e) = __result {
                        panic!("proptest case {} failed: {}", __case, __e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),*) $body
            )*
        }
    };
}

/// Fails the current test case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                __l,
                __r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Any, Arbitrary, Just, Map, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let mut r1 = crate::test_runner::TestRunner::for_case(3);
        let mut r2 = crate::test_runner::TestRunner::for_case(3);
        let s = (2usize..40, any::<u64>()).prop_map(|(n, seed)| (n * 2, seed));
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn range_strategy_stays_in_range() {
        let mut runner = crate::test_runner::TestRunner::for_case(0);
        for case in 0..200 {
            let mut r = crate::test_runner::TestRunner::for_case(case);
            assert!((5..17).contains(&(5usize..17).generate(&mut r)));
            assert!((1..6).contains(&(1usize..6).generate(&mut runner)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(n in 1usize..10, seed in any::<u64>()) {
            prop_assert!((1..10).contains(&n), "n = {}", n);
            let _ = seed;
            prop_assert_eq!(n + 1, n + 1);
        }

        #[test]
        fn early_ok_return_is_supported((a, b) in (0usize..4, 0usize..4)) {
            if a == b {
                return Ok(());
            }
            prop_assert!(a != b);
        }
    }
}
