//! Offline drop-in subset of the `criterion` crate API.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of criterion the benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is wall-clock: each benchmark is warmed up, calibrated
//! to a target batch duration, then measured over `sample_size` batches,
//! and the mean/min per-iteration times are printed. There is no HTML
//! report, statistical regression, or plotting — numbers go to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point for the value-opacity hint.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().0, sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally carrying a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// The per-benchmark timing harness.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `f`; the harness picks the iteration
    /// count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up + calibration: time a single iteration, then pick a batch
    // size aiming at ~2ms per batch (capped so huge setups still finish).
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let single = bench.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(2);
    let per_batch = (target.as_nanos() / single.as_nanos()).clamp(1, 100_000) as u64;

    let mut means = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: per_batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        means.push(b.elapsed.as_secs_f64() / per_batch as f64);
    }
    means.sort_by(f64::total_cmp);
    let min = means.first().copied().unwrap_or(0.0);
    let median = means[means.len() / 2];
    println!(
        "{label:<48} time: [min {} median {}]  ({} samples x {} iters)",
        format_seconds(min),
        format_seconds(median),
        sample_size,
        per_batch
    );
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("counts", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).0, "f/12");
        assert_eq!(BenchmarkId::from_parameter(64).0, "64");
    }
}
