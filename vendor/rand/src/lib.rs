//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no registry access, so this workspace vendors
//! the thin slice of `rand` that privpath actually uses: the [`Rng`] /
//! [`RngCore`] traits (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! with `seed_from_u64`, and [`rngs::StdRng`]. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! high-quality, and entirely self-contained. Stream values differ from
//! upstream `rand`'s ChaCha-backed `StdRng`; all in-repo tests are written
//! against distributional properties (or this generator's streams), not
//! upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform word source implemented by every generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform on `[0, 1)`, integers uniform over their range,
    /// `bool` as a fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0, 1], got {p}"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types sampleable by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: core::ops::Range<Self>,
            ) -> Self {
                assert!(
                    range.start < range.end,
                    "gen_range: empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift rejection-free mapping; the modulo bias is
                // at most span / 2^64, negligible for test workloads.
                let draw = rng.next_u64() as u128 % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
        assert!(
            range.start < range.end && range.start.is_finite() && range.end.is_finite(),
            "gen_range: invalid float range {}..{}",
            range.start,
            range.end
        );
        range.start + (range.end - range.start) * f64::sample_standard(rng)
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `rand::rngs::StdRng` stream — see the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_int_covers_and_stays_inside() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit over 1000 draws");
    }

    #[test]
    fn gen_range_float_stays_inside() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn works_through_mut_reference() {
        fn takes_rng(rng: &mut impl Rng) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        // Pass-through reborrow and nested &mut both compile and sample.
        let a = takes_rng(&mut rng);
        let mut r = &mut rng;
        let b = takes_rng(&mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
